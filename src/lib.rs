//! Reproduction of *HgPCN: A Heterogeneous Architecture for E2E Embedded
//! Point Cloud Inference* (MICRO 2024).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geometry`] — points, bounding boxes, clouds, Morton codes, SFC order;
//! * [`datasets`] — synthetic ModelNet40/ShapeNet/S3DIS/KITTI-like frames;
//! * [`octree`] — the spatial index: single-pass build, Octree-Table,
//!   voxel-shell neighbor enumeration;
//! * [`memsim`] — host/on-chip memory models and device cost profiles;
//! * [`sampling`] — FPS, RS, RS+reinforce, Octree-Indexed Sampling (OIS)
//!   and the FPGA Down-sampling Unit model;
//! * [`gather`] — brute KNN, ball query, Voxel-Expanded Gathering (VEG),
//!   the six-stage Data Structuring Unit model, and per-cloud
//!   `NeighborIndex` structures built once and queried per center;
//! * [`dla`] — the 16×16 systolic Feature Computation Unit;
//! * [`pcn`] — a real PointNet++ forward pass with pluggable gathering,
//!   plus the SoA `Batch` tile layer and `infer_batch` (B clouds per
//!   call, one weight traversal per MLP layer, bit-identical results),
//!   and the `quant` post-training-int8 subsystem: a `Calibrator`
//!   observing activation ranges, per-channel symmetric weight
//!   quantization, and an i32-accumulating i8 GEMM behind the
//!   `Precision` serving-tier knob;
//! * [`system`] — both HgPCN engines, the baseline platforms, the E2E
//!   pipeline and the real-time experiment;
//! * [`runtime`] — the concurrent multi-stream serving runtime: a
//!   session-oriented core (`ServingRuntime`: open streams, submit
//!   frames, poll tickets, live stats, graceful shutdown) with the
//!   batch `Runtime::run` driver as a thin front end over it — stage-
//!   pipelined worker pools, multi-tenant admission, backpressure,
//!   micro-batch coalescing into the SoA engine path, and per-stream
//!   latency metrics over real threads — plus the scale-out layer:
//!   the `StreamService` trait over live serving front ends and
//!   `ShardedRuntime`, N replicas behind a stream-placement policy
//!   sharing one `Arc<PointNet>` weight copy;
//! * [`serve`] — the std-only HTTP/JSON-RPC 2.0 front end over the
//!   serving runtime (`hgpcn-serve` binary: `POST /rpc`, `GET /health`,
//!   `GET /metrics`), built on the in-tree `minihttp` compat layer;
//! * [`telemetry`] — frame-lifecycle tracing (Chrome trace-event JSON
//!   for Perfetto), a streaming metrics registry with Prometheus and
//!   JSON exporters, and log-bucketed histograms — wired through the
//!   runtime behind a zero-cost-when-off switch;
//! * [`bench`](mod@bench) — regenerators for every table and figure of
//!   the paper.
//!
//! # Quick start
//!
//! ```
//! use hgpcn::prelude::*;
//!
//! // A raw "sensor" frame.
//! let frame: PointCloud = (0..5000)
//!     .map(|i| {
//!         let f = i as f32;
//!         Point3::new((f * 0.618).fract(), (f * 0.414).fract(), (f * 0.732).fract())
//!     })
//!     .collect();
//!
//! // End-to-end: octree build + OIS down-sampling + VEG + PointNet++.
//! let pipeline = E2ePipeline::prototype();
//! let net = PointNet::new(PointNetConfig::classification(), 7);
//! let report = pipeline.process_frame(&frame, 1024, &net, 7)?;
//! assert!(report.total().ns() > 0.0);
//! # Ok::<(), hgpcn::system::SystemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hgpcn_bench as bench;
pub use hgpcn_datasets as datasets;
pub use hgpcn_dla as dla;
pub use hgpcn_gather as gather;
pub use hgpcn_geometry as geometry;
pub use hgpcn_memsim as memsim;
pub use hgpcn_octree as octree;
pub use hgpcn_pcn as pcn;
pub use hgpcn_runtime as runtime;
pub use hgpcn_sampling as sampling;
pub use hgpcn_serve as serve;
pub use hgpcn_system as system;
pub use hgpcn_telemetry as telemetry;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use hgpcn_gather::{IndexKind, NeighborIndex};
    pub use hgpcn_geometry::{Aabb, MortonCode, Point3, PointCloud};
    pub use hgpcn_memsim::{DeviceProfile, HostMemory, Latency, OnChipMemory, OpCounts};
    pub use hgpcn_octree::{Octree, OctreeConfig, OctreeTable};
    pub use hgpcn_pcn::{
        Batch, Calibration, Calibrator, CenterPolicy, IndexedGatherer, PointNet, PointNetConfig,
        Precision,
    };
    pub use hgpcn_runtime::{
        AdmissionPolicy, ArrivalModel, BackpressurePolicy, BatchingStats, ErrorCode, FrameStatus,
        FrameTicket, KittiSource, PlacementPolicy, Runtime, RuntimeConfig, RuntimeError,
        RuntimeReport, ServingRuntime, ShardedRuntime, StageBreakdown, StreamHandle, StreamProfile,
        StreamService, StreamSpec, SyntheticSource, TelemetrySnapshot,
    };
    pub use hgpcn_serve::App;
    pub use hgpcn_system::{E2ePipeline, InferenceEngine, PreprocessingEngine};
    pub use hgpcn_telemetry::{LogHistogram, Registry, TelemetryMode, Trace};
}
