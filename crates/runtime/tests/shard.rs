//! Scale-out contract of [`ShardedRuntime`]: placement is deterministic,
//! sharding is bit-invisible to each stream, and the aggregated report
//! telescopes from the per-shard reports.

use std::collections::BTreeMap;
use std::sync::Arc;

use hgpcn_geometry::{Point3, PointCloud};
use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    FrameRecord, FrameResult, FrameStatus, PlacementPolicy, RuntimeConfig, RuntimeReport,
    ServingRuntime, ShardedRuntime, StreamProfile,
};

const TARGET: usize = 512;
const SHARDS: usize = 3;
const STREAMS: usize = 12;
const FRAMES: usize = 2;

/// One worker per stage keeps each replica's virtual timeline a pure
/// function of its submission order — the precondition for comparing a
/// shard bit-for-bit against an independent runtime fed the same
/// partition.
fn config() -> RuntimeConfig {
    RuntimeConfig::default()
        .preproc_workers(1)
        .inference_workers(1)
        .queue_capacity(64)
        .target_points(TARGET)
        .seed(0x5EED)
}

fn net() -> Arc<PointNet> {
    Arc::new(PointNet::new(
        PointNetConfig::semantic_segmentation(TARGET),
        11,
    ))
}

/// Deliberately prefix-sharing names: the ring hash's avalanche
/// finalizer must spread them anyway (raw FNV-1a would cluster them
/// onto one arc and defeat the spread check below).
fn stream_name(s: usize) -> String {
    format!("cam-{s}")
}

/// Deterministic per-(stream, frame) cloud, keyed by the stream *name*
/// so the sharded run and the independent replicas feed byte-identical
/// inputs. Computed in f64 — an f32 `fract()` at large indices would
/// collapse onto quantized coordinates.
fn frame_cloud(s: usize, frame: usize) -> PointCloud {
    (0..TARGET + 173)
        .map(|p| {
            let f = (s * 104_729 + frame * 7919 + p) as f64;
            Point3::new(
                ((f * 0.618_033_988_749).fract() * 2.0) as f32,
                ((f * 0.414_213_562_373).fract() * 2.0) as f32,
                ((f * 0.732_050_807_568).fract() * 2.0) as f32,
            )
        })
        .collect()
}

/// Logits + the frame's virtual-clock journey, keyed by
/// `(stream name, frame_index)` — everything that must be identical
/// between a sharded stream and the same stream on a lone runtime.
type FrameFacts = BTreeMap<(String, usize), (Vec<f32>, [u64; 5])>;

fn virtual_bits(r: &FrameRecord) -> [u64; 5] {
    [
        r.virtual_arrival_s.to_bits(),
        r.virtual_preproc_start_s.to_bits(),
        r.virtual_preproc_done_s.to_bits(),
        r.virtual_infer_start_s.to_bits(),
        r.virtual_done_s.to_bits(),
    ]
}

/// Collects per-frame facts from a finished report: logits come from
/// the `wait` results (passed in), timestamps from the records.
fn frame_facts(report: &RuntimeReport, logits: &BTreeMap<(usize, usize), Vec<f32>>) -> FrameFacts {
    let names: BTreeMap<usize, &str> = report
        .streams
        .iter()
        .map(|s| (s.stream_id, s.name.as_str()))
        .collect();
    report
        .records
        .iter()
        .map(|r| {
            let name = names[&r.stream_id].to_owned();
            let bits = virtual_bits(r);
            let l = logits[&(r.stream_id, r.frame_index)].clone();
            ((name, r.frame_index), (l, bits))
        })
        .collect()
}

fn flat_logits(result: &FrameResult) -> Vec<f32> {
    let m = &result.output.logits;
    (0..m.rows())
        .flat_map(|r| m.row(r).iter().copied())
        .collect()
}

/// The sharded fleet run under `ConsistentHash`: open all streams,
/// submit round-robin, wait everything. Returns (per-frame facts,
/// per-shard reports, aggregate report, per-stream shard assignment by
/// name).
#[allow(clippy::type_complexity)]
fn run_sharded() -> (
    FrameFacts,
    Vec<RuntimeReport>,
    RuntimeReport,
    BTreeMap<String, usize>,
) {
    let runtime = ShardedRuntime::start(config(), SHARDS, PlacementPolicy::ConsistentHash, net())
        .expect("valid config");
    let ids: Vec<usize> = (0..STREAMS)
        .map(|s| {
            runtime
                .open_stream(StreamProfile::new(stream_name(s)).nominal_fps(10.0))
                .expect("stream opens")
        })
        .collect();
    let shard_of: BTreeMap<String, usize> = ids
        .iter()
        .enumerate()
        .map(|(s, &id)| (stream_name(s), runtime.shard_of(id).expect("open stream")))
        .collect();

    let mut logits = BTreeMap::new();
    for frame in 0..FRAMES {
        for (s, &id) in ids.iter().enumerate() {
            let ticket = runtime
                .submit(id, frame as f64 * 0.1, frame_cloud(s, frame))
                .expect("admitted");
            match runtime.wait(ticket).expect("resolves") {
                FrameStatus::Done(result) => {
                    logits.insert((id, ticket.frame_index), flat_logits(&result));
                }
                other => panic!("frame did not complete: {other:?}"),
            }
        }
    }

    let shard_reports: Vec<_> = (0..runtime.shard_count())
        .map(|k| runtime.shard_stats(k).expect("shard exists"))
        .collect();
    let aggregate = runtime.shutdown().expect("clean shutdown");
    (
        frame_facts(&aggregate, &logits),
        shard_reports,
        aggregate,
        shard_of,
    )
}

/// The control run: one *independent* single-replica runtime per shard,
/// fed exactly that shard's streams in the sharded run's open order and
/// its frames in the sharded run's submission order.
fn run_partition(assignment: &BTreeMap<String, usize>) -> FrameFacts {
    let mut facts = FrameFacts::new();
    for shard in 0..SHARDS {
        // Open order on the replica == global open order filtered to
        // this shard — the same dense local ids the sharded runtime
        // assigned, so per-frame seeds (functions of the *local* id)
        // match.
        let members: Vec<usize> = (0..STREAMS)
            .filter(|&s| assignment[&stream_name(s)] == shard)
            .collect();
        let runtime = ServingRuntime::start(config(), net()).expect("valid config");
        let handles: Vec<_> = members
            .iter()
            .map(|&s| {
                runtime
                    .open_stream(StreamProfile::new(stream_name(s)).nominal_fps(10.0))
                    .expect("stream opens")
            })
            .collect();
        let mut logits = BTreeMap::new();
        for frame in 0..FRAMES {
            for (&s, handle) in members.iter().zip(&handles) {
                let ticket = runtime
                    .submit(handle.id(), frame as f64 * 0.1, frame_cloud(s, frame))
                    .expect("admitted");
                match runtime.wait(ticket).expect("resolves") {
                    FrameStatus::Done(result) => {
                        logits.insert((handle.id(), ticket.frame_index), flat_logits(&result));
                    }
                    other => panic!("frame did not complete: {other:?}"),
                }
            }
        }
        let report = runtime.shutdown().expect("clean shutdown");
        facts.extend(frame_facts(&report, &logits));
    }
    facts
}

/// Tentpole acceptance: a K-shard fleet is bit-identical — logits *and*
/// virtual-clock timestamps — to K independent runtimes serving the
/// same partition.
#[test]
fn consistent_hash_sharding_is_bit_exact_per_stream() {
    let (sharded, _, aggregate, assignment) = run_sharded();
    assert_eq!(aggregate.total_frames, STREAMS * FRAMES);
    // The fleet must actually be spread out for the test to mean much.
    let used: std::collections::BTreeSet<usize> = assignment.values().copied().collect();
    assert!(used.len() > 1, "hash ring put every stream on one shard");

    let lone = run_partition(&assignment);
    assert_eq!(sharded.len(), lone.len());
    for (key, (s_logits, s_bits)) in &sharded {
        let (l_logits, l_bits) = &lone[key];
        assert_eq!(s_logits, l_logits, "logits differ for {key:?}");
        assert_eq!(
            s_bits, l_bits,
            "virtual timestamps differ for {key:?} — sharding leaked into the timeline"
        );
    }
}

/// The aggregated report telescopes from the per-shard reports: frame
/// counts sum, stream sets concatenate, the makespan is the max, and
/// worker counts sum.
#[test]
fn aggregate_report_telescopes_from_shard_reports() {
    let (_, shards, aggregate, _) = run_sharded();

    let frames: usize = shards.iter().map(|r| r.total_frames).sum();
    assert_eq!(aggregate.total_frames, frames);
    let dropped: usize = shards.iter().map(|r| r.total_dropped).sum();
    assert_eq!(aggregate.total_dropped, dropped);
    let streams: usize = shards.iter().map(|r| r.streams.len()).sum();
    assert_eq!(aggregate.streams.len(), streams);
    assert_eq!(aggregate.streams.len(), STREAMS);
    assert_eq!(aggregate.records.len(), aggregate.total_frames);

    // Every stream's frame 0 arrives at virtual t = 0, so every
    // non-empty shard's span is anchored at 0 and the global span
    // (earliest arrival → latest completion across all shards) is
    // exactly the longest shard span.
    let max_makespan = shards
        .iter()
        .map(|r| r.virtual_makespan_s)
        .fold(0.0f64, f64::max);
    assert!(
        (aggregate.virtual_makespan_s - max_makespan).abs() < 1e-12,
        "aggregate makespan {} != max shard makespan {max_makespan}",
        aggregate.virtual_makespan_s
    );

    assert_eq!(
        aggregate.preproc_workers,
        shards.iter().map(|r| r.preproc_workers).sum::<usize>()
    );
    assert_eq!(
        aggregate.inference_workers,
        shards.iter().map(|r| r.inference_workers).sum::<usize>()
    );

    // Every stream completed its frames, each on its recorded shard.
    for stream in &aggregate.streams {
        assert_eq!(stream.completed, FRAMES, "stream {}", stream.name);
        assert!(stream.shard < SHARDS);
        let on_shard = &shards[stream.shard];
        assert!(
            on_shard.streams.iter().any(|s| s.name == stream.name),
            "stream {} not in its shard {}'s report",
            stream.name,
            stream.shard
        );
    }

    // Per-stream latency summaries survive aggregation untouched: the
    // aggregate's view of a stream equals the shard's own view.
    for stream in &aggregate.streams {
        let shard_view = shards[stream.shard]
            .streams
            .iter()
            .find(|s| s.name == stream.name)
            .expect("present, asserted above");
        assert_eq!(
            stream.sojourn, shard_view.sojourn,
            "stream {} sojourn quantiles changed in aggregation",
            stream.name
        );
        assert_eq!(stream.completed, shard_view.completed);
    }
}

/// `LeastLoaded` balances *streams*, never frames: placement reads the
/// live queue depths only at `open_stream`, pins the stream there for
/// its lifetime, and every subsequent frame follows it — even frames
/// submitted while other shards sit idle. `shard_of` must answer the
/// same home before, during, and after the traffic.
#[test]
fn least_loaded_never_splits_a_stream() {
    const BURST: usize = 3;
    let runtime = ShardedRuntime::start(config(), SHARDS, PlacementPolicy::LeastLoaded, net())
        .expect("valid config");

    // Open each stream while the previous streams' bursts are still in
    // flight, so placement sees genuinely unequal queue depths (an idle
    // fleet would tie-break every open onto shard 0). No assertion on
    // the resulting spread — depths race the workers; the invariant
    // under test is pinning, which must hold for ANY placement.
    let mut ids = Vec::new();
    let mut tickets = Vec::new();
    for s in 0..STREAMS {
        let id = runtime
            .open_stream(StreamProfile::new(stream_name(s)).nominal_fps(10.0))
            .expect("stream opens");
        ids.push(id);
        for frame in 0..BURST {
            tickets.push(
                runtime
                    .submit(id, frame as f64 * 0.1, frame_cloud(s, frame))
                    .expect("admitted"),
            );
        }
    }
    let assignment: Vec<usize> = ids
        .iter()
        .map(|&id| runtime.shard_of(id).expect("open stream"))
        .collect();

    // One more frame per stream after every queue has had time to move:
    // routing must still follow the original placement.
    for (s, &id) in ids.iter().enumerate() {
        tickets.push(
            runtime
                .submit(id, BURST as f64 * 0.1, frame_cloud(s, BURST))
                .expect("admitted"),
        );
    }
    for ticket in tickets {
        match runtime.wait(ticket).expect("resolves") {
            FrameStatus::Done(_) => {}
            other => panic!("frame did not complete: {other:?}"),
        }
    }

    for (s, &id) in ids.iter().enumerate() {
        assert_eq!(
            runtime.shard_of(id).expect("still open"),
            assignment[s],
            "stream {s} moved shards mid-life"
        );
    }

    let shards: Vec<RuntimeReport> = (0..runtime.shard_count())
        .map(|k| runtime.shard_stats(k).expect("shard exists"))
        .collect();
    let aggregate = runtime.shutdown().expect("clean shutdown");
    assert_eq!(aggregate.total_frames, STREAMS * (BURST + 1));

    for (s, &home) in assignment.iter().enumerate() {
        let name = stream_name(s);
        // All of the stream's frames appear in exactly one shard's
        // report — the one `shard_of` promised.
        let homes: Vec<usize> = (0..SHARDS)
            .filter(|&k| shards[k].streams.iter().any(|st| st.name == name))
            .collect();
        assert_eq!(homes, vec![home], "stream {name} split across shards");
        let view = shards[home]
            .streams
            .iter()
            .find(|st| st.name == name)
            .expect("just located");
        assert_eq!(view.completed, BURST + 1, "stream {name} lost frames");
    }
}
