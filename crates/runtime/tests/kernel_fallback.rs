//! A forced `HGPCN_KERNEL=simd` on a platform that cannot honour it (no
//! `simd` feature compiled in, or no AVX2 on the CPU) must degrade to
//! the blocked scalar backend and still serve correctly — a forced
//! configuration never takes the fleet down.
//!
//! This lives in its own integration-test binary because the kernel is
//! selected once per process: the override has to be in place before
//! anything touches a matmul.

use hgpcn_pcn::{kernel, PointNet, PointNetConfig};
use hgpcn_runtime::{ArrivalModel, Runtime, RuntimeConfig, StreamSpec, SyntheticSource};

#[test]
fn forced_simd_request_degrades_and_serves() {
    // Set before any kernel dispatch happens in this process.
    std::env::set_var("HGPCN_KERNEL", "simd");

    let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 3);
    // The process-wide selection honoured the request if it could and
    // degraded if it could not — it never refuses outright. Either way
    // a forced `simd` resolves to exactly what auto-detection would
    // pick (AVX2 when compiled + detected, the blocked scalar backend
    // otherwise), which is the real dispatch rule, not a re-derivation.
    let expected = kernel::fastest_supported().name();
    assert_eq!(net.kernel().name(), expected);

    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .target_points(512)
            .arrival(ArrivalModel::Backlogged)
            .max_batch(4),
    )
    .expect("valid config");
    let streams = vec![
        StreamSpec::new("a", SyntheticSource::new(1500, 10.0, 3, 1)),
        StreamSpec::new("b", SyntheticSource::new(1600, 10.0, 3, 2)),
    ];
    let report = runtime.run(streams, &net).expect("degraded backend serves");
    assert_eq!(report.total_frames, 6);
    assert_eq!(report.kernel_backend, expected);
}
