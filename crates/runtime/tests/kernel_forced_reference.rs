//! `HGPCN_KERNEL=reference` pins the whole serving runtime to the
//! reference scalar kernel (the non-AVX2 fallback of last resort), and
//! the served results are bit-identical to any other backend's — the
//! override knob changes host speed, never answers.
//!
//! Own binary: kernel selection is once-per-process, so the env
//! override must precede the first matmul.

use hgpcn_pcn::{LinearKernel, PointNet, PointNetConfig};
use hgpcn_runtime::{ArrivalModel, Runtime, RuntimeConfig, StreamSpec, SyntheticSource};

fn config() -> RuntimeConfig {
    RuntimeConfig::default()
        .preproc_workers(1)
        .inference_workers(1)
        .target_points(512)
        .arrival(ArrivalModel::Backlogged)
        .max_batch(4)
}

fn fleet() -> Vec<StreamSpec> {
    (0..3)
        .map(|i| {
            StreamSpec::new(
                format!("s{i}"),
                SyntheticSource::new(1500 + 90 * i, 10.0, 2, i as u64),
            )
        })
        .collect()
}

#[test]
fn forced_reference_serves_identically() {
    std::env::set_var("HGPCN_KERNEL", "reference");

    let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 5);
    assert_eq!(net.kernel().name(), "reference");
    let runtime = Runtime::new(config()).expect("valid config");
    let report = runtime
        .run(fleet(), &net)
        .expect("reference backend serves");
    assert_eq!(report.total_frames, 6);
    assert_eq!(report.kernel_backend, "reference");

    // Same fleet on an explicitly pinned blocked-kernel network: every
    // frame's modeled results and logits-derived numbers must be
    // bit-identical — backends only move wall time.
    let blocked = PointNet::new(PointNetConfig::semantic_segmentation(512), 5)
        .with_kernel(LinearKernel::Blocked);
    let other = runtime
        .run(fleet(), &blocked)
        .expect("blocked backend serves");
    assert_eq!(other.kernel_backend, "blocked");
    assert_eq!(report.total_frames, other.total_frames);
    for (a, b) in report.records.iter().zip(&other.records) {
        assert_eq!((a.stream_id, a.frame_index), (b.stream_id, b.frame_index));
        assert_eq!(a.modeled.inference.latency, b.modeled.inference.latency);
        assert_eq!(a.modeled.inference.counts, b.modeled.inference.counts);
    }
}
