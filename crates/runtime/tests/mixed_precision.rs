//! Mixed f32/int8 serving: a fleet whose streams pin different
//! precision tiers must keep every existing runtime guarantee — losless
//! delivery, per-stream FIFO admission, and per-frame determinism —
//! while the report labels each stream's effective tier.
//!
//! The inference workers partition each coalesced micro-batch by
//! precision (one engine call per tier), so these tests drive the
//! batched path with both tiers present in the same batch window and
//! cross-check it against the serial (`max_batch = 1`) execution of the
//! identical fleet: the modeled per-frame results must be bit-identical
//! — batching and tier-partitioning move host time, never results.

use hgpcn_geometry::{Point3, PointCloud};
use hgpcn_pcn::{BruteKnnGatherer, Calibrator, CenterPolicy, PointNet, PointNetConfig, Precision};
use hgpcn_runtime::{
    ArrivalModel, Runtime, RuntimeConfig, RuntimeError, RuntimeReport, StreamSpec, SyntheticSource,
};

const TARGET: usize = 512;

fn calib_cloud(c: usize) -> PointCloud {
    (0..TARGET)
        .map(|i| {
            let f = (i + c * 131) as f32;
            Point3::new(
                (f * 0.618).fract() * 2.0,
                (f * 0.414).fract() * 2.0,
                (f * 0.732).fract() * 2.0,
            )
        })
        .collect()
}

fn quantized_net() -> PointNet {
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    let mut calibrator = Calibrator::new();
    for c in 0..4 {
        let mut g = BruteKnnGatherer::new();
        calibrator
            .observe(&net, &calib_cloud(c), &mut g, CenterPolicy::FirstN)
            .expect("calibration pass");
    }
    net.with_int8(&calibrator.finish().expect("observed clouds"))
        .expect("matching calibration")
}

/// Two f32 streams and two int8 streams, interleaved round-robin.
fn mixed_fleet(frames: usize) -> Vec<StreamSpec> {
    (0..4)
        .map(|i| {
            let spec = StreamSpec::new(
                format!("s{i}"),
                SyntheticSource::new(1200 + 150 * i, 10.0, frames, i as u64),
            );
            if i % 2 == 1 {
                spec.precision(Precision::Int8)
            } else {
                spec
            }
        })
        .collect()
}

fn run_mixed(net: &PointNet, max_batch: usize) -> RuntimeReport {
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(2)
            .inference_workers(2)
            .queue_capacity(16)
            .arrival(ArrivalModel::Backlogged)
            .target_points(TARGET)
            .max_batch(max_batch),
    )
    .unwrap();
    runtime.run(mixed_fleet(5), net).unwrap()
}

#[test]
fn mixed_fleet_preserves_fifo_and_determinism() {
    let net = quantized_net();
    let batched = run_mixed(&net, 4);
    let serial = run_mixed(&net, 1);

    // Labeling: the report is tier-accurate per stream and flags the
    // aggregate as mixed.
    assert_eq!(batched.precision, "mixed");
    for s in &batched.streams {
        let want = if s.stream_id % 2 == 1 { "int8" } else { "f32" };
        assert_eq!(s.precision, want, "stream {}", s.name);
    }

    // Lossless delivery: every offered frame completed exactly once.
    assert_eq!(batched.total_frames, 20);
    assert_eq!(batched.total_dropped, 0);

    // Per-stream FIFO: ingress tickets increase with frame index inside
    // every stream, tiers notwithstanding.
    for id in 0..4 {
        let mine: Vec<_> = batched
            .records
            .iter()
            .filter(|r| r.stream_id == id)
            .collect();
        assert_eq!(mine.len(), 5);
        for pair in mine.windows(2) {
            assert_eq!(pair[1].frame_index, pair[0].frame_index + 1);
            assert!(
                pair[1].preproc_ticket > pair[0].preproc_ticket,
                "stream {id}: FIFO admission violated"
            );
        }
    }

    // Determinism: the tier-partitioned batched execution reproduces
    // the serial execution's modeled per-frame results bit-for-bit
    // (both runs sort records by (stream, frame)).
    assert_eq!(serial.total_frames, batched.total_frames);
    for (a, b) in serial.records.iter().zip(&batched.records) {
        assert_eq!((a.stream_id, a.frame_index), (b.stream_id, b.frame_index));
        assert_eq!(
            a.modeled.inference.latency, b.modeled.inference.latency,
            "tier partitioning perturbed frame ({}, {})",
            a.stream_id, a.frame_index
        );
        assert_eq!(a.modeled.inference.counts, b.modeled.inference.counts);
        assert_eq!(a.modeled.preprocess.latency, b.modeled.preprocess.latency);
    }

    // And a re-run of the batched configuration is reproducible.
    let again = run_mixed(&net, 4);
    for (a, b) in again.records.iter().zip(&batched.records) {
        assert_eq!((a.stream_id, a.frame_index), (b.stream_id, b.frame_index));
        assert_eq!(a.modeled.inference.latency, b.modeled.inference.latency);
        assert_eq!(a.modeled.inference.counts, b.modeled.inference.counts);
    }
}

#[test]
fn uniform_int8_fleet_is_labeled_int8() {
    let net = quantized_net();
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .arrival(ArrivalModel::Backlogged)
            .target_points(TARGET)
            .max_batch(2)
            .precision(Precision::Int8),
    )
    .unwrap();
    let streams = vec![
        StreamSpec::new("a", SyntheticSource::new(1200, 10.0, 3, 1)),
        StreamSpec::new("b", SyntheticSource::new(1300, 10.0, 3, 2)),
    ];
    let report = runtime.run(streams, &net).unwrap();
    assert_eq!(report.precision, "int8");
    assert_eq!(report.total_frames, 6);
    for s in &report.streams {
        assert_eq!(s.precision, "int8");
    }
}

#[test]
fn int8_stream_on_unquantized_net_fails_cleanly() {
    // No calibrated weights: the int8 stream's first frame must surface
    // a Frame error instead of hanging or silently serving f32.
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .arrival(ArrivalModel::Backlogged)
            .target_points(TARGET)
            .precision(Precision::Int8),
    )
    .unwrap();
    let streams = vec![StreamSpec::new("q", SyntheticSource::new(1200, 10.0, 2, 1))];
    match runtime.run(streams, &net) {
        Err(RuntimeError::Frame { stream_id: 0, .. }) => {}
        other => panic!("expected a frame error, got {other:?}"),
    }
}
