//! The runtime's reproducibility guarantee: with one worker per stage,
//! serving a stream produces *bit-identical* modeled results to running
//! the serial `E2ePipeline` over the same frames with the same per-frame
//! seeds — the concurrency layer adds no numerical drift.

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    frame_seed, ArrivalModel, Runtime, RuntimeConfig, StreamSpec, SyntheticSource,
};
use hgpcn_system::E2ePipeline;

const POINTS: usize = 1500;
const TARGET: usize = 512;
const FRAMES: usize = 4;
const SEED: u64 = 0xABCD;

fn net() -> PointNet {
    PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1)
}

#[test]
fn single_worker_runtime_equals_serial_pipeline() {
    let source = SyntheticSource::new(POINTS, 10.0, FRAMES, 3);
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .target_points(TARGET)
            .seed(SEED)
            .arrival(ArrivalModel::Backlogged),
    )
    .unwrap();
    let net = net();
    let report = runtime
        .run(vec![StreamSpec::new("solo", source.clone())], &net)
        .unwrap();
    assert_eq!(report.total_frames, FRAMES);

    // Serial reference: the exact frames and seeds the runtime used.
    let pipeline = E2ePipeline::prototype();
    for record in &report.records {
        let cloud = source.frame_cloud(record.frame_index);
        let serial = pipeline
            .process_frame(
                &cloud,
                TARGET,
                &net,
                frame_seed(SEED, 0, record.frame_index),
            )
            .unwrap();
        assert_eq!(
            record.modeled, serial,
            "frame {} modeled results diverge from serial execution",
            record.frame_index
        );
    }
}

#[test]
fn reruns_are_bit_identical() {
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .target_points(TARGET)
            .seed(SEED),
    )
    .unwrap();
    let net = net();
    let run = |salt: u64| {
        runtime
            .run(
                vec![StreamSpec::new(
                    "solo",
                    SyntheticSource::new(POINTS, 10.0, 3, salt),
                )],
                &net,
            )
            .unwrap()
    };
    let (a, b) = (run(9), run(9));
    assert_eq!(a.total_frames, b.total_frames);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.modeled, rb.modeled);
        assert_eq!(ra.virtual_done_s, rb.virtual_done_s);
    }
    assert_eq!(a.modeled_pipelined_fps, b.modeled_pipelined_fps);
}
