//! Per-stream frame ordering under a many-worker pool: whatever the
//! thread interleaving, each stream's frames are admitted FIFO (their
//! ingress dequeue tickets increase with frame index) and every offered
//! frame completes exactly once under the lossless `Block` policy.

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    AdmissionPolicy, ArrivalModel, BackpressurePolicy, Runtime, RuntimeConfig, StreamSpec,
    SyntheticSource,
};

const TARGET: usize = 512;

#[test]
fn per_stream_order_preserved_under_many_workers() {
    let streams: Vec<StreamSpec> = (0..3)
        .map(|i| {
            StreamSpec::new(
                format!("cam-{i}"),
                SyntheticSource::new(1200 + 200 * i as usize, 10.0, 6, i as u64),
            )
        })
        .collect();
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(4)
            .inference_workers(4)
            .queue_capacity(4)
            .admission(AdmissionPolicy::RoundRobin)
            .backpressure(BackpressurePolicy::Block)
            .arrival(ArrivalModel::Backlogged)
            .target_points(TARGET),
    )
    .unwrap();
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    let report = runtime.run(streams, &net).unwrap();

    // Lossless: every offered frame completed exactly once.
    assert_eq!(report.total_frames, 18);
    assert_eq!(report.total_dropped, 0);
    for s in &report.streams {
        assert_eq!(s.completed, 6, "stream {} lost frames", s.name);
        assert_eq!(s.offered, 6);
        assert_eq!(s.delivery_ratio(), 1.0);
    }

    // Records are unique per (stream, frame) and FIFO per stream: the
    // ingress ticket — assigned at dequeue, by any of the 4 preproc
    // workers — must increase with the frame index within a stream.
    for id in 0..3 {
        let mine: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.stream_id == id)
            .collect();
        assert_eq!(mine.len(), 6);
        for pair in mine.windows(2) {
            assert_eq!(
                pair[1].frame_index,
                pair[0].frame_index + 1,
                "missing/dup frame"
            );
            assert!(
                pair[1].preproc_ticket > pair[0].preproc_ticket,
                "stream {id}: frame {} dequeued before frame {}",
                pair[1].frame_index,
                pair[0].frame_index
            );
        }
        // Per-frame modeled results are scheduling-independent even
        // under 4+4 workers: each frame's seed depends only on
        // (stream, index), so modeled latencies must be positive and
        // identical across reruns — the determinism suite pins the
        // exact values; here we only require they were produced.
        for r in &mine {
            assert!(r.modeled.total().ns() > 0.0);
        }
    }
}
