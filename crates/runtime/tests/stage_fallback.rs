//! A bogus `HGPCN_STAGE_*` override must degrade that stage to its
//! scalar anchor — with the degradation visible in the report's
//! `stage_backends` — and still serve. Stage backends are optimization
//! hints: a misspelled override never takes the fleet down (unlike
//! `HGPCN_KERNEL`, which panics on typos — see the stage registry docs
//! for why the two seams differ).
//!
//! This lives in its own integration-test binary because each stage
//! backend is selected once per process: the override has to be in
//! place before anything dispatches a stage kernel.

use hgpcn_pcn::{PointNet, PointNetConfig, StageBackends};
use hgpcn_runtime::{ArrivalModel, Runtime, RuntimeConfig, StreamSpec, SyntheticSource};

#[test]
fn bogus_stage_override_degrades_to_anchor_and_serves() {
    // Set before any stage dispatch happens in this process: the gather
    // stage is forced to a nonsense backend. The other two stages keep
    // whatever the process environment selects (auto-selection locally;
    // the CI stage-axis legs also run this binary with every
    // HGPCN_STAGE_* pinned or bogus, so their expectation is read from
    // the same resolution the net uses rather than hard-coded).
    std::env::set_var("HGPCN_STAGE_GATHER", "quantum");
    let ambient = StageBackends::active();

    let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 3);
    // The bogus request degraded to the scalar anchor; the untouched
    // stages still follow the process-wide selection.
    assert_eq!(net.stage_backends().gather.name(), "scalar");
    assert_eq!(net.stage_backends().sampling, ambient.sampling);

    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .target_points(512)
            .arrival(ArrivalModel::Backlogged)
            .max_batch(4),
    )
    .expect("valid config");
    let streams = vec![
        StreamSpec::new("a", SyntheticSource::new(1500, 10.0, 3, 1)),
        StreamSpec::new("b", SyntheticSource::new(1600, 10.0, 3, 2)),
    ];
    let report = runtime.run(streams, &net).expect("degraded backend serves");
    assert_eq!(report.total_frames, 6);
    // The degradation is reported, not hidden: the report names the
    // anchor for the forced stage and the ambient selection elsewhere.
    assert_eq!(report.stage_backends.gather, "scalar");
    assert_eq!(report.stage_backends.sampling, ambient.sampling.name());
    assert_eq!(
        report.stage_backends.interpolate,
        ambient.interpolate.name()
    );
    for stream in &report.streams {
        assert_eq!(stream.stage_backends, report.stage_backends);
    }
}

#[test]
fn config_pin_to_anchor_overrides_process_selection() {
    // A per-run config pin beats both the env override and the net's
    // process-wide selection — the yardstick configuration benches use.
    let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 3);
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .target_points(512)
            .arrival(ArrivalModel::Backlogged)
            .max_batch(1)
            .stage_backends(StageBackends::anchor()),
    )
    .expect("valid config");
    let streams = vec![StreamSpec::new("a", SyntheticSource::new(1500, 10.0, 2, 1))];
    let report = runtime
        .run(streams, &net)
        .expect("anchor-pinned run serves");
    assert_eq!(report.total_frames, 2);
    assert_eq!(report.stage_backends.sampling, "scalar");
    assert_eq!(report.stage_backends.gather, "scalar");
    assert_eq!(report.stage_backends.interpolate, "scalar");
}
