//! The session-oriented serving API: submit/poll must be *bit-exact*
//! with the batch `Runtime::run` driver over the same frames (both are
//! thin front ends over the same session core), frame failures must
//! isolate to their ticket, and the error surface must carry the stable
//! machine-readable codes the network layer forwards.

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    ErrorCode, FrameStatus, FrameTicket, Runtime, RuntimeConfig, RuntimeError, ServingRuntime,
    StreamProfile, StreamSpec, SyntheticSource,
};

const POINTS: usize = 1500;
const TARGET: usize = 512;
const FRAMES: usize = 6;
const FPS: f64 = 10.0;
const SEED: u64 = 0xBEEF;

fn net() -> PointNet {
    PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1)
}

fn config() -> RuntimeConfig {
    RuntimeConfig::default()
        .preproc_workers(1)
        .inference_workers(1)
        .target_points(TARGET)
        .seed(SEED)
}

#[test]
fn submit_poll_is_bit_exact_with_batch_run() {
    // Batch reference: the run-to-completion driver.
    let source = SyntheticSource::new(POINTS, FPS, FRAMES, 3);
    let batch = Runtime::new(config())
        .unwrap()
        .run(vec![StreamSpec::new("solo", source.clone())], &net())
        .unwrap();
    assert_eq!(batch.total_frames, FRAMES);

    // Serving session: same config, same frames, same timestamps,
    // submitted through the session API instead of a source.
    let serving = ServingRuntime::start(config(), net()).unwrap();
    let stream = serving
        .open_stream(StreamProfile::new("solo").nominal_fps(FPS))
        .unwrap();
    let mut outputs = Vec::new();
    for i in 0..FRAMES {
        let ticket = stream
            .submit(i as f64 / FPS, source.frame_cloud(i))
            .unwrap();
        assert_eq!(
            ticket,
            FrameTicket {
                stream_id: 0,
                frame_index: i
            },
            "tickets are deterministic"
        );
        // Drain each frame as it is produced (single-worker pools keep
        // the virtual timeline identical to the batch run regardless).
        match serving.wait(ticket).unwrap() {
            FrameStatus::Done(result) => outputs.push(result),
            other => panic!("frame {i} did not complete: {other:?}"),
        }
    }
    let report = serving.shutdown().unwrap();

    // Frame-for-frame, the serving session must reproduce the batch
    // run's modeled results and virtual-clock journey bit-exactly.
    assert_eq!(report.total_frames, batch.total_frames);
    assert_eq!(report.records.len(), batch.records.len());
    for (s, b) in report.records.iter().zip(&batch.records) {
        assert_eq!(s.frame_index, b.frame_index);
        assert_eq!(s.modeled, b.modeled, "frame {} diverged", b.frame_index);
        assert_eq!(s.virtual_arrival_s, b.virtual_arrival_s);
        assert_eq!(s.virtual_preproc_start_s, b.virtual_preproc_start_s);
        assert_eq!(s.virtual_preproc_done_s, b.virtual_preproc_done_s);
        assert_eq!(s.virtual_infer_start_s, b.virtual_infer_start_s);
        assert_eq!(s.virtual_done_s, b.virtual_done_s);
    }
    assert_eq!(report.virtual_makespan_s, batch.virtual_makespan_s);
    assert_eq!(report.modeled_pipelined_fps, batch.modeled_pipelined_fps);

    // The polled outputs carry the same records the report does.
    for (result, record) in outputs.iter().zip(&batch.records) {
        assert_eq!(result.record.modeled, record.modeled);
        assert_eq!(result.output.logits.rows(), TARGET);
    }
}

#[test]
fn frame_failure_isolates_to_its_ticket() {
    let serving = ServingRuntime::start(config(), net()).unwrap();
    let stream = serving.open_stream(StreamProfile::new("s")).unwrap();
    let source = SyntheticSource::new(POINTS, FPS, 2, 9);

    let good_before = stream.submit(0.0, source.frame_cloud(0)).unwrap();
    // One point cannot be sampled up to TARGET: this frame must fail.
    let bad = stream
        .submit(0.1, SyntheticSource::new(1, FPS, 1, 0).frame_cloud(0))
        .unwrap();
    let good_after = stream.submit(0.2, source.frame_cloud(1)).unwrap();

    match serving.wait(bad).unwrap() {
        FrameStatus::Failed(err) => {
            assert_eq!(err.code(), ErrorCode::FrameFailed);
            assert_eq!(err.code().as_str(), "frame_failed");
            assert_eq!(err.code().json_rpc(), -32003);
            assert!(
                err.frame_stage().is_some(),
                "frame errors carry their failing stage: {err}"
            );
        }
        other => panic!("undersized frame resolved {other:?}"),
    }
    // Frames before and after the failure still complete: per-frame
    // failure policy, not batch abort.
    for ticket in [good_before, good_after] {
        match serving.wait(ticket).unwrap() {
            FrameStatus::Done(_) => {}
            other => panic!("healthy frame resolved {other:?}"),
        }
    }
    let report = serving.shutdown().unwrap();
    assert_eq!(report.total_frames, 2);
}

#[test]
fn results_are_delivered_at_most_once() {
    let serving = ServingRuntime::start(config(), net()).unwrap();
    let stream = serving.open_stream(StreamProfile::new("s")).unwrap();
    let ticket = stream
        .submit(0.0, SyntheticSource::new(POINTS, FPS, 1, 4).frame_cloud(0))
        .unwrap();
    assert!(matches!(
        serving.wait(ticket).unwrap(),
        FrameStatus::Done(_)
    ));
    // The wait consumed the result; the ticket is now unknown.
    match serving.poll(ticket) {
        Err(err @ RuntimeError::UnknownTicket { .. }) => {
            assert_eq!(err.code(), ErrorCode::UnknownTicket);
        }
        other => panic!("consumed ticket polled {other:?}"),
    }
    serving.shutdown().unwrap();
}

#[test]
fn unknown_stream_and_ticket_have_stable_codes() {
    let serving = ServingRuntime::start(config(), net()).unwrap();
    match serving.submit(7, 0.0, SyntheticSource::new(8, FPS, 1, 0).frame_cloud(0)) {
        Err(err @ RuntimeError::UnknownStream { .. }) => {
            assert_eq!(err.code().as_str(), "unknown_stream");
        }
        other => panic!("unopened stream accepted {other:?}"),
    }
    match serving.poll(FrameTicket {
        stream_id: 0,
        frame_index: 99,
    }) {
        Err(err @ RuntimeError::UnknownTicket { .. }) => {
            assert_eq!(err.code().as_str(), "unknown_ticket");
        }
        other => panic!("never-issued ticket polled {other:?}"),
    }
    assert!(serving.stream(0).is_none(), "no stream was opened");
    serving.shutdown().unwrap();
}

#[test]
fn invalid_config_is_refused_before_any_thread_spawns() {
    let bad = RuntimeConfig::default().preproc_workers(0);
    match ServingRuntime::start(bad, net()) {
        Err(err @ RuntimeError::InvalidConfig(_)) => {
            assert_eq!(err.code(), ErrorCode::InvalidConfig);
            assert_eq!(err.code().json_rpc(), -32001);
        }
        other => panic!("zero-worker config accepted: {other:?}"),
    }
}

#[test]
fn handles_refuse_work_after_shutdown() {
    let serving = ServingRuntime::start(config(), net()).unwrap();
    let stream = serving.open_stream(StreamProfile::new("s")).unwrap();
    let cloud = SyntheticSource::new(POINTS, FPS, 1, 5).frame_cloud(0);
    let ticket = stream.submit(0.0, cloud.clone()).unwrap();
    assert!(matches!(
        serving.wait(ticket).unwrap(),
        FrameStatus::Done(_)
    ));
    let report = serving.shutdown().unwrap();
    assert_eq!(report.total_frames, 1);
    // The stream handle outlived the session; it must fail cleanly.
    match stream.submit(1.0, cloud) {
        Err(RuntimeError::ShuttingDown) => {}
        other => panic!("post-shutdown submit returned {other:?}"),
    }
}

#[test]
fn live_stats_track_progress() {
    let serving = ServingRuntime::start(config(), net()).unwrap();
    let stream = serving
        .open_stream(StreamProfile::new("tracked").nominal_fps(FPS))
        .unwrap();
    let before = serving.stream_stats(stream.id()).unwrap();
    assert_eq!((before.offered, before.completed), (0, 0));
    let ticket = stream
        .submit(0.0, SyntheticSource::new(POINTS, FPS, 1, 6).frame_cloud(0))
        .unwrap();
    assert!(matches!(
        serving.wait(ticket).unwrap(),
        FrameStatus::Done(_)
    ));
    let after = stream.stats().unwrap();
    assert_eq!((after.offered, after.completed), (1, 1));
    assert_eq!(after.name, "tracked");
    assert!(serving.stream_stats(99).is_err());
    serving.shutdown().unwrap();
}
