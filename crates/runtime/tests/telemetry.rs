//! Telemetry integration: per-stage attribution must reconcile with the
//! existing latency summaries, the virtual-clock trace export must be
//! byte-reproducible, and the whole subsystem must vanish when off.

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    ArrivalModel, Runtime, RuntimeConfig, RuntimeReport, StreamSpec, SyntheticSource, TelemetryMode,
};
use hgpcn_telemetry::EventKind;

const TARGET: usize = 512;

fn fleet(streams: usize, frames: usize) -> Vec<StreamSpec> {
    (0..streams)
        .map(|i| {
            StreamSpec::new(
                format!("s{i}"),
                SyntheticSource::new(1200 + 70 * i, 10.0, frames, i as u64),
            )
        })
        .collect()
}

fn base_config() -> RuntimeConfig {
    RuntimeConfig::default()
        .target_points(TARGET)
        .arrival(ArrivalModel::Backlogged)
        .queue_capacity(16)
}

fn run(config: RuntimeConfig, streams: usize, frames: usize) -> RuntimeReport {
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    Runtime::new(config)
        .unwrap()
        .run(fleet(streams, frames), &net)
        .unwrap()
}

/// The four breakdown components telescope per frame, so their means
/// must sum to the sojourn mean, and the two service components must
/// sum to the modeled service mean — per stream and in aggregate.
#[test]
fn breakdown_reconciles_with_sojourn_and_service() {
    let report = run(base_config().telemetry(TelemetryMode::Off), 2, 4);
    let close = |a: f64, b: f64, what: &str| {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "{what}: {a} vs {b}"
        );
    };
    for s in &report.streams {
        close(
            s.breakdown.mean_sojourn().secs(),
            s.sojourn.mean.secs(),
            &format!("stream {} sojourn", s.stream_id),
        );
        close(
            s.breakdown.preproc_service.mean.secs() + s.breakdown.infer_service.mean.secs(),
            s.service.mean.secs(),
            &format!("stream {} service", s.stream_id),
        );
    }
    // Aggregate: total virtual time is conserved across the split.
    let sojourn_sum: f64 = report
        .records
        .iter()
        .map(|r| r.virtual_done_s - r.virtual_arrival_s)
        .sum();
    close(
        report.breakdown.virtual_wait_s
            + report.breakdown.virtual_preproc_busy_s
            + report.breakdown.virtual_infer_busy_s,
        sojourn_sum,
        "aggregate",
    );
    assert_eq!(report.breakdown.frames, report.total_frames);
    // Utilization is a fraction of the makespan.
    assert!(report.utilization.preproc_busy > 0.0);
    assert!(report.utilization.infer_busy > 0.0);
    assert!(report.utilization.preproc_busy <= 1.0 + 1e-9);
    assert!(report.utilization.infer_busy <= 1.0 + 1e-9);
}

/// With one worker per stage and no batching, the virtual timeline is
/// deterministic, so the wall-free Chrome trace export must be
/// byte-identical across runs.
#[test]
fn virtual_trace_export_is_byte_identical() {
    let config = || base_config().telemetry(TelemetryMode::On);
    let a = run(config(), 2, 3);
    let b = run(config(), 2, 3);
    let json_a = a.telemetry.as_ref().unwrap().trace.chrome_trace_json(false);
    let json_b = b.telemetry.as_ref().unwrap().trace.chrome_trace_json(false);
    assert!(!json_a.is_empty());
    assert_eq!(json_a, json_b, "virtual-clock trace must be reproducible");
    // The wall-clock variant carries host timing and is NOT asserted
    // equal — only well-formed.
    assert!(a
        .telemetry
        .as_ref()
        .unwrap()
        .trace
        .chrome_trace_json(true)
        .contains("wall_ts_us"));
}

#[test]
fn telemetry_off_is_none_and_on_is_populated() {
    let off = run(base_config().telemetry(TelemetryMode::Off), 1, 2);
    assert!(off.telemetry.is_none(), "pinned Off must record nothing");
    // The always-on attribution still works without telemetry.
    assert_eq!(off.breakdown.frames, off.total_frames);

    let on = run(base_config().telemetry(TelemetryMode::On), 2, 3);
    let snap = on.telemetry.as_ref().expect("pinned On must record");
    let completes = snap
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Complete)
        .count();
    assert_eq!(completes, on.total_frames, "one Complete event per frame");
    let admits = snap
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Admit)
        .count();
    assert_eq!(admits, 6, "one Admit per offered frame");

    let prom = snap.metrics.prometheus_text();
    assert!(prom.contains("# TYPE hgpcn_frames_completed_total counter"));
    assert!(prom.contains("# TYPE hgpcn_stage_service_seconds histogram"));
    assert!(prom.contains("# HELP hgpcn_modeled_fps"));
    assert_eq!(
        snap.metrics
            .counter_value("hgpcn_frames_completed_total", &[("stream", "s0")]),
        Some(3)
    );
    let json = snap.metrics.json_snapshot();
    assert!(json.contains("\"hgpcn_sojourn_seconds\""));
}

/// The modeled queue-depth reconstruction: a backlogged single-worker
/// run queues frames, the series is time-ordered, and the high-water
/// mark carries its virtual timestamp.
#[test]
fn queue_depth_series_is_ordered_and_timestamped() {
    let report = run(base_config().telemetry(TelemetryMode::Off), 2, 4);
    for depth in [&report.ingress_depth, &report.stage_depth] {
        assert!(!depth.samples.is_empty());
        for w in depth.samples.windows(2) {
            assert!(w[0].0 <= w[1].0, "depth series must be time-ordered");
        }
        assert!(depth.samples.iter().map(|&(_, d)| d).max().unwrap() == depth.high_water);
    }
    // Backlogged arrival floods the ingress queue: the high-water mark
    // must see real queueing, and its timestamp must sit inside the run.
    assert!(report.ingress_depth.high_water >= 2);
    assert!(report.ingress_depth.high_water_vts_s <= report.virtual_makespan_s + 1e-9);
    // Display surfaces the timestamped high-water marks.
    let shown = format!("{report}");
    assert!(shown.contains("modeled depth"));
    assert!(shown.contains("utilization"));
}
