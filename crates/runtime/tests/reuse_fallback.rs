//! A bogus `HGPCN_PREPROC_REUSE` must degrade the preprocessing-reuse
//! policy to its anchor (`off` — stateless per-frame rebuilds) with the
//! degradation visible in the report, and still serve. Reuse is an
//! optimization hint, never a correctness switch: a misspelled override
//! must not take the fleet down.
//!
//! This lives in its own integration-test binary because the policy is
//! resolved once per process: the override has to be in place before
//! any session starts without a config pin. (The reuse tests in
//! `reuse.rs` pin the policy through `RuntimeConfig` precisely so they
//! never consult the environment.)

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{FrameStatus, RuntimeConfig, ServingRuntime, StreamProfile};

#[test]
fn bogus_reuse_override_degrades_to_off_and_serves() {
    // Set before anything resolves the process-wide policy.
    std::env::set_var("HGPCN_PREPROC_REUSE", "turbo");

    let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 9);
    let serving = ServingRuntime::start(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .target_points(512),
        net,
    )
    .expect("valid config");
    let stream = serving.open_stream(StreamProfile::new("a")).unwrap();

    let scene = hgpcn_datasets::DriftingScene::new(Default::default(), 5);
    let tickets: Vec<_> = (0..3)
        .map(|i| stream.submit(i as f64 * 0.1, scene.frame(i)).unwrap())
        .collect();
    for t in tickets {
        assert!(
            matches!(serving.wait(t).unwrap(), FrameStatus::Done(_)),
            "degraded policy must still serve"
        );
    }
    let report = serving.shutdown().unwrap();

    // The degradation is reported, not hidden: the bogus request fell
    // back to the stateless anchor, which keeps no cache — the report
    // names `off` and carries an empty tally despite a perfectly
    // coherent stream that would have been all hits under `on`.
    assert_eq!(report.preproc_reuse, "off");
    assert_eq!(report.preproc_reuse_hits, 0);
    assert_eq!(report.preproc_reuse_misses, 0);
    assert_eq!(report.preproc_warm_ratio(), 0.0);
}
