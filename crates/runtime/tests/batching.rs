//! Micro-batched execution must change host throughput only: per-frame
//! modeled results, per-stream FIFO order and the virtual timeline all
//! stay bit-identical to the serial path.

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{ArrivalModel, Runtime, RuntimeConfig, StreamSpec, SyntheticSource};

const TARGET: usize = 512;

fn fleet(streams: usize, frames: usize) -> Vec<StreamSpec> {
    (0..streams)
        .map(|i| {
            StreamSpec::new(
                format!("s{i}"),
                SyntheticSource::new(1400 + 120 * i, 10.0, frames, i as u64),
            )
        })
        .collect()
}

fn base_config() -> RuntimeConfig {
    RuntimeConfig::default()
        .target_points(TARGET)
        .arrival(ArrivalModel::Backlogged)
        .queue_capacity(32)
}

#[test]
fn batched_run_is_bit_identical_to_serial_run() {
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    let serial = Runtime::new(base_config())
        .unwrap()
        .run(fleet(4, 4), &net)
        .unwrap();
    let batched = Runtime::new(base_config().max_batch(8))
        .unwrap()
        .run(fleet(4, 4), &net)
        .unwrap();

    assert_eq!(serial.total_frames, 16);
    assert_eq!(batched.total_frames, 16);
    for (a, b) in serial.records.iter().zip(&batched.records) {
        assert_eq!((a.stream_id, a.frame_index), (b.stream_id, b.frame_index));
        // Modeled per-frame results: identical to the bit.
        assert_eq!(
            a.modeled.inference.latency, b.modeled.inference.latency,
            "frame ({}, {})",
            a.stream_id, a.frame_index
        );
        assert_eq!(a.modeled.inference.counts, b.modeled.inference.counts);
        assert_eq!(a.modeled.preprocess.latency, b.modeled.preprocess.latency);
        // Single-worker pools: the virtual timeline is also identical —
        // within a micro-batch frames advance the clock in dequeue order.
        assert_eq!(a.virtual_done_s.to_bits(), b.virtual_done_s.to_bits());
    }
    assert_eq!(
        serial.modeled_pipelined_fps.to_bits(),
        batched.modeled_pipelined_fps.to_bits()
    );

    // The batched run actually batched.
    assert!(batched.batching.batches > 0);
    assert!(batched.batching.largest_batch >= 2);
    assert!(batched.batching.largest_batch <= 8);
    assert!(batched.batching.mean_batch_size > 1.0);
    // The serial run reports no SoA batches.
    assert_eq!(serial.batching.batches, 0);
    assert_eq!(serial.batching.mean_batch_size, 1.0);
}

#[test]
fn batching_preserves_per_stream_fifo_under_many_workers() {
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    let report = Runtime::new(
        base_config()
            .preproc_workers(4)
            .inference_workers(4)
            .max_batch(4),
    )
    .unwrap()
    .run(fleet(3, 6), &net)
    .unwrap();

    assert_eq!(report.total_frames, 18);
    assert_eq!(report.total_dropped, 0);
    for id in 0..3 {
        let mine: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.stream_id == id)
            .collect();
        assert_eq!(mine.len(), 6);
        // Same guarantee the serial pipeline makes (see ordering.rs):
        // admission is FIFO per stream, proven by the ingress dequeue
        // tickets. Stage-queue order between frames of one stream can
        // swap when parallel preproc workers finish out of order — that
        // is pre-existing pipeline behaviour, not something coalescing
        // may make worse; completeness plus deterministic per-frame
        // results (asserted in the bit-identity test above) cover the
        // batching-specific risk.
        for pair in mine.windows(2) {
            assert_eq!(pair[1].frame_index, pair[0].frame_index + 1);
            assert!(
                pair[1].preproc_ticket > pair[0].preproc_ticket,
                "stream {id}: frames {} and {} admitted out of order",
                pair[0].frame_index,
                pair[1].frame_index
            );
        }
    }
}

#[test]
fn tight_deadline_caps_batches_at_one() {
    // Per-frame modeled inference latency is on the order of
    // milliseconds; a nanosecond budget can never fit two frames, so
    // after the estimator primes, every batch must be a singleton.
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    let report = Runtime::new(base_config().max_batch(8).batch_deadline_s(1e-9))
        .unwrap()
        .run(fleet(2, 5), &net)
        .unwrap();
    assert_eq!(report.total_frames, 10);
    assert!(report.batching.batches >= report.total_frames);
    assert_eq!(
        report.batching.largest_batch, 1,
        "deadline-capped batches must stay singletons"
    );
    assert_eq!(report.batching.coalesced_frames, 0);
}

#[test]
fn frame_failure_in_a_batch_is_attributed_to_its_frame() {
    // target_points(8) passes preprocessing but starves the net, so
    // every frame fails inference; the batched path must attribute the
    // failure to a concrete (stream, frame), not a whole batch.
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .target_points(8)
            .arrival(ArrivalModel::Backlogged)
            .max_batch(4),
    )
    .unwrap();
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    match runtime.run(fleet(1, 3), &net) {
        Err(hgpcn_runtime::RuntimeError::Frame {
            stream_id: 0,
            frame_index,
            ..
        }) => assert_eq!(frame_index, 0, "first frame fails first"),
        other => panic!("expected a frame error, got {other:?}"),
    }
}
