//! §VII-E cross-validation: the executor's *measured* pipelined
//! throughput (virtual clock, real threads) must agree with the
//! analytical two-stage model in `hgpcn_system::realtime` for the
//! single-stream case, within the documented tolerance.

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    ArrivalModel, FrameSource, Runtime, RuntimeConfig, StreamSpec, SyntheticSource,
};
use hgpcn_system::{realtime, E2ePipeline};

#[test]
fn measured_pipelined_fps_matches_analytical_model() {
    const FRAMES: usize = 16;
    const TARGET: usize = 512;
    let source = SyntheticSource::new(1600, 10.0, FRAMES, 11);
    let net = PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 1);
    let pipeline = E2ePipeline::prototype();

    // Measured: a backlogged single stream through 1+1 workers, so the
    // achieved virtual throughput is pipeline capacity.
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .arrival(ArrivalModel::Backlogged)
            .target_points(TARGET),
    )
    .unwrap();
    let report = runtime
        .run_with_pipeline(
            &pipeline,
            vec![StreamSpec::new("solo", source.clone())],
            &net,
        )
        .unwrap();
    assert_eq!(report.total_frames, FRAMES);

    // Analytical: the same frames through the closed-form model.
    let mut replay = source.clone();
    let frames: Vec<(f64, _)> = std::iter::from_fn(|| replay.next_frame()).collect();
    let analytical = realtime::run_stream(&pipeline, &net, &frames, TARGET, 0x5EED).unwrap();

    let validation = report.validate_against(&analytical);
    assert!(
        validation.agrees(),
        "runtime and analytical model disagree: {validation}"
    );
    // The measured number can only exceed the analytical worst-frame
    // bound via mean-vs-max slack, never fall below it by more than the
    // pipeline-fill overhead (1 frame in FRAMES).
    assert!(
        validation.ratio() > 0.9,
        "measured throughput fell below the analytical bound: {validation}"
    );
}
