//! Backpressure and drop-policy properties.
//!
//! The queue-level property test models `push_drop_oldest` against a
//! reference `VecDeque` over arbitrary interleavings of pushes and
//! pops; the runtime-level test checks end-to-end frame conservation
//! under the lossy policy: every offered frame is either completed or
//! accounted as dropped, and survivors keep their relative order.

use std::collections::VecDeque;

use proptest::prelude::*;

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    ArrivalModel, BackpressurePolicy, BoundedQueue, Runtime, RuntimeConfig, StreamSpec,
    SyntheticSource,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drop-oldest mirrors a reference ring buffer under any
    /// push/pop interleaving, and conserves items:
    /// delivered + dropped + still-queued == offered.
    #[test]
    fn drop_oldest_matches_reference_model(
        capacity in 1usize..6,
        ops in prop::collection::vec(prop::bool::ANY, 1..60),
    ) {
        let queue = BoundedQueue::new(capacity);
        let mut reference: VecDeque<usize> = VecDeque::new();
        let mut next_item = 0usize;
        let mut delivered = 0usize;
        for &is_push in &ops {
            if is_push {
                let evicted = queue.push_drop_oldest(next_item).unwrap();
                if reference.len() >= capacity {
                    let expect = reference.pop_front();
                    prop_assert_eq!(evicted, expect, "wrong eviction victim");
                } else {
                    prop_assert!(evicted.is_none(), "evicted below capacity");
                }
                reference.push_back(next_item);
                next_item += 1;
            } else if let Some(expect) = reference.pop_front() {
                let (got, _) = queue.pop().expect("reference says queue is nonempty");
                prop_assert_eq!(got, expect, "FIFO violated");
                delivered += 1;
            }
            prop_assert_eq!(queue.depth(), reference.len());
        }
        // Conservation.
        prop_assert_eq!(
            delivered + queue.dropped() as usize + queue.depth(),
            next_item,
            "items leaked or duplicated"
        );
        // Survivors drain in order.
        queue.close();
        while let Some(expect) = reference.pop_front() {
            prop_assert_eq!(queue.pop().map(|(v, _)| v), Some(expect));
        }
        prop_assert!(queue.pop().is_none());
    }

    /// Block policy never drops: the queue refuses nothing and keeps
    /// strict FIFO.
    #[test]
    fn block_policy_is_lossless(capacity in 1usize..5, n in 1usize..40) {
        let queue = BoundedQueue::new(capacity);
        let mut delivered = Vec::new();
        // Keep the queue below capacity by interleaving push and pop.
        for i in 0..n {
            queue.push_blocking(i).unwrap();
            if queue.depth() == capacity {
                delivered.push(queue.pop().unwrap().0);
            }
        }
        queue.close();
        while let Some((v, _)) = queue.pop() {
            delivered.push(v);
        }
        prop_assert_eq!(delivered, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(queue.dropped(), 0);
    }
}

#[test]
fn runtime_conserves_frames_under_drop_oldest() {
    const FRAMES: usize = 8;
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .queue_capacity(1) // tiny: maximal eviction pressure
            .backpressure(BackpressurePolicy::DropOldest)
            .arrival(ArrivalModel::Sensor)
            .target_points(512),
    )
    .unwrap();
    let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 1);
    let streams = vec![
        StreamSpec::new("a", SyntheticSource::new(1300, 20.0, FRAMES, 1)),
        StreamSpec::new("b", SyntheticSource::new(1700, 10.0, FRAMES, 2)),
    ];
    let report = runtime.run(streams, &net).unwrap();

    for s in &report.streams {
        assert_eq!(s.offered, FRAMES);
        assert_eq!(
            s.completed + s.dropped,
            s.offered,
            "stream {}: frames leaked (completed {} + dropped {} != offered {})",
            s.name,
            s.completed,
            s.dropped,
            s.offered
        );
        assert!(s.delivery_ratio() <= 1.0);
    }
    let dropped: usize = report.streams.iter().map(|s| s.dropped).sum();
    assert_eq!(report.total_dropped, dropped);
    assert_eq!(report.total_frames + dropped, 2 * FRAMES);
    assert_eq!(report.ingress_queue.dropped as usize, dropped);

    // Survivors of each stream keep ascending frame indices (drop-oldest
    // never reorders).
    for id in 0..2 {
        let mine: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.stream_id == id)
            .collect();
        for pair in mine.windows(2) {
            assert!(pair[1].frame_index > pair[0].frame_index);
            assert!(pair[1].preproc_ticket > pair[0].preproc_ticket);
        }
    }
}
