//! Stream-scoped preprocessing contexts under the serving runtime: a
//! stream mixing warm-hit and cold-miss frames must stay FIFO, produce
//! logits **bit-identical** to the all-cold run, report its hit/miss
//! tally honestly, and stay bit-deterministic (including the warm-path
//! modeled timings) at any worker count — the context-turn discipline
//! under test.

use hgpcn_datasets::{DriftingScene, DriftingSceneConfig};
use hgpcn_geometry::{Point3, PointCloud};
use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{FrameStatus, PreprocReuse, RuntimeConfig, ServingRuntime, StreamProfile};

const TARGET: usize = 512;
const FPS: f64 = 10.0;

fn net() -> PointNet {
    PointNet::new(PointNetConfig::semantic_segmentation(TARGET), 5)
}

fn config(reuse: PreprocReuse, preproc_workers: usize, infer_workers: usize) -> RuntimeConfig {
    RuntimeConfig::default()
        .preproc_workers(preproc_workers)
        .inference_workers(infer_workers)
        .queue_capacity(16)
        .target_points(TARGET)
        .seed(0xC0FFEE)
        .preproc_reuse(reuse)
}

/// Ten frames of one stream: a temporally coherent drifting scene with
/// two AABB-growing outlier frames injected. Expected warm pattern
/// under `PreprocReuse::On`: frame 0 cold (first), outlier frames cold
/// (grid grew), each frame *after* an outlier cold again (grid shrank
/// back), everything else warm.
///
/// The scene is background-dominated (two small movers over a large
/// static shell), the regime real LiDAR streams sit in and the one
/// where the warm delta pass is modeled strictly cheaper than a cold
/// rebuild — which this test asserts per frame.
fn mixed_frames() -> (Vec<PointCloud>, Vec<bool>) {
    let config = DriftingSceneConfig {
        objects: 2,
        points_per_object: 200,
        shell_points: 3712,
        ..DriftingSceneConfig::default()
    };
    let scene = DriftingScene::new(config, 21);
    let outliers = [4usize, 7];
    let mut frames = Vec::new();
    let mut expect_warm = Vec::new();
    for i in 0..10 {
        let mut cloud = scene.frame(i);
        if outliers.contains(&i) {
            cloud.push(Point3::splat(scene.bounds().max().x * 2.0));
        }
        let prev_outlierish = i > 0 && (outliers.contains(&(i - 1)) || outliers.contains(&i));
        expect_warm.push(i > 0 && !prev_outlierish);
        frames.push(cloud);
    }
    (frames, expect_warm)
}

/// Runs the mixed stream through a serving session, waiting on every
/// ticket in submission order, and returns (per-frame results, report).
fn run(
    cfg: RuntimeConfig,
    frames: &[PointCloud],
) -> (
    Vec<hgpcn_runtime::FrameResult>,
    hgpcn_runtime::RuntimeReport,
) {
    let serving = ServingRuntime::start(cfg, net()).unwrap();
    let stream = serving
        .open_stream(StreamProfile::new("drift").nominal_fps(FPS))
        .unwrap();
    let tickets: Vec<_> = frames
        .iter()
        .enumerate()
        .map(|(i, cloud)| stream.submit(i as f64 / FPS, cloud.clone()).unwrap())
        .collect();
    let results: Vec<_> = tickets
        .into_iter()
        .map(|t| match serving.wait(t).unwrap() {
            FrameStatus::Done(result) => *result,
            other => panic!("frame {} did not complete: {other:?}", t.frame_index),
        })
        .collect();
    let report = serving.shutdown().unwrap();
    (results, report)
}

#[test]
fn mixed_stream_is_fifo_and_bit_identical_to_all_cold() {
    let (frames, expect_warm) = mixed_frames();
    let (warm_run, warm_report) = run(config(PreprocReuse::On, 1, 1), &frames);
    let (cold_run, cold_report) = run(config(PreprocReuse::Off, 1, 1), &frames);

    // Bit-identical *results* frame for frame: the warm path is a cost
    // model and a host-speed optimization, never a result change.
    for (i, (w, c)) in warm_run.iter().zip(&cold_run).enumerate() {
        assert_eq!(w.output.logits, c.output.logits, "frame {i} logits");
        assert_eq!(w.output.macs, c.output.macs, "frame {i} macs");
        assert_eq!(
            w.output.predicted_class(0),
            c.output.predicted_class(0),
            "frame {i}"
        );
        assert_eq!(
            w.record.preproc_reused, expect_warm[i],
            "frame {i} warm flag"
        );
        assert!(!c.record.preproc_reused, "frame {i}: off-policy warm flag");
        // Warm frames are priced as a delta pass: modeled preprocessing
        // can only get cheaper, never different in kind.
        let (w_pre, c_pre) = (
            w.record.virtual_preproc_done_s - w.record.virtual_preproc_start_s,
            c.record.virtual_preproc_done_s - c.record.virtual_preproc_start_s,
        );
        if expect_warm[i] {
            assert!(
                w_pre < c_pre,
                "frame {i}: warm not cheaper ({w_pre} vs {c_pre})"
            );
        } else {
            assert_eq!(w_pre, c_pre, "frame {i}: cold frames priced identically");
        }
    }

    // FIFO: the stream's frames complete in submission order on the
    // virtual clock, under both policies.
    for results in [&warm_run, &cold_run] {
        for pair in results.windows(2) {
            assert!(
                pair[0].record.virtual_done_s <= pair[1].record.virtual_done_s,
                "stream left FIFO order"
            );
        }
    }

    // The tally is reported, never hidden: 6 warm hits / 4 cold misses
    // on this pattern, repeated on the stream report. Off keeps no
    // cache, so it reports an empty tally rather than "10 misses".
    let hits = expect_warm.iter().filter(|&&w| w).count() as u64;
    assert_eq!(warm_report.preproc_reuse, "on");
    assert_eq!(warm_report.preproc_reuse_hits, hits);
    assert_eq!(warm_report.preproc_reuse_misses, 10 - hits);
    assert_eq!(warm_report.streams[0].preproc_reuse_hits, hits);
    assert_eq!(
        warm_report.preproc_warm_ratio(),
        hits as f64 / 10.0,
        "warm ratio"
    );
    assert_eq!(cold_report.preproc_reuse, "off");
    assert_eq!(cold_report.preproc_reuse_hits, 0);
    assert_eq!(cold_report.preproc_reuse_misses, 0);
}

#[test]
fn warm_pattern_is_deterministic_across_worker_counts() {
    // The context-turn discipline serializes cache updates into frame
    // order, so the warm/cold pattern — and with it every result and
    // every modeled per-frame cost — must be a pure function of
    // submission order, not of how many workers race over the queues.
    // (Absolute virtual timestamps legitimately differ: they model the
    // configured pipeline width.)
    let (frames, expect_warm) = mixed_frames();
    let (solo, solo_report) = run(config(PreprocReuse::On, 1, 1), &frames);
    let (pooled, pooled_report) = run(config(PreprocReuse::On, 3, 2), &frames);

    for (i, (a, b)) in solo.iter().zip(&pooled).enumerate() {
        assert_eq!(a.output.logits, b.output.logits, "frame {i} logits");
        assert_eq!(a.record.preproc_reused, expect_warm[i], "frame {i} solo");
        assert_eq!(b.record.preproc_reused, expect_warm[i], "frame {i} pooled");
        assert_eq!(a.record.modeled, b.record.modeled, "frame {i} modeled");
        assert_eq!(a.record.virtual_arrival_s, b.record.virtual_arrival_s);
    }
    assert_eq!(
        solo_report.preproc_reuse_hits,
        pooled_report.preproc_reuse_hits
    );
    assert_eq!(
        solo_report.preproc_reuse_misses,
        pooled_report.preproc_reuse_misses
    );

    // And the pooled configuration itself is reproducible: results,
    // warm pattern, and modeled costs never vary run to run. (Absolute
    // virtual timestamps can: which worker's clock serves a frame is a
    // wall-clock race, for cold and warm runtimes alike.)
    let (again, _) = run(config(PreprocReuse::On, 3, 2), &frames);
    for (i, (a, b)) in pooled.iter().zip(&again).enumerate() {
        assert_eq!(a.output.logits, b.output.logits, "frame {i} logits");
        assert_eq!(
            a.record.preproc_reused, b.record.preproc_reused,
            "frame {i}"
        );
        assert_eq!(a.record.modeled, b.record.modeled, "frame {i} modeled");
    }
}

#[test]
fn two_streams_keep_independent_caches() {
    // Two streams submitting interleaved frames: each keeps its own
    // context, so stream A's cadence never pollutes stream B's cache.
    // B's frames carry an extra outlier so the two streams' root grids
    // differ every frame — shared state would miss constantly.
    let scene = DriftingScene::new(DriftingSceneConfig::default(), 33);
    let serving = ServingRuntime::start(config(PreprocReuse::On, 2, 1), net()).unwrap();
    let a = serving.open_stream(StreamProfile::new("a")).unwrap();
    let b = serving.open_stream(StreamProfile::new("b")).unwrap();
    let mut tickets = Vec::new();
    for i in 0..4 {
        let cloud = scene.frame(i);
        tickets.push((true, a.submit(i as f64 / FPS, cloud.clone()).unwrap()));
        let mut grown = cloud;
        grown.push(Point3::splat(scene.bounds().max().x * 3.0));
        tickets.push((false, b.submit(i as f64 / FPS, grown).unwrap()));
    }
    for (_, t) in &tickets {
        assert!(matches!(serving.wait(*t).unwrap(), FrameStatus::Done(_)));
    }
    let report = serving.shutdown().unwrap();
    // Per-stream caches: each stream misses only its first frame.
    for s in &report.streams {
        assert_eq!(s.preproc_reuse_hits, 3, "stream {}", s.name);
        assert_eq!(s.preproc_reuse_misses, 1, "stream {}", s.name);
    }
    assert_eq!(report.preproc_reuse_hits, 6);
    assert_eq!(report.preproc_reuse_misses, 2);
}
