//! Scale-out serving: N runtime replicas behind one placement policy.
//!
//! A single [`ServingRuntime`] is one scheduler over two worker pools —
//! the paper's pipelined serving model, but a single box. This module
//! multiplies it: a [`ShardedRuntime`] boots N independent replicas
//! ("shards"), pins every stream to exactly one shard at open time via
//! a [`PlacementPolicy`], and presents the whole fleet through the same
//! [`StreamService`] interface as one runtime. The weights are **not**
//! cloned per replica: every shard serves the same `Arc<PointNet>`.
//!
//! Because a stream lives entirely on one shard, and per-frame seeds
//! depend only on the *shard-local* stream id and frame index, a shard
//! behaves bit-identically to an independent [`ServingRuntime`] fed the
//! same streams in the same order — sharding changes capacity, never
//! results (proved in `runtime/tests/shard.rs`).
//!
//! Reports keep both views: [`ShardedRuntime::shard_stats`] is one
//! replica's report with stream ids translated to service-wide ids, and
//! [`ShardedRuntime::stats`] aggregates across shards (frame counts
//! summed, records merged on the shared virtual-clock origin).
//! [`ShardedRuntime::metrics`] renders per-shard series under an
//! `hgpcn_shard` label plus aggregate series, with the aggregate
//! latency histograms folded from the per-shard ones via
//! [`LogHistogram::merge`].

use std::sync::{Arc, Mutex};
use std::time::Duration;

use hgpcn_geometry::PointCloud;
use hgpcn_pcn::PointNet;
use hgpcn_telemetry::Registry;

use crate::config::RuntimeConfig;
use crate::metrics::{
    BatchingStats, QueueDepthStats, QueueStats, RuntimeReport, StageBreakdown, StreamReport,
    WorkerUtilization,
};
use crate::service::StreamService;
use crate::session::{FrameStatus, FrameTicket, ServingRuntime};
use crate::stream::StreamProfile;
use crate::RuntimeError;

/// How a [`ShardedRuntime`] picks the shard that will own a new stream.
///
/// Placement runs **once per stream**, at
/// [`open_stream`](ShardedRuntime::open_stream); every frame of the
/// stream then goes to that shard, so per-stream FIFO order and
/// per-frame determinism are preserved no matter the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Hash the stream *name* onto a consistent-hash ring (FNV-1a over
    /// the name with a 64-bit avalanche finalizer, ~40 virtual nodes
    /// per shard). Placement is a pure function of the name and the
    /// shard count: the same fleet opened on another day — or on
    /// another host — lands identically, and growing the ring by one
    /// shard moves only ~1/N of the names.
    ConsistentHash,
    /// Place on the shard with the fewest frames currently queued
    /// between stages ([`ServingRuntime::queue_depth`]; ties break to
    /// the lowest shard index). Adapts to imbalance but depends on live
    /// load, so placement varies run to run.
    LeastLoaded,
}

/// Virtual nodes per shard on the consistent-hash ring — enough to keep
/// the expected name imbalance under ~20% for small shard counts.
const VNODES_PER_SHARD: usize = 40;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Final avalanche pass (splitmix64's mixer) over the raw FNV-1a hash.
/// FNV's last step per byte is one xor + multiply, so short names that
/// share a prefix and differ only in trailing bytes (`cam-0` … `cam-9`,
/// the natural way to name a fleet) come out with strongly correlated
/// high bits and cluster onto a single ring arc — without this mixer a
/// whole fleet can land on one shard.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Position of `bytes` on the consistent-hash ring.
fn ring_hash(bytes: &[u8]) -> u64 {
    mix64(fnv1a(bytes))
}

/// N [`ServingRuntime`] replicas behind one [`StreamService`] front.
///
/// All shards share **one** copy of the network weights (`Arc<PointNet>`
/// — the reason [`ServingRuntime::start`] takes
/// `impl Into<Arc<PointNet>>`). Stream ids handed out by this type are
/// *service-wide*: dense, in open order, independent of which shard
/// owns the stream. Tickets, reports and errors all speak service-wide
/// ids; the shard-local ids only exist inside the replicas.
///
/// ```
/// use hgpcn_runtime::{
///     FrameStatus, PlacementPolicy, RuntimeConfig, ShardedRuntime, StreamProfile,
///     StreamService,
/// };
/// use hgpcn_pcn::{PointNet, PointNetConfig};
/// use hgpcn_geometry::Point3;
/// use std::sync::Arc;
///
/// let net = Arc::new(PointNet::new(PointNetConfig::classification(), 7));
/// // classification() samples 512 centers in its first set-abstraction
/// // stage, so the post-downsampling cloud must keep >= 512 points.
/// let rt = ShardedRuntime::start(
///     RuntimeConfig::default().target_points(512),
///     2,
///     PlacementPolicy::ConsistentHash,
///     Arc::clone(&net), // one weight copy serves both shards
/// )?;
/// let id = rt.open_stream(StreamProfile::new("lidar-a"))?;
/// let cloud = (0..600)
///     .map(|i| {
///         let f = i as f32;
///         Point3::new((f * 0.618).fract(), (f * 0.414).fract(), (f * 0.732).fract())
///     })
///     .collect();
/// let ticket = rt.submit(id, 0.0, cloud)?;
/// match rt.wait(ticket)? {
///     FrameStatus::Done(result) => assert!(result.output.logits.rows() > 0),
///     other => panic!("expected completion, got {other:?}"),
/// }
/// let report = rt.shutdown()?;
/// assert_eq!(report.total_frames, 1);
/// # Ok::<(), hgpcn_runtime::RuntimeError>(())
/// ```
pub struct ShardedRuntime {
    shards: Vec<ServingRuntime>,
    policy: PlacementPolicy,
    /// `(ring position, shard)` sorted by position; built once at start.
    ring: Vec<(u64, usize)>,
    /// Service-wide stream id → `(shard, shard-local stream id)`, in
    /// open order. Lock order: `placements` before any shard-internal
    /// lock (open/stats paths), never the reverse.
    placements: Mutex<Vec<(usize, usize)>>,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl ShardedRuntime {
    /// Boots `shards` independent replicas of `config`, all serving the
    /// same shared network.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] if `shards == 0` or `config`
    /// fails [`RuntimeConfig::validate`].
    pub fn start(
        config: RuntimeConfig,
        shards: usize,
        policy: PlacementPolicy,
        net: impl Into<Arc<PointNet>>,
    ) -> Result<ShardedRuntime, RuntimeError> {
        if shards == 0 {
            return Err(RuntimeError::InvalidConfig(
                "a sharded runtime needs at least one shard".into(),
            ));
        }
        let net: Arc<PointNet> = net.into();
        let mut replicas = Vec::with_capacity(shards);
        for _ in 0..shards {
            replicas.push(ServingRuntime::start(config.clone(), Arc::clone(&net))?);
        }
        let mut ring = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                ring.push((ring_hash(format!("{shard}/{vnode}").as_bytes()), shard));
            }
        }
        ring.sort_unstable();
        Ok(ShardedRuntime {
            shards: replicas,
            policy,
            ring,
            placements: Mutex::new(Vec::new()),
        })
    }

    /// Number of replicas behind this runtime.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The placement policy streams are opened under.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The shard that owns `stream_id`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id.
    pub fn shard_of(&self, stream_id: usize) -> Result<usize, RuntimeError> {
        self.route(stream_id).map(|(shard, _)| shard)
    }

    fn place(&self, name: &str) -> usize {
        match self.policy {
            PlacementPolicy::ConsistentHash => {
                let h = ring_hash(name.as_bytes());
                let idx = self.ring.partition_point(|&(pos, _)| pos < h);
                self.ring[idx % self.ring.len()].1
            }
            PlacementPolicy::LeastLoaded => (0..self.shards.len())
                .min_by_key(|&k| self.shards[k].queue_depth())
                .expect("at least one shard"),
        }
    }

    /// Opens a stream on the shard the policy picks and returns its
    /// service-wide id.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice, like
    /// [`ServingRuntime::open_stream`].
    pub fn open_stream(&self, profile: StreamProfile) -> Result<usize, RuntimeError> {
        let shard = self.place(&profile.name);
        // Held across the replica call so concurrent opens observe
        // dense, open-ordered service-wide ids.
        let mut placements = self.placements.lock().expect("placement table poisoned");
        let local = self.shards[shard].open_stream(profile)?.id();
        placements.push((shard, local));
        Ok(placements.len() - 1)
    }

    fn route(&self, stream_id: usize) -> Result<(usize, usize), RuntimeError> {
        self.placements
            .lock()
            .expect("placement table poisoned")
            .get(stream_id)
            .copied()
            .ok_or(RuntimeError::UnknownStream { stream_id })
    }

    /// Shard-local stream id → service-wide id, for `shard`.
    fn local_to_global(&self, shard: usize) -> Vec<usize> {
        let placements = self.placements.lock().expect("placement table poisoned");
        local_map(&placements, shard)
    }

    /// Rewrites shard-local stream ids inside an error back into
    /// service-wide ids before it crosses this type's boundary.
    fn globalize_error(&self, shard: usize, err: RuntimeError) -> RuntimeError {
        let map = self.local_to_global(shard);
        let g = |local: usize| map.get(local).copied().unwrap_or(local);
        match err {
            RuntimeError::Frame {
                stream_id,
                frame_index,
                source,
            } => RuntimeError::Frame {
                stream_id: g(stream_id),
                frame_index,
                source,
            },
            RuntimeError::Dropped {
                stream_id,
                frame_index,
            } => RuntimeError::Dropped {
                stream_id: g(stream_id),
                frame_index,
            },
            RuntimeError::UnknownStream { stream_id } => RuntimeError::UnknownStream {
                stream_id: g(stream_id),
            },
            RuntimeError::UnknownTicket {
                stream_id,
                frame_index,
            } => RuntimeError::UnknownTicket {
                stream_id: g(stream_id),
                frame_index,
            },
            other => other,
        }
    }

    fn globalize_status(&self, shard: usize, global_id: usize, status: FrameStatus) -> FrameStatus {
        match status {
            FrameStatus::Done(mut result) => {
                result.record.stream_id = global_id;
                FrameStatus::Done(result)
            }
            FrameStatus::Failed(err) => FrameStatus::Failed(self.globalize_error(shard, err)),
            FrameStatus::Pending => FrameStatus::Pending,
        }
    }

    /// Submits one frame to the shard owning `stream_id`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id and
    /// [`RuntimeError::ShuttingDown`] once shutdown has begun.
    pub fn submit(
        &self,
        stream_id: usize,
        sensor_ts_s: f64,
        cloud: PointCloud,
    ) -> Result<FrameTicket, RuntimeError> {
        let (shard, local) = self.route(stream_id)?;
        let ticket = self.shards[shard]
            .submit(local, sensor_ts_s, cloud)
            .map_err(|e| self.globalize_error(shard, e))?;
        Ok(FrameTicket {
            stream_id,
            frame_index: ticket.frame_index,
        })
    }

    /// Polls a ticket without blocking; see [`ServingRuntime::poll`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] / [`RuntimeError::UnknownTicket`].
    pub fn poll(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        let (shard, local) = self.route(ticket.stream_id)?;
        self.shards[shard]
            .poll(FrameTicket {
                stream_id: local,
                frame_index: ticket.frame_index,
            })
            .map(|status| self.globalize_status(shard, ticket.stream_id, status))
            .map_err(|e| self.globalize_error(shard, e))
    }

    /// Blocks until `ticket` resolves; see [`ServingRuntime::wait`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] / [`RuntimeError::UnknownTicket`].
    pub fn wait(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        let (shard, local) = self.route(ticket.stream_id)?;
        self.shards[shard]
            .wait(FrameTicket {
                stream_id: local,
                frame_index: ticket.frame_index,
            })
            .map(|status| self.globalize_status(shard, ticket.stream_id, status))
            .map_err(|e| self.globalize_error(shard, e))
    }

    /// Frames currently queued between stages, summed across shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(ServingRuntime::queue_depth).sum()
    }

    /// Consistent snapshots of every shard's report, already translated
    /// to service-wide stream ids. The placement lock is held across
    /// the collection so a concurrent `open_stream` cannot leave a
    /// shard report mentioning a stream the translation table misses.
    fn globalized_reports(&self) -> Vec<RuntimeReport> {
        let placements = self.placements.lock().expect("placement table poisoned");
        self.shards
            .iter()
            .enumerate()
            .map(|(k, s)| globalize_report(s.stats(), k, &local_map(&placements, k)))
            .collect()
    }

    /// One shard's live report, with stream ids and `shard` fields in
    /// service-wide terms.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownShard`] for `shard >= shard_count()`.
    pub fn shard_stats(&self, shard: usize) -> Result<RuntimeReport, RuntimeError> {
        if shard >= self.shards.len() {
            return Err(RuntimeError::UnknownShard { shard });
        }
        let map = self.local_to_global(shard);
        Ok(globalize_report(self.shards[shard].stats(), shard, &map))
    }

    /// A live aggregate report across every shard: frame counts summed,
    /// records merged (all shards share the virtual-clock origin, so
    /// the merged timeline is coherent), stage breakdown and queue-depth
    /// series recomputed over the merged records.
    pub fn stats(&self) -> RuntimeReport {
        aggregate_reports(self.globalized_reports())
    }

    /// One stream's slice of [`ShardedRuntime::stats`] (its `shard`
    /// field names the owning replica).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id.
    pub fn stream_stats(&self, stream_id: usize) -> Result<StreamReport, RuntimeError> {
        let (shard, _) = self.route(stream_id)?;
        self.shard_stats(shard)?
            .streams
            .into_iter()
            .find(|s| s.stream_id == stream_id)
            .ok_or(RuntimeError::UnknownStream { stream_id })
    }

    /// A metrics registry with three layers: per-shard series labeled
    /// `hgpcn_shard="<k>"`, aggregate scalar series (no shard label)
    /// from the cross-shard report, and aggregate latency/depth
    /// histograms folded from the per-shard series via
    /// [`LogHistogram::merge`](hgpcn_telemetry::LogHistogram::merge) —
    /// the merge is exact (identical bucket layouts), so the aggregate
    /// histograms equal re-recording every shard's samples.
    pub fn metrics(&self) -> Registry {
        let reports = self.globalized_reports();
        let mut reg = Registry::new();
        for (k, report) in reports.iter().enumerate() {
            let shard = k.to_string();
            report.build_metrics_into(&mut reg, &[("hgpcn_shard", shard.as_str())]);
        }
        let shard_count = reports.len();
        aggregate_reports(reports).build_scalar_metrics_into(&mut reg, &[]);
        // The histogram families build_histogram_metrics_into emits,
        // folded shard-by-shard instead of re-recorded.
        type Family = (
            &'static str,
            &'static str,
            &'static [(&'static str, &'static str)],
        );
        const HISTOGRAM_FAMILIES: &[Family] = &[
            (
                "hgpcn_stage_service_seconds",
                "Modeled per-stage service time",
                &[("stage", "preproc")],
            ),
            (
                "hgpcn_stage_service_seconds",
                "Modeled per-stage service time",
                &[("stage", "infer")],
            ),
            (
                "hgpcn_queue_wait_seconds",
                "Modeled time queued between stages",
                &[("queue", "ingress")],
            ),
            (
                "hgpcn_queue_wait_seconds",
                "Modeled time queued between stages",
                &[("queue", "stage")],
            ),
            (
                "hgpcn_sojourn_seconds",
                "Modeled end-to-end frame sojourn",
                &[],
            ),
            (
                "hgpcn_queue_depth",
                "Modeled queue occupancy after each change",
                &[("queue", "ingress")],
            ),
            (
                "hgpcn_queue_depth",
                "Modeled queue occupancy after each change",
                &[("queue", "stage")],
            ),
        ];
        for &(name, help, labels) in HISTOGRAM_FAMILIES {
            for k in 0..shard_count {
                let shard = k.to_string();
                let mut labeled: Vec<(&str, &str)> = labels.to_vec();
                labeled.push(("hgpcn_shard", shard.as_str()));
                let from_shard = reg.histogram(name, &labeled).cloned();
                if let Some(h) = from_shard {
                    reg.histogram_merge(name, help, labels, &h);
                }
            }
        }
        reg
    }

    /// Gracefully shuts down every shard in index order, draining their
    /// backlogs, and returns the aggregate final report.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's failure; never fails today, like
    /// [`ServingRuntime::shutdown`].
    pub fn shutdown(self) -> Result<RuntimeReport, RuntimeError> {
        let ShardedRuntime {
            shards, placements, ..
        } = self;
        let placements = placements.into_inner().expect("placement table poisoned");
        let mut reports = Vec::with_capacity(shards.len());
        for (k, shard) in shards.into_iter().enumerate() {
            let report = shard.shutdown()?;
            reports.push(globalize_report(report, k, &local_map(&placements, k)));
        }
        Ok(aggregate_reports(reports))
    }
}

impl StreamService for ShardedRuntime {
    fn open_stream(&self, profile: StreamProfile) -> Result<usize, RuntimeError> {
        ShardedRuntime::open_stream(self, profile)
    }

    fn submit(
        &self,
        stream_id: usize,
        sensor_ts_s: f64,
        cloud: PointCloud,
    ) -> Result<FrameTicket, RuntimeError> {
        ShardedRuntime::submit(self, stream_id, sensor_ts_s, cloud)
    }

    fn poll(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        ShardedRuntime::poll(self, ticket)
    }

    fn wait(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        ShardedRuntime::wait(self, ticket)
    }

    fn stats(&self) -> RuntimeReport {
        ShardedRuntime::stats(self)
    }

    fn stream_stats(&self, stream_id: usize) -> Result<StreamReport, RuntimeError> {
        ShardedRuntime::stream_stats(self, stream_id)
    }

    fn shard_count(&self) -> usize {
        ShardedRuntime::shard_count(self)
    }

    fn shard_of(&self, stream_id: usize) -> Result<usize, RuntimeError> {
        ShardedRuntime::shard_of(self, stream_id)
    }

    fn shard_stats(&self, shard: usize) -> Result<RuntimeReport, RuntimeError> {
        ShardedRuntime::shard_stats(self, shard)
    }

    fn metrics(&self) -> Registry {
        ShardedRuntime::metrics(self)
    }

    fn shutdown(self) -> Result<RuntimeReport, RuntimeError> {
        ShardedRuntime::shutdown(self)
    }
}

/// Shard-local stream id → service-wide id for one shard: locals are
/// assigned densely in open order, so position `l` of the filtered
/// placement list is local id `l`.
fn local_map(placements: &[(usize, usize)], shard: usize) -> Vec<usize> {
    placements
        .iter()
        .enumerate()
        .filter(|&(_, &(s, _))| s == shard)
        .map(|(global, _)| global)
        .collect()
}

/// Rewrites one shard's report into service-wide stream ids and stamps
/// the owning shard, re-sorting streams and records on the new ids.
fn globalize_report(mut report: RuntimeReport, shard: usize, map: &[usize]) -> RuntimeReport {
    let g = |local: usize| map.get(local).copied().unwrap_or(local);
    for s in &mut report.streams {
        s.stream_id = g(s.stream_id);
        s.shard = shard;
    }
    report.streams.sort_by_key(|s| s.stream_id);
    for r in &mut report.records {
        r.stream_id = g(r.stream_id);
    }
    report.records.sort_by_key(|r| (r.stream_id, r.frame_index));
    report
}

/// Folds already-globalized per-shard reports into one aggregate. Every
/// shard's virtual clock starts at zero, so min-arrival/max-completion
/// over the merged records is a coherent fleet makespan, and
/// throughput/utilization follow from it with the summed worker pools.
fn aggregate_reports(reports: Vec<RuntimeReport>) -> RuntimeReport {
    assert!(!reports.is_empty(), "a sharded runtime has >= 1 shard");

    let mut streams: Vec<StreamReport> = Vec::new();
    let mut records = Vec::new();
    for report in &reports {
        streams.extend(report.streams.iter().cloned());
        records.extend(report.records.iter().cloned());
    }
    streams.sort_by_key(|s| s.stream_id);
    records.sort_by_key(|r| (r.stream_id, r.frame_index));

    let earliest_arrival = records
        .iter()
        .map(|r| r.virtual_arrival_s)
        .fold(f64::INFINITY, f64::min);
    let latest_done = records
        .iter()
        .map(|r| r.virtual_done_s)
        .fold(0.0f64, f64::max);
    let virtual_makespan_s = if records.is_empty() {
        0.0
    } else {
        (latest_done - earliest_arrival).max(0.0)
    };
    let modeled_pipelined_fps = if virtual_makespan_s > 1e-12 {
        records.len() as f64 / virtual_makespan_s
    } else {
        0.0
    };

    let preproc_workers: usize = reports.iter().map(|r| r.preproc_workers).sum();
    let inference_workers: usize = reports.iter().map(|r| r.inference_workers).sum();

    let queue = |pick: fn(&RuntimeReport) -> QueueStats| QueueStats {
        high_water: reports
            .iter()
            .map(|r| pick(r).high_water)
            .max()
            .unwrap_or(0),
        dropped: reports.iter().map(|r| pick(r).dropped).sum(),
    };

    let precision = match streams.as_slice() {
        [] => reports[0].precision,
        [first, rest @ ..] if rest.iter().all(|s| s.precision == first.precision) => {
            first.precision
        }
        _ => "mixed",
    };

    let batched_frames: f64 = reports
        .iter()
        .map(|r| r.batching.mean_batch_size * r.batching.batches as f64)
        .sum();
    let batches: usize = reports.iter().map(|r| r.batching.batches).sum();
    let batching = BatchingStats {
        max_batch: reports[0].batching.max_batch,
        batches,
        largest_batch: reports
            .iter()
            .map(|r| r.batching.largest_batch)
            .max()
            .unwrap_or(0),
        mean_batch_size: if batches == 0 {
            1.0
        } else {
            batched_frames / batches as f64
        },
        coalesced_frames: reports.iter().map(|r| r.batching.coalesced_frames).sum(),
    };

    let breakdown = StageBreakdown::from_records(&records);
    let utilization = if virtual_makespan_s > 1e-12 {
        WorkerUtilization {
            preproc_busy: breakdown.virtual_preproc_busy_s
                / (virtual_makespan_s * preproc_workers as f64),
            infer_busy: breakdown.virtual_infer_busy_s
                / (virtual_makespan_s * inference_workers as f64),
        }
    } else {
        WorkerUtilization::default()
    };
    let ingress_depth = QueueDepthStats::from_deltas(
        records
            .iter()
            .flat_map(|r| [(r.virtual_arrival_s, 1), (r.virtual_preproc_start_s, -1)])
            .collect(),
    );
    let stage_depth = QueueDepthStats::from_deltas(
        records
            .iter()
            .flat_map(|r| [(r.virtual_preproc_done_s, 1), (r.virtual_infer_start_s, -1)])
            .collect(),
    );

    RuntimeReport {
        total_frames: records.len(),
        total_dropped: streams.iter().map(|s| s.dropped).sum(),
        streams,
        preproc_workers,
        inference_workers,
        ingress_queue: queue(|r| r.ingress_queue),
        stage_queue: queue(|r| r.stage_queue),
        virtual_makespan_s,
        modeled_pipelined_fps,
        wall_elapsed: reports
            .iter()
            .map(|r| r.wall_elapsed)
            .max()
            .unwrap_or(Duration::ZERO),
        kernel_backend: reports[0].kernel_backend,
        // Shards share one config and one network, so their resolved
        // stage backends are identical; take the first shard's. Same
        // for the preprocessing reuse policy; its hit/miss tallies sum.
        stage_backends: reports[0].stage_backends,
        preproc_reuse: reports[0].preproc_reuse,
        preproc_reuse_hits: reports.iter().map(|r| r.preproc_reuse_hits).sum(),
        preproc_reuse_misses: reports.iter().map(|r| r.preproc_reuse_misses).sum(),
        precision,
        batching,
        breakdown,
        utilization,
        ingress_depth,
        stage_depth,
        telemetry: None,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_hash_is_a_pure_function_of_name_and_shard_count() {
        let ring = |shards: usize| {
            let mut ring = Vec::new();
            for shard in 0..shards {
                for vnode in 0..VNODES_PER_SHARD {
                    ring.push((ring_hash(format!("{shard}/{vnode}").as_bytes()), shard));
                }
            }
            ring.sort_unstable();
            ring
        };
        let lookup = |ring: &[(u64, usize)], name: &str| {
            let h = ring_hash(name.as_bytes());
            let idx = ring.partition_point(|&(pos, _)| pos < h);
            ring[idx % ring.len()].1
        };
        let r4 = ring(4);
        for name in ["lidar-0", "lidar-1", "cam-front", "radar-x"] {
            assert_eq!(lookup(&r4, name), lookup(&ring(4), name));
        }
        // With 4 shards and many names, every shard owns some names.
        let mut owners = std::collections::HashSet::new();
        for i in 0..256 {
            owners.insert(lookup(&r4, &format!("stream-{i}")));
        }
        assert_eq!(owners.len(), 4, "ring must spread names over all shards");
    }

    #[test]
    fn local_map_translates_in_open_order() {
        // Opens: g0→shard1, g1→shard0, g2→shard1, g3→shard0.
        let placements = vec![(1, 0), (0, 0), (1, 1), (0, 1)];
        assert_eq!(local_map(&placements, 0), vec![1, 3]);
        assert_eq!(local_map(&placements, 1), vec![0, 2]);
    }
}
