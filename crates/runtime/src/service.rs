//! The [`StreamService`] abstraction: one small, stable interface over
//! every live serving front end.
//!
//! In the microkernel spirit of this workspace, the *mechanism* of
//! serving (worker pools, queues, ticket tables — [`ServingRuntime`])
//! is separated from the *topology* it is deployed in (one replica, or
//! N placement-balanced replicas — [`ShardedRuntime`]). `StreamService`
//! is the seam between them: a network front end (`hgpcn-serve`)
//! written against this trait serves either topology unchanged, and the
//! shard count becomes a deployment flag instead of a code path.
//!
//! [`ShardedRuntime`]: crate::ShardedRuntime

use hgpcn_geometry::PointCloud;
use hgpcn_telemetry::Registry;

use crate::metrics::{RuntimeReport, StreamReport};
use crate::session::{FrameStatus, FrameTicket, ServingRuntime};
use crate::stream::StreamProfile;
use crate::RuntimeError;

/// A live stream-serving endpoint: open streams, submit frames, poll
/// tickets, snapshot stats, shut down.
///
/// Implemented by [`ServingRuntime`] (a single replica; every shard
/// accessor degenerates to the identity) and
/// [`ShardedRuntime`](crate::ShardedRuntime) (N replicas behind a
/// placement policy). The ticket-oriented calls mirror the inherent
/// [`ServingRuntime`] API exactly, with one deliberate difference:
/// [`StreamService::open_stream`] returns the plain stream id rather
/// than a [`StreamHandle`](crate::StreamHandle), because ids — unlike
/// handles — survive serialization across an RPC boundary. (Rust
/// resolves method calls to inherent methods first, so the trait does
/// not shadow `ServingRuntime::open_stream` for existing callers.)
pub trait StreamService: Send + Sync {
    /// Opens a stream session and returns its service-wide id.
    ///
    /// # Errors
    ///
    /// Implementation-defined admission refusals; infallible today.
    fn open_stream(&self, profile: StreamProfile) -> Result<usize, RuntimeError>;

    /// Submits one frame to `stream_id`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id and
    /// [`RuntimeError::ShuttingDown`] once shutdown has begun.
    fn submit(
        &self,
        stream_id: usize,
        sensor_ts_s: f64,
        cloud: PointCloud,
    ) -> Result<FrameTicket, RuntimeError>;

    /// Polls a ticket without blocking. See [`FrameStatus`] for the
    /// at-most-once delivery contract.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a never-issued or
    /// already-consumed ticket.
    fn poll(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError>;

    /// Blocks until `ticket` resolves.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a never-issued or
    /// already-consumed ticket.
    fn wait(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError>;

    /// A live snapshot of the aggregate serving report (aggregated
    /// across every shard on a sharded service).
    fn stats(&self) -> RuntimeReport;

    /// One stream's slice of [`StreamService::stats`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id.
    fn stream_stats(&self, stream_id: usize) -> Result<StreamReport, RuntimeError>;

    /// Number of runtime replicas behind this service. `1` for a single
    /// [`ServingRuntime`].
    fn shard_count(&self) -> usize {
        1
    }

    /// The shard that owns `stream_id` (always `0` on a single
    /// runtime). A stream is pinned to one shard for its lifetime, so
    /// the answer never changes once a stream is open.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id.
    fn shard_of(&self, stream_id: usize) -> Result<usize, RuntimeError>;

    /// One shard's own live report, with stream ids and shard fields
    /// expressed in *service-wide* terms. `shard_stats(0)` on a single
    /// runtime is exactly [`StreamService::stats`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownShard`] for `shard >= shard_count()`.
    fn shard_stats(&self, shard: usize) -> Result<RuntimeReport, RuntimeError>;

    /// A populated metrics registry for this service — what an HTTP
    /// front end renders on `/metrics`. The default is the single-
    /// replica rendering
    /// ([`RuntimeReport::build_metrics`]); a sharded service overrides
    /// this to add per-shard series under an `hgpcn_shard` label.
    fn metrics(&self) -> Registry {
        self.stats().build_metrics()
    }

    /// Graceful shutdown: refuses new submissions, drains every queued
    /// frame and returns the final aggregate report.
    ///
    /// # Errors
    ///
    /// Implementation-defined; the single-replica service never fails.
    fn shutdown(self) -> Result<RuntimeReport, RuntimeError>
    where
        Self: Sized;
}

impl StreamService for ServingRuntime {
    fn open_stream(&self, profile: StreamProfile) -> Result<usize, RuntimeError> {
        ServingRuntime::open_stream(self, profile).map(|handle| handle.id())
    }

    fn submit(
        &self,
        stream_id: usize,
        sensor_ts_s: f64,
        cloud: PointCloud,
    ) -> Result<FrameTicket, RuntimeError> {
        ServingRuntime::submit(self, stream_id, sensor_ts_s, cloud)
    }

    fn poll(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        ServingRuntime::poll(self, ticket)
    }

    fn wait(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        ServingRuntime::wait(self, ticket)
    }

    fn stats(&self) -> RuntimeReport {
        ServingRuntime::stats(self)
    }

    fn stream_stats(&self, stream_id: usize) -> Result<StreamReport, RuntimeError> {
        ServingRuntime::stream_stats(self, stream_id)
    }

    fn shard_of(&self, stream_id: usize) -> Result<usize, RuntimeError> {
        match self.stream(stream_id) {
            Some(_) => Ok(0),
            None => Err(RuntimeError::UnknownStream { stream_id }),
        }
    }

    fn shard_stats(&self, shard: usize) -> Result<RuntimeReport, RuntimeError> {
        if shard == 0 {
            Ok(ServingRuntime::stats(self))
        } else {
            Err(RuntimeError::UnknownShard { shard })
        }
    }

    fn shutdown(self) -> Result<RuntimeReport, RuntimeError> {
        ServingRuntime::shutdown(self)
    }
}
