//! `hgpcn-runtime` — a concurrent multi-stream serving runtime for the
//! HgPCN end-to-end pipeline.
//!
//! The paper's §VII-E real-time criterion is modeled analytically in
//! [`hgpcn_system::realtime`]: a single sensor stream, with serial and
//! two-stage-pipelined FPS computed from per-frame latencies. This crate
//! *executes* that pipeline: N independent sensor streams are admitted
//! by a multi-tenant [`Scheduler`], flow through bounded MPMC
//! [`BoundedQueue`]s into a pre-processing worker pool and an inference
//! worker pool (so pre-processing of frame *t+1* overlaps inference of
//! frame *t* in real threads), and every frame's journey is recorded
//! into a [`RuntimeReport`] with per-stream p50/p95/p99 latency
//! summaries, achieved-vs-sensor FPS, queue depths and drop counters.
//!
//! In the spirit of a microkernel, orchestration is separated from
//! compute: this crate contains **no** pipeline math — it only moves
//! frames between the engines that [`hgpcn_system`] already models —
//! and policy (admission order, backpressure) is separated from
//! mechanism (queues and worker pools).
//!
//! With [`RuntimeConfig::max_batch`] ≥ 2, inference workers coalesce
//! queued frames into **micro-batches** and execute them through the SoA
//! batched engine path
//! ([`InferenceEngine::run_batch`](hgpcn_system::InferenceEngine::run_batch)):
//! one weight traversal per MLP layer serves the whole batch. Coalescing
//! never waits for frames (only already-queued work is drained), honours
//! a deadline-aware ceiling ([`RuntimeConfig::batch_deadline_s`]), and
//! preserves both per-stream FIFO order and per-frame `frame_seed`
//! determinism — batched results are bit-identical to the serial path,
//! only host throughput changes ([`RuntimeReport::wall_speedup_over`],
//! [`BatchingStats`]).
//!
//! Latency accounting runs on a *virtual clock*: workers advance their
//! own virtual time by the modeled latency of the work they actually
//! executed. Per-frame results are deterministic regardless of worker
//! count (seeds depend only on stream and frame index); the aggregate
//! virtual timeline is bit-reproducible with one worker per stage —
//! wider pools inherit the OS's frame-to-worker assignment — and stays
//! directly comparable to the analytical
//! [`RealtimeReport::pipelined_fps`](hgpcn_system::realtime::RealtimeReport)
//! — see [`RuntimeReport::validate_against`].
//!
//! # Quick start
//!
//! ```
//! use hgpcn_runtime::{
//!     ArrivalModel, Runtime, RuntimeConfig, StreamSpec, SyntheticSource,
//! };
//! use hgpcn_pcn::{PointNet, PointNetConfig};
//!
//! let runtime = Runtime::new(
//!     RuntimeConfig::default()
//!         .preproc_workers(2)
//!         .inference_workers(2)
//!         .target_points(512)
//!         .arrival(ArrivalModel::Backlogged),
//! )?;
//! let net = PointNet::new(PointNetConfig::classification(), 7);
//! let streams = vec![
//!     StreamSpec::new("lidar-a", SyntheticSource::new(2000, 10.0, 3, 1)),
//!     StreamSpec::new("lidar-b", SyntheticSource::new(2000, 20.0, 3, 2)),
//! ];
//! let report = runtime.run(streams, &net)?;
//! assert_eq!(report.total_frames, 6);
//! assert!(report.modeled_pipelined_fps > 0.0);
//! # Ok::<(), hgpcn_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod executor;
mod metrics;
mod queue;
mod scheduler;
mod service;
pub(crate) mod session;
mod shard;
mod stream;

pub use config::{AdmissionPolicy, ArrivalModel, BackpressurePolicy, RuntimeConfig};
pub use executor::Runtime;
pub use metrics::{
    BatchingStats, CrossValidation, FrameRecord, LatencySummary, QueueDepthStats, QueueStats,
    RuntimeReport, StageBackendNames, StageBreakdown, StreamReport, TelemetrySnapshot,
    WorkerUtilization, DEFAULT_VALIDATION_TOLERANCE,
};
pub use queue::{BoundedQueue, Closed};
pub use scheduler::Scheduler;
pub use service::StreamService;
pub use session::{FrameResult, FrameStatus, FrameTicket, ServingRuntime, StreamHandle};
pub use shard::{PlacementPolicy, ShardedRuntime};
pub use stream::{
    FrameSource, KittiSource, StreamProfile, StreamSpec, SyntheticSource, TimedFrame,
};

// Re-exported so serving code can pick precision tiers and pin
// preproc-stage backends without a direct `hgpcn_pcn` dependency.
pub use hgpcn_pcn::{Precision, StageBackends};

// Re-exported so serving code can pin the preprocessing state policy
// without a direct `hgpcn_system` dependency.
pub use hgpcn_system::PreprocReuse;

// Re-exported so serving code can configure and consume telemetry
// without a direct `hgpcn_telemetry` dependency.
pub use hgpcn_telemetry::{Registry, TelemetryMode, Trace};

use std::error::Error;
use std::fmt;

use hgpcn_system::SystemError;

/// Errors produced by the serving runtime.
///
/// Every variant maps to a stable machine-readable [`ErrorCode`] via
/// [`RuntimeError::code`] — the contract network front ends (JSON-RPC
/// error objects, HTTP statuses) are built on, so matching on codes
/// stays valid across releases even though the enum itself is
/// `#[non_exhaustive]`.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The configuration cannot be run.
    InvalidConfig(String),
    /// `run` was called with an empty stream list.
    NoStreams,
    /// An engine failed on a frame. Aborts a batch run; on a
    /// [`ServingRuntime`] it resolves only that frame's ticket
    /// ([`FrameStatus::Failed`]).
    Frame {
        /// Stream the failing frame belonged to.
        stream_id: usize,
        /// Per-stream index of the failing frame.
        frame_index: usize,
        /// The underlying engine failure.
        source: SystemError,
    },
    /// A frame was evicted by `DropOldest` backpressure before it could
    /// be served (serving sessions only; a batch run counts drops in its
    /// report instead).
    Dropped {
        /// Stream the evicted frame belonged to.
        stream_id: usize,
        /// Per-stream index of the evicted frame.
        frame_index: usize,
    },
    /// The stream id has not been opened on this session.
    UnknownStream {
        /// The offending id.
        stream_id: usize,
    },
    /// The ticket was never issued by this session, or its result was
    /// already consumed by an earlier poll.
    UnknownTicket {
        /// Stream of the offending ticket.
        stream_id: usize,
        /// Frame index of the offending ticket.
        frame_index: usize,
    },
    /// The session is shutting down and refuses new work.
    ShuttingDown,
    /// The shard index is out of range for this service
    /// ([`StreamService::shard_stats`]).
    UnknownShard {
        /// The offending shard index.
        shard: usize,
    },
}

/// Stable machine-readable identity of a [`RuntimeError`].
///
/// The string form ([`ErrorCode::as_str`]) and the JSON-RPC numeric
/// form ([`ErrorCode::json_rpc`]) are wire contract: they never change
/// for an existing variant, and new variants get new values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// `invalid_config` / `-32001`.
    InvalidConfig,
    /// `no_streams` / `-32002`.
    NoStreams,
    /// `frame_failed` / `-32003`.
    FrameFailed,
    /// `frame_dropped` / `-32004`.
    FrameDropped,
    /// `unknown_stream` / `-32005`.
    UnknownStream,
    /// `unknown_ticket` / `-32006`.
    UnknownTicket,
    /// `shutting_down` / `-32007`.
    ShuttingDown,
    /// `unknown_shard` / `-32008`.
    UnknownShard,
}

impl ErrorCode {
    /// The stable snake_case identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::NoStreams => "no_streams",
            ErrorCode::FrameFailed => "frame_failed",
            ErrorCode::FrameDropped => "frame_dropped",
            ErrorCode::UnknownStream => "unknown_stream",
            ErrorCode::UnknownTicket => "unknown_ticket",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::UnknownShard => "unknown_shard",
        }
    }

    /// The stable JSON-RPC 2.0 error code (in the server-defined
    /// `-32000..=-32099` band the spec reserves for implementations).
    pub fn json_rpc(self) -> i64 {
        match self {
            ErrorCode::InvalidConfig => -32001,
            ErrorCode::NoStreams => -32002,
            ErrorCode::FrameFailed => -32003,
            ErrorCode::FrameDropped => -32004,
            ErrorCode::UnknownStream => -32005,
            ErrorCode::UnknownTicket => -32006,
            ErrorCode::ShuttingDown => -32007,
            ErrorCode::UnknownShard => -32008,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl RuntimeError {
    /// This error's stable machine-readable code.
    pub fn code(&self) -> ErrorCode {
        match self {
            RuntimeError::InvalidConfig(_) => ErrorCode::InvalidConfig,
            RuntimeError::NoStreams => ErrorCode::NoStreams,
            RuntimeError::Frame { .. } => ErrorCode::FrameFailed,
            RuntimeError::Dropped { .. } => ErrorCode::FrameDropped,
            RuntimeError::UnknownStream { .. } => ErrorCode::UnknownStream,
            RuntimeError::UnknownTicket { .. } => ErrorCode::UnknownTicket,
            RuntimeError::ShuttingDown => ErrorCode::ShuttingDown,
            RuntimeError::UnknownShard { .. } => ErrorCode::UnknownShard,
        }
    }

    /// For [`RuntimeError::Frame`], the engine stage that failed
    /// (`octree` / `sampling` / `gather` / `pcn`) — a stable
    /// sub-code network front ends forward as error data.
    pub fn frame_stage(&self) -> Option<&'static str> {
        match self {
            RuntimeError::Frame { source, .. } => Some(match source {
                SystemError::Octree(_) => "octree",
                SystemError::Sampling(_) => "sampling",
                SystemError::Gather(_) => "gather",
                SystemError::Pcn(_) => "pcn",
                // `SystemError` is non-exhaustive; a stage added there
                // gets a proper name here on the next audit.
                _ => "system",
            }),
            _ => None,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidConfig(why) => write!(f, "invalid runtime config: {why}"),
            RuntimeError::NoStreams => write!(f, "no streams to serve"),
            RuntimeError::Frame {
                stream_id,
                frame_index,
                source,
            } => write!(
                f,
                "frame {frame_index} of stream {stream_id} failed: {source}"
            ),
            RuntimeError::Dropped {
                stream_id,
                frame_index,
            } => write!(
                f,
                "frame {frame_index} of stream {stream_id} was evicted by backpressure"
            ),
            RuntimeError::UnknownStream { stream_id } => {
                write!(f, "stream {stream_id} is not open on this session")
            }
            RuntimeError::UnknownTicket {
                stream_id,
                frame_index,
            } => write!(
                f,
                "no pending result for frame {frame_index} of stream {stream_id} \
                 (never submitted, or already consumed)"
            ),
            RuntimeError::ShuttingDown => write!(f, "runtime is shutting down"),
            RuntimeError::UnknownShard { shard } => {
                write!(f, "shard {shard} is out of range for this service")
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Frame { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Derives the per-frame seed every stage uses for a given frame.
///
/// Deterministic in `(base, stream_id, frame_index)` and independent of
/// worker count or scheduling order — the foundation of the runtime's
/// reproducibility guarantee. A serial re-run of
/// [`E2ePipeline::process_frame`](hgpcn_system::E2ePipeline::process_frame)
/// with this seed reproduces the runtime's per-frame results exactly.
pub fn frame_seed(base: u64, stream_id: usize, frame_index: usize) -> u64 {
    base ^ (stream_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (frame_index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_seeds_are_distinct_across_streams_and_frames() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8 {
            for frame in 0..64 {
                assert!(seen.insert(frame_seed(7, stream, frame)));
            }
        }
    }

    #[test]
    fn error_display_names_the_frame() {
        let err = RuntimeError::NoStreams;
        assert_eq!(err.to_string(), "no streams to serve");
        let bad = RuntimeError::InvalidConfig("queue_capacity must be >= 1".into());
        assert!(bad.to_string().contains("queue_capacity"));
    }
}
