//! `hgpcn-runtime` — a concurrent multi-stream serving runtime for the
//! HgPCN end-to-end pipeline.
//!
//! The paper's §VII-E real-time criterion is modeled analytically in
//! [`hgpcn_system::realtime`]: a single sensor stream, with serial and
//! two-stage-pipelined FPS computed from per-frame latencies. This crate
//! *executes* that pipeline: N independent sensor streams are admitted
//! by a multi-tenant [`Scheduler`], flow through bounded MPMC
//! [`BoundedQueue`]s into a pre-processing worker pool and an inference
//! worker pool (so pre-processing of frame *t+1* overlaps inference of
//! frame *t* in real threads), and every frame's journey is recorded
//! into a [`RuntimeReport`] with per-stream p50/p95/p99 latency
//! summaries, achieved-vs-sensor FPS, queue depths and drop counters.
//!
//! In the spirit of a microkernel, orchestration is separated from
//! compute: this crate contains **no** pipeline math — it only moves
//! frames between the engines that [`hgpcn_system`] already models —
//! and policy (admission order, backpressure) is separated from
//! mechanism (queues and worker pools).
//!
//! With [`RuntimeConfig::max_batch`] ≥ 2, inference workers coalesce
//! queued frames into **micro-batches** and execute them through the SoA
//! batched engine path
//! ([`InferenceEngine::run_batch`](hgpcn_system::InferenceEngine::run_batch)):
//! one weight traversal per MLP layer serves the whole batch. Coalescing
//! never waits for frames (only already-queued work is drained), honours
//! a deadline-aware ceiling ([`RuntimeConfig::batch_deadline_s`]), and
//! preserves both per-stream FIFO order and per-frame `frame_seed`
//! determinism — batched results are bit-identical to the serial path,
//! only host throughput changes ([`RuntimeReport::wall_speedup_over`],
//! [`BatchingStats`]).
//!
//! Latency accounting runs on a *virtual clock*: workers advance their
//! own virtual time by the modeled latency of the work they actually
//! executed. Per-frame results are deterministic regardless of worker
//! count (seeds depend only on stream and frame index); the aggregate
//! virtual timeline is bit-reproducible with one worker per stage —
//! wider pools inherit the OS's frame-to-worker assignment — and stays
//! directly comparable to the analytical
//! [`RealtimeReport::pipelined_fps`](hgpcn_system::realtime::RealtimeReport)
//! — see [`RuntimeReport::validate_against`].
//!
//! # Quick start
//!
//! ```
//! use hgpcn_runtime::{
//!     ArrivalModel, Runtime, RuntimeConfig, StreamSpec, SyntheticSource,
//! };
//! use hgpcn_pcn::{PointNet, PointNetConfig};
//!
//! let runtime = Runtime::new(
//!     RuntimeConfig::default()
//!         .preproc_workers(2)
//!         .inference_workers(2)
//!         .target_points(512)
//!         .arrival(ArrivalModel::Backlogged),
//! )?;
//! let net = PointNet::new(PointNetConfig::classification(), 7);
//! let streams = vec![
//!     StreamSpec::new("lidar-a", SyntheticSource::new(2000, 10.0, 3, 1)),
//!     StreamSpec::new("lidar-b", SyntheticSource::new(2000, 20.0, 3, 2)),
//! ];
//! let report = runtime.run(streams, &net)?;
//! assert_eq!(report.total_frames, 6);
//! assert!(report.modeled_pipelined_fps > 0.0);
//! # Ok::<(), hgpcn_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod executor;
mod metrics;
mod queue;
mod scheduler;
mod stream;

pub use config::{AdmissionPolicy, ArrivalModel, BackpressurePolicy, RuntimeConfig};
pub use executor::Runtime;
pub use metrics::{
    BatchingStats, CrossValidation, FrameRecord, LatencySummary, QueueDepthStats, QueueStats,
    RuntimeReport, StageBreakdown, StreamReport, TelemetrySnapshot, WorkerUtilization,
    DEFAULT_VALIDATION_TOLERANCE,
};
pub use queue::{BoundedQueue, Closed};
pub use scheduler::Scheduler;
pub use stream::{FrameSource, KittiSource, StreamSpec, SyntheticSource, TimedFrame};

// Re-exported so serving code can pick precision tiers without a
// direct `hgpcn_pcn` dependency.
pub use hgpcn_pcn::Precision;

// Re-exported so serving code can configure and consume telemetry
// without a direct `hgpcn_telemetry` dependency.
pub use hgpcn_telemetry::{Registry, TelemetryMode, Trace};

use std::error::Error;
use std::fmt;

use hgpcn_system::SystemError;

/// Errors produced by the serving runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The configuration cannot be run.
    InvalidConfig(String),
    /// `run` was called with an empty stream list.
    NoStreams,
    /// An engine failed on a frame; the run was aborted.
    Frame {
        /// Stream the failing frame belonged to.
        stream_id: usize,
        /// Per-stream index of the failing frame.
        frame_index: usize,
        /// The underlying engine failure.
        source: SystemError,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidConfig(why) => write!(f, "invalid runtime config: {why}"),
            RuntimeError::NoStreams => write!(f, "no streams to serve"),
            RuntimeError::Frame {
                stream_id,
                frame_index,
                source,
            } => write!(
                f,
                "frame {frame_index} of stream {stream_id} failed: {source}"
            ),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Frame { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Derives the per-frame seed every stage uses for a given frame.
///
/// Deterministic in `(base, stream_id, frame_index)` and independent of
/// worker count or scheduling order — the foundation of the runtime's
/// reproducibility guarantee. A serial re-run of
/// [`E2ePipeline::process_frame`](hgpcn_system::E2ePipeline::process_frame)
/// with this seed reproduces the runtime's per-frame results exactly.
pub fn frame_seed(base: u64, stream_id: usize, frame_index: usize) -> u64 {
    base ^ (stream_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (frame_index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_seeds_are_distinct_across_streams_and_frames() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8 {
            for frame in 0..64 {
                assert!(seen.insert(frame_seed(7, stream, frame)));
            }
        }
    }

    #[test]
    fn error_display_names_the_frame() {
        let err = RuntimeError::NoStreams;
        assert_eq!(err.to_string(), "no streams to serve");
        let bad = RuntimeError::InvalidConfig("queue_capacity must be >= 1".into());
        assert!(bad.to_string().contains("queue_capacity"));
    }
}
