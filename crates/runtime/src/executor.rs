//! The stage-pipelined executor: real threads driving the two HgPCN
//! engines over bounded queues.
//!
//! Thread topology (all threads are scoped; the run owns everything):
//!
//! ```text
//! admission ──► [ingress queue] ──► preproc pool ──► [stage queue] ──► inference pool ──► records
//!  (scheduler)     bounded            P workers         bounded           I workers
//! ```
//!
//! Pre-processing of frame *t+1* overlaps inference of frame *t* in
//! real threads — the execution the analytical
//! [`realtime`](hgpcn_system::realtime) model only predicts. Latency
//! accounting runs on a **virtual clock**: each worker advances its own
//! virtual time by the modeled latency of the work it actually executed,
//! keeping throughput comparable to the paper's modeled numbers while
//! wall-clock duration is reported separately. Per-frame modeled
//! results are fully deterministic (seeds depend only on stream and
//! frame index); the *aggregate* virtual timeline is bit-reproducible
//! with one worker per stage, while wider pools inherit the OS's
//! frame-to-worker assignment and may shift virtual queueing times
//! slightly between runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use hgpcn_geometry::PointCloud;
use hgpcn_pcn::{PointNet, Precision};
use hgpcn_system::{E2ePipeline, E2eReport, InferenceReport, PhaseReport, SystemError};
use hgpcn_telemetry::{EventKind, Registry, SpanRecorder, TraceCollector, WorkerId};

use crate::config::{ArrivalModel, BackpressurePolicy, RuntimeConfig};
use crate::metrics::{
    BatchingStats, FrameRecord, LatencySummary, QueueDepthStats, QueueStats, RuntimeReport,
    StageBreakdown, StreamReport, TelemetrySnapshot, WorkerUtilization,
};
use crate::queue::BoundedQueue;
use crate::scheduler::Scheduler;
use crate::stream::{StreamSpec, TimedFrame};
use crate::{frame_seed, RuntimeError};

/// A frame admitted to the pre-processing stage.
#[derive(Debug)]
struct PreprocJob {
    frame: TimedFrame,
    virtual_arrival_s: f64,
}

/// A pre-processed frame awaiting inference.
#[derive(Debug)]
struct StageJob {
    stream_id: usize,
    frame_index: usize,
    sensor_ts_s: f64,
    virtual_arrival_s: f64,
    virtual_preproc_start_s: f64,
    virtual_preproc_done_s: f64,
    preproc_ticket: u64,
    wall_preproc_s: f64,
    sampled: PointCloud,
    pre_phase: PhaseReport,
}

/// What the admission thread reports back when it finishes.
struct AdmissionOutcome {
    offered: Vec<usize>,
    dropped: Vec<usize>,
    stream_info: Vec<(String, f64)>,
}

/// Closes both queues if the holding thread unwinds, so a panic in any
/// pipeline thread (e.g. a user-supplied `FrameSource` panicking inside
/// the admission loop) releases workers blocked on queue condvars
/// instead of deadlocking `Runtime::run`; the panic then propagates
/// through the scope joins.
struct PanicGuard<'a, A, B> {
    ingress: &'a BoundedQueue<A>,
    stage: &'a BoundedQueue<B>,
}

impl<A, B> Drop for PanicGuard<'_, A, B> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.ingress.close_and_clear();
            self.stage.close_and_clear();
        }
    }
}

/// The concurrent multi-stream serving runtime.
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime after validating `config`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for empty pools or queues.
    pub fn new(config: RuntimeConfig) -> Result<Runtime, RuntimeError> {
        config.validate()?;
        Ok(Runtime { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Serves `streams` through the prototype [`E2ePipeline`] with `net`.
    ///
    /// # Errors
    ///
    /// Propagates the first frame failure, or config/stream mistakes.
    pub fn run(
        &self,
        streams: Vec<StreamSpec>,
        net: &PointNet,
    ) -> Result<RuntimeReport, RuntimeError> {
        self.run_with_pipeline(&E2ePipeline::prototype(), streams, net)
    }

    /// Serves `streams` through a caller-supplied pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoStreams`] for an empty stream list and
    /// [`RuntimeError::Frame`] for the first engine failure.
    ///
    /// # Panics
    ///
    /// A panic inside a user-supplied [`FrameSource`](crate::FrameSource) (or engine code)
    /// unwinds the whole pipeline and propagates out of this call; it
    /// never deadlocks the worker pools.
    pub fn run_with_pipeline(
        &self,
        pipeline: &E2ePipeline,
        streams: Vec<StreamSpec>,
        net: &PointNet,
    ) -> Result<RuntimeReport, RuntimeError> {
        if streams.is_empty() {
            return Err(RuntimeError::NoStreams);
        }
        let stream_count = streams.len();
        let config = &self.config;
        // Effective per-stream inference tier: the stream's override,
        // or the runtime default. Resolved once — workers index it by
        // stream id.
        let precisions: Vec<Precision> = streams
            .iter()
            .map(|s| s.precision.unwrap_or(config.precision))
            .collect();

        let ingress: BoundedQueue<PreprocJob> = BoundedQueue::new(config.queue_capacity);
        let stage: BoundedQueue<StageJob> = BoundedQueue::new(config.queue_capacity);
        let records: Mutex<Vec<FrameRecord>> = Mutex::new(Vec::new());
        let batch_sizes: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let first_error: Mutex<Option<RuntimeError>> = Mutex::new(None);
        let preproc_live = AtomicUsize::new(config.preproc_workers);
        let started = Instant::now();
        // Resolved once per run: `Auto` reads the environment here, not
        // per event. When off, every SpanRecorder is a no-op sink.
        let traced = config.telemetry.is_enabled();
        let collector = TraceCollector::new();

        let fail = |err: RuntimeError| {
            let mut slot = first_error.lock().expect("error slot poisoned");
            if slot.is_none() {
                *slot = Some(err);
            }
            // Unwind the whole pipeline, discarding backlogged work —
            // its results would be thrown away with the run anyway.
            ingress.close_and_clear();
            stage.close_and_clear();
        };

        let admission_outcome: Option<AdmissionOutcome>;
        {
            let mut scheduler = Scheduler::new(streams, config.admission);
            admission_outcome = thread::scope(|s| {
                // --- Admission: scheduler → ingress queue. ---
                let admission = s.spawn(|| {
                    let _guard = PanicGuard {
                        ingress: &ingress,
                        stage: &stage,
                    };
                    let mut recorder = SpanRecorder::new(WorkerId::admission(), started, traced);
                    let mut offered = vec![0usize; stream_count];
                    let mut dropped = vec![0usize; stream_count];
                    while let Some(frame) = scheduler.next_frame() {
                        offered[frame.stream_id] += 1;
                        let virtual_arrival_s = match config.arrival {
                            ArrivalModel::Sensor => frame.sensor_ts_s,
                            ArrivalModel::Backlogged => 0.0,
                        };
                        recorder.record(
                            EventKind::Admit,
                            frame.stream_id,
                            frame.frame_index,
                            virtual_arrival_s,
                        );
                        let job = PreprocJob {
                            frame,
                            virtual_arrival_s,
                        };
                        match config.backpressure {
                            BackpressurePolicy::Block => {
                                let (sid, fidx) = (job.frame.stream_id, job.frame.frame_index);
                                if ingress.push_blocking(job).is_err() {
                                    break; // shutdown under way
                                }
                                recorder.record(EventKind::Enqueue, sid, fidx, virtual_arrival_s);
                            }
                            BackpressurePolicy::DropOldest => {
                                let (sid, fidx) = (job.frame.stream_id, job.frame.frame_index);
                                match ingress.push_drop_oldest(job) {
                                    Ok(Some(evicted)) => {
                                        dropped[evicted.frame.stream_id] += 1;
                                        recorder.record(
                                            EventKind::Drop,
                                            evicted.frame.stream_id,
                                            evicted.frame.frame_index,
                                            evicted.virtual_arrival_s,
                                        );
                                        recorder.record(
                                            EventKind::Enqueue,
                                            sid,
                                            fidx,
                                            virtual_arrival_s,
                                        );
                                    }
                                    Ok(None) => {
                                        recorder.record(
                                            EventKind::Enqueue,
                                            sid,
                                            fidx,
                                            virtual_arrival_s,
                                        );
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    ingress.close();
                    collector.submit(recorder);
                    AdmissionOutcome {
                        offered,
                        dropped,
                        stream_info: scheduler.into_stream_info(),
                    }
                });

                // --- Pre-processing pool: ingress → stage queue. ---
                let preproc_handles: Vec<_> = (0..config.preproc_workers)
                    .map(|w| {
                        // Re-borrow shared state so the `move` closure
                        // (needed for the worker index) captures
                        // references, not the values themselves.
                        let (ingress, stage) = (&ingress, &stage);
                        let (collector, fail) = (&collector, &fail);
                        let preproc_live = &preproc_live;
                        s.spawn(move || {
                            let _guard = PanicGuard { ingress, stage };
                            let mut recorder =
                                SpanRecorder::new(WorkerId::preproc(w), started, traced);
                            let mut vclock = 0.0f64;
                            while let Some((job, ticket)) = ingress.pop() {
                                let PreprocJob {
                                    frame,
                                    virtual_arrival_s,
                                } = job;
                                recorder.record(
                                    EventKind::Dequeue,
                                    frame.stream_id,
                                    frame.frame_index,
                                    virtual_arrival_s,
                                );
                                let seed =
                                    frame_seed(config.seed, frame.stream_id, frame.frame_index);
                                let wall0 = Instant::now();
                                match pipeline
                                    .preproc
                                    .run(&frame.cloud, config.target_points, seed)
                                {
                                    Ok(out) => {
                                        let wall_preproc_s = wall0.elapsed().as_secs_f64();
                                        let latency = out.total_latency();
                                        let counts = out.total_counts();
                                        let start = vclock.max(virtual_arrival_s);
                                        let done = start + latency.secs();
                                        vclock = done;
                                        recorder.record(
                                            EventKind::PreprocStart,
                                            frame.stream_id,
                                            frame.frame_index,
                                            start,
                                        );
                                        recorder.record(
                                            EventKind::PreprocEnd,
                                            frame.stream_id,
                                            frame.frame_index,
                                            done,
                                        );
                                        let stage_job = StageJob {
                                            stream_id: frame.stream_id,
                                            frame_index: frame.frame_index,
                                            sensor_ts_s: frame.sensor_ts_s,
                                            virtual_arrival_s,
                                            virtual_preproc_start_s: start,
                                            virtual_preproc_done_s: done,
                                            preproc_ticket: ticket,
                                            wall_preproc_s,
                                            sampled: out.sampled,
                                            pre_phase: PhaseReport { latency, counts },
                                        };
                                        let (sid, fidx) = (frame.stream_id, frame.frame_index);
                                        if stage.push_blocking(stage_job).is_err() {
                                            break; // shutdown under way
                                        }
                                        recorder.record(EventKind::Enqueue, sid, fidx, done);
                                    }
                                    Err(err) => {
                                        fail(frame_error(&frame, err));
                                        break;
                                    }
                                }
                            }
                            if preproc_live.fetch_sub(1, Ordering::AcqRel) == 1 {
                                stage.close();
                            }
                            collector.submit(recorder);
                        })
                    })
                    .collect();

                // --- Inference pool: stage queue → records. ---
                // `max_batch == 1` runs the legacy per-frame engine call;
                // `>= 2` coalesces micro-batches into the SoA path, whose
                // per-frame results are bit-identical by construction.
                let inference_handles: Vec<_> = (0..config.inference_workers)
                    .map(|w| {
                        let (ingress, stage) = (&ingress, &stage);
                        let (collector, fail) = (&collector, &fail);
                        let (records, batch_sizes) = (&records, &batch_sizes);
                        let precisions = &precisions;
                        s.spawn(move || {
                            let _guard = PanicGuard { ingress, stage };
                            let mut recorder =
                                SpanRecorder::new(WorkerId::inference(w), started, traced);
                            let mut vclock = 0.0f64;
                            if config.max_batch <= 1 {
                                while let Some((job, ticket)) = stage.pop() {
                                    recorder.record(
                                        EventKind::Dequeue,
                                        job.stream_id,
                                        job.frame_index,
                                        job.virtual_preproc_done_s,
                                    );
                                    let seed =
                                        frame_seed(config.seed, job.stream_id, job.frame_index);
                                    let wall0 = Instant::now();
                                    match pipeline.inference.run_with_precision(
                                        &job.sampled,
                                        net,
                                        seed,
                                        precisions[job.stream_id],
                                    ) {
                                        Ok(inf) => {
                                            let record = finish_frame(
                                                job,
                                                ticket,
                                                &inf,
                                                &mut vclock,
                                                started,
                                                wall0.elapsed().as_secs_f64(),
                                                &mut recorder,
                                            );
                                            records
                                                .lock()
                                                .expect("record sink poisoned")
                                                .push(record);
                                        }
                                        Err(err) => {
                                            fail(RuntimeError::Frame {
                                                stream_id: job.stream_id,
                                                frame_index: job.frame_index,
                                                source: err,
                                            });
                                            break;
                                        }
                                    }
                                }
                                collector.submit(recorder);
                                return;
                            }

                            // Running estimate of per-frame modeled
                            // inference latency, for the deadline cap.
                            let mut est_latency_s = 0.0f64;
                            'work: while let Some(first) = stage.pop() {
                                recorder.record(
                                    EventKind::Dequeue,
                                    first.0.stream_id,
                                    first.0.frame_index,
                                    first.0.virtual_preproc_done_s,
                                );
                                // The first frame is taken blocking; the
                                // rest of the micro-batch only drains
                                // whatever is already queued, up to the
                                // deadline-aware ceiling — a frame never
                                // waits for companions.
                                let allowed = if !config.batch_deadline_s.is_finite() {
                                    config.max_batch
                                } else if est_latency_s <= 0.0 {
                                    1 // prime the estimator on one frame
                                } else {
                                    ((config.batch_deadline_s / est_latency_s) as usize)
                                        .clamp(1, config.max_batch)
                                };
                                let mut batch = vec![first];
                                while batch.len() < allowed {
                                    match stage.try_pop() {
                                        Some(next) => {
                                            recorder.record(
                                                EventKind::Dequeue,
                                                next.0.stream_id,
                                                next.0.frame_index,
                                                next.0.virtual_preproc_done_s,
                                            );
                                            batch.push(next);
                                        }
                                        None => break,
                                    }
                                }
                                recorder.record_detail(
                                    EventKind::BatchCoalesce,
                                    batch[0].0.stream_id,
                                    batch[0].0.frame_index,
                                    batch[0].0.virtual_preproc_done_s,
                                    batch.len() as u32,
                                );

                                // Partition the drained micro-batch by
                                // effective precision: each engine call
                                // is single-tier (the SoA GEMMs cannot
                                // mix operand widths), but frames still
                                // finish — and advance the virtual
                                // clock — in dequeue order, so mixing
                                // tiers never reorders a stream.
                                let mut reports: Vec<Option<InferenceReport>> =
                                    batch.iter().map(|_| None).collect();
                                // Per-frame share of the tier call's host
                                // wall time (split evenly — the SoA path
                                // serves the whole sub-batch in one pass).
                                let mut walls: Vec<f64> = vec![0.0; batch.len()];
                                let mut tier_failed = false;
                                for tier in [Precision::F32, Precision::Int8] {
                                    let idxs: Vec<usize> = (0..batch.len())
                                        .filter(|&i| precisions[batch[i].0.stream_id] == tier)
                                        .collect();
                                    if idxs.is_empty() {
                                        continue;
                                    }
                                    let inputs: Vec<&PointCloud> =
                                        idxs.iter().map(|&i| &batch[i].0.sampled).collect();
                                    let seeds: Vec<u64> = idxs
                                        .iter()
                                        .map(|&i| {
                                            let j = &batch[i].0;
                                            frame_seed(config.seed, j.stream_id, j.frame_index)
                                        })
                                        .collect();
                                    let wall0 = Instant::now();
                                    match pipeline
                                        .inference
                                        .run_batch_with_precision(&inputs, net, &seeds, tier)
                                    {
                                        Ok(rs) => {
                                            let share =
                                                wall0.elapsed().as_secs_f64() / idxs.len() as f64;
                                            batch_sizes
                                                .lock()
                                                .expect("batch stats poisoned")
                                                .push(idxs.len());
                                            for (slot, r) in idxs.into_iter().zip(rs) {
                                                walls[slot] = share;
                                                reports[slot] = Some(r);
                                            }
                                        }
                                        Err(_) => {
                                            tier_failed = true;
                                            break;
                                        }
                                    }
                                }
                                if !tier_failed {
                                    let mut sink = records.lock().expect("record sink poisoned");
                                    for (i, ((job, ticket), inf)) in
                                        batch.into_iter().zip(&reports).enumerate()
                                    {
                                        let inf =
                                            inf.as_ref().expect("every tier ran or we bailed");
                                        let lat = inf.total_latency().secs();
                                        est_latency_s = if est_latency_s <= 0.0 {
                                            lat
                                        } else {
                                            0.5 * (est_latency_s + lat)
                                        };
                                        sink.push(finish_frame(
                                            job,
                                            ticket,
                                            inf,
                                            &mut vclock,
                                            started,
                                            walls[i],
                                            &mut recorder,
                                        ));
                                    }
                                } else {
                                    // Attribute the failure: re-run the
                                    // batch serially (deterministic, so
                                    // healthy frames reproduce exactly)
                                    // and fail on the culprit.
                                    for (job, ticket) in batch {
                                        let seed =
                                            frame_seed(config.seed, job.stream_id, job.frame_index);
                                        let wall0 = Instant::now();
                                        match pipeline.inference.run_with_precision(
                                            &job.sampled,
                                            net,
                                            seed,
                                            precisions[job.stream_id],
                                        ) {
                                            Ok(inf) => {
                                                let record = finish_frame(
                                                    job,
                                                    ticket,
                                                    &inf,
                                                    &mut vclock,
                                                    started,
                                                    wall0.elapsed().as_secs_f64(),
                                                    &mut recorder,
                                                );
                                                records
                                                    .lock()
                                                    .expect("record sink poisoned")
                                                    .push(record);
                                            }
                                            Err(err) => {
                                                fail(RuntimeError::Frame {
                                                    stream_id: job.stream_id,
                                                    frame_index: job.frame_index,
                                                    source: err,
                                                });
                                                break 'work;
                                            }
                                        }
                                    }
                                }
                            }
                            collector.submit(recorder);
                        })
                    })
                    .collect();

                let outcome = admission.join().expect("admission thread panicked");
                for h in preproc_handles {
                    h.join().expect("preprocessing worker panicked");
                }
                for h in inference_handles {
                    h.join().expect("inference worker panicked");
                }
                Some(outcome)
            });
        }

        if let Some(err) = first_error.into_inner().expect("error slot poisoned") {
            return Err(err);
        }
        let outcome = admission_outcome.expect("admission outcome missing");
        let mut records = records.into_inner().expect("record sink poisoned");
        records.sort_by_key(|r| (r.stream_id, r.frame_index));

        let sizes = batch_sizes.into_inner().expect("batch stats poisoned");
        let mut report = assemble_report(
            config,
            net.kernel().name(),
            &precisions,
            &outcome,
            records,
            QueueStats {
                high_water: ingress.high_water(),
                dropped: ingress.dropped(),
            },
            QueueStats {
                high_water: stage.high_water(),
                dropped: stage.dropped(),
            },
            BatchingStats::from_sizes(config.max_batch, &sizes),
            started.elapsed(),
        );
        if traced {
            report.telemetry = Some(TelemetrySnapshot {
                trace: collector.finish(),
                metrics: build_registry(&report),
            });
        }
        Ok(report)
    }
}

/// Advances the worker's virtual clock past `job` and records its
/// journey. Shared by the serial and batched inference paths — within a
/// micro-batch, frames advance the clock in dequeue order, so the
/// modeled timeline of a batched run matches the serial one exactly.
fn finish_frame(
    job: StageJob,
    inference_ticket: u64,
    inf: &InferenceReport,
    vclock: &mut f64,
    started: Instant,
    wall_infer_s: f64,
    recorder: &mut SpanRecorder,
) -> FrameRecord {
    let latency = inf.total_latency();
    let start = vclock.max(job.virtual_preproc_done_s);
    let done = start + latency.secs();
    *vclock = done;
    recorder.record(EventKind::InferStart, job.stream_id, job.frame_index, start);
    recorder.record(EventKind::InferEnd, job.stream_id, job.frame_index, done);
    recorder.record(EventKind::Complete, job.stream_id, job.frame_index, done);
    FrameRecord {
        stream_id: job.stream_id,
        frame_index: job.frame_index,
        sensor_ts_s: job.sensor_ts_s,
        virtual_arrival_s: job.virtual_arrival_s,
        virtual_preproc_start_s: job.virtual_preproc_start_s,
        virtual_preproc_done_s: job.virtual_preproc_done_s,
        virtual_infer_start_s: start,
        virtual_done_s: done,
        modeled: E2eReport {
            preprocess: job.pre_phase,
            inference: PhaseReport {
                latency,
                counts: inf.total_counts(),
            },
        },
        preproc_ticket: job.preproc_ticket,
        inference_ticket,
        wall_preproc_s: job.wall_preproc_s,
        wall_infer_s,
        wall_done: started.elapsed(),
    }
}

fn frame_error(frame: &TimedFrame, source: SystemError) -> RuntimeError {
    RuntimeError::Frame {
        stream_id: frame.stream_id,
        frame_index: frame.frame_index,
        source,
    }
}

// One parameter per report ingredient; bundling them would only move
// the argument list into a single-use struct.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    config: &RuntimeConfig,
    kernel_backend: &'static str,
    precisions: &[Precision],
    outcome: &AdmissionOutcome,
    records: Vec<FrameRecord>,
    ingress_queue: QueueStats,
    stage_queue: QueueStats,
    batching: BatchingStats,
    wall_elapsed: std::time::Duration,
) -> RuntimeReport {
    use hgpcn_memsim::Latency;

    let stream_count = outcome.stream_info.len();
    let mut streams = Vec::with_capacity(stream_count);
    for (id, precision) in precisions.iter().enumerate().take(stream_count) {
        let mine: Vec<&FrameRecord> = records.iter().filter(|r| r.stream_id == id).collect();
        let service: Vec<Latency> = mine.iter().map(|r| r.modeled.total()).collect();
        let sojourn: Vec<Latency> = mine
            .iter()
            .map(|r| Latency::from_secs((r.virtual_done_s - r.virtual_arrival_s).max(0.0)))
            .collect();
        let achieved_fps = match mine.first() {
            Some(first) => {
                let span = mine
                    .iter()
                    .map(|r| r.virtual_done_s)
                    .fold(f64::NEG_INFINITY, f64::max)
                    - first.virtual_arrival_s;
                if span > 1e-12 {
                    mine.len() as f64 / span
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        let (name, sensor_fps) = outcome.stream_info[id].clone();
        streams.push(StreamReport {
            stream_id: id,
            name,
            offered: outcome.offered[id],
            completed: mine.len(),
            dropped: outcome.dropped[id],
            sensor_fps,
            precision: precision.name(),
            achieved_fps,
            service: LatencySummary::from_samples(&service),
            sojourn: LatencySummary::from_samples(&sojourn),
            breakdown: StageBreakdown::from_records(mine.iter().copied()),
        });
    }

    let earliest_arrival = records
        .iter()
        .map(|r| r.virtual_arrival_s)
        .fold(f64::INFINITY, f64::min);
    let latest_done = records
        .iter()
        .map(|r| r.virtual_done_s)
        .fold(0.0f64, f64::max);
    let virtual_makespan_s = if records.is_empty() {
        0.0
    } else {
        (latest_done - earliest_arrival).max(0.0)
    };
    let modeled_pipelined_fps = if virtual_makespan_s > 1e-12 {
        records.len() as f64 / virtual_makespan_s
    } else {
        0.0
    };

    let precision = match precisions {
        [] => Precision::F32.name(),
        [first, rest @ ..] if rest.iter().all(|p| p == first) => first.name(),
        _ => "mixed",
    };

    let breakdown = StageBreakdown::from_records(&records);
    let utilization = if virtual_makespan_s > 1e-12 {
        WorkerUtilization {
            preproc_busy: breakdown.virtual_preproc_busy_s
                / (virtual_makespan_s * config.preproc_workers as f64),
            infer_busy: breakdown.virtual_infer_busy_s
                / (virtual_makespan_s * config.inference_workers as f64),
        }
    } else {
        WorkerUtilization::default()
    };
    let ingress_depth = QueueDepthStats::from_deltas(
        records
            .iter()
            .flat_map(|r| [(r.virtual_arrival_s, 1), (r.virtual_preproc_start_s, -1)])
            .collect(),
    );
    let stage_depth = QueueDepthStats::from_deltas(
        records
            .iter()
            .flat_map(|r| [(r.virtual_preproc_done_s, 1), (r.virtual_infer_start_s, -1)])
            .collect(),
    );

    RuntimeReport {
        streams,
        total_frames: records.len(),
        total_dropped: outcome.dropped.iter().sum(),
        preproc_workers: config.preproc_workers,
        inference_workers: config.inference_workers,
        ingress_queue,
        stage_queue,
        virtual_makespan_s,
        modeled_pipelined_fps,
        wall_elapsed,
        kernel_backend,
        precision,
        batching,
        breakdown,
        utilization,
        ingress_depth,
        stage_depth,
        telemetry: None,
        records,
    }
}

/// Populates the metrics registry from a finished report: frame
/// counters and achieved-FPS gauges per stream, run-level throughput
/// and utilization gauges, and per-stage service / queue-wait /
/// sojourn / queue-depth histograms. Everything here derives from the
/// deterministic virtual timeline except the two `wall` gauges.
fn build_registry(report: &RuntimeReport) -> Registry {
    let mut reg = Registry::new();
    for s in &report.streams {
        let labels = [("stream", s.name.as_str())];
        reg.counter_add(
            "hgpcn_frames_offered_total",
            "Frames offered by stream sources",
            &labels,
            s.offered as u64,
        );
        reg.counter_add(
            "hgpcn_frames_completed_total",
            "Frames completing inference",
            &labels,
            s.completed as u64,
        );
        reg.counter_add(
            "hgpcn_frames_dropped_total",
            "Frames evicted by backpressure",
            &labels,
            s.dropped as u64,
        );
        reg.gauge_set(
            "hgpcn_stream_achieved_fps",
            "Per-stream achieved virtual-clock throughput",
            &labels,
            s.achieved_fps,
        );
    }
    reg.gauge_set(
        "hgpcn_modeled_fps",
        "Achieved virtual-clock throughput of the run",
        &[],
        report.modeled_pipelined_fps,
    );
    reg.gauge_set(
        "hgpcn_wall_fps",
        "Host wall-clock throughput of the run",
        &[],
        report.wall_fps(),
    );
    reg.gauge_set(
        "hgpcn_virtual_makespan_seconds",
        "Virtual time from first arrival to last completion",
        &[],
        report.virtual_makespan_s,
    );
    for (stage, busy) in [
        ("preproc", report.utilization.preproc_busy),
        ("infer", report.utilization.infer_busy),
    ] {
        reg.gauge_set(
            "hgpcn_worker_busy_ratio",
            "Worker-pool busy fraction over the virtual makespan",
            &[("stage", stage)],
            busy,
        );
    }
    for r in &report.records {
        reg.histogram_record(
            "hgpcn_stage_service_seconds",
            "Modeled per-stage service time",
            &[("stage", "preproc")],
            r.virtual_preproc_done_s - r.virtual_preproc_start_s,
        );
        reg.histogram_record(
            "hgpcn_stage_service_seconds",
            "Modeled per-stage service time",
            &[("stage", "infer")],
            r.virtual_done_s - r.virtual_infer_start_s,
        );
        reg.histogram_record(
            "hgpcn_queue_wait_seconds",
            "Modeled time queued between stages",
            &[("queue", "ingress")],
            r.virtual_preproc_start_s - r.virtual_arrival_s,
        );
        reg.histogram_record(
            "hgpcn_queue_wait_seconds",
            "Modeled time queued between stages",
            &[("queue", "stage")],
            r.virtual_infer_start_s - r.virtual_preproc_done_s,
        );
        reg.histogram_record(
            "hgpcn_sojourn_seconds",
            "Modeled end-to-end frame sojourn",
            &[],
            r.virtual_done_s - r.virtual_arrival_s,
        );
    }
    for (queue, depth) in [
        ("ingress", &report.ingress_depth),
        ("stage", &report.stage_depth),
    ] {
        for &(_, d) in &depth.samples {
            reg.histogram_record(
                "hgpcn_queue_depth",
                "Modeled queue occupancy after each change",
                &[("queue", queue)],
                d as f64,
            );
        }
    }
    if report.batching.batches > 0 {
        reg.counter_add(
            "hgpcn_micro_batches_total",
            "Micro-batches the inference pool executed",
            &[],
            report.batching.batches as u64,
        );
        reg.gauge_set(
            "hgpcn_mean_batch_size",
            "Mean frames per micro-batch",
            &[],
            report.batching.mean_batch_size,
        );
    }
    reg
}

#[cfg(test)]
mod tests {
    use hgpcn_geometry::PointCloud;
    use hgpcn_pcn::{PointNet, PointNetConfig};

    use super::*;

    struct PanickingSource;

    impl crate::FrameSource for PanickingSource {
        fn next_frame(&mut self) -> Option<(f64, PointCloud)> {
            panic!("source exploded");
        }

        fn nominal_fps(&self) -> f64 {
            10.0
        }
    }

    #[test]
    fn panicking_source_propagates_instead_of_deadlocking() {
        let runtime = Runtime::new(RuntimeConfig::default()).unwrap();
        let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runtime.run(vec![StreamSpec::new("bad", PanickingSource)], &net)
        }));
        assert!(
            outcome.is_err(),
            "the source's panic must surface, not hang the pools"
        );
    }

    #[test]
    fn engine_failure_aborts_with_frame_error() {
        // target_points(8) passes preprocessing but is far below the
        // net's coarsest stage, so inference fails on the first frame;
        // the run must surface that frame's error, not hang or succeed.
        let runtime = Runtime::new(RuntimeConfig::default().target_points(8)).unwrap();
        let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 1);
        let streams = vec![StreamSpec::new(
            "tiny",
            crate::SyntheticSource::new(1200, 10.0, 4, 5),
        )];
        match runtime.run(streams, &net) {
            Err(RuntimeError::Frame { stream_id: 0, .. }) => {}
            other => panic!("expected a frame error, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_list_is_an_error() {
        let runtime = Runtime::new(RuntimeConfig::default()).unwrap();
        let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 1);
        assert_eq!(
            runtime.run(vec![], &net).unwrap_err(),
            crate::RuntimeError::NoStreams
        );
    }
}
