//! The batch runtime front end: run a pre-registered fleet of
//! [`FrameSource`](crate::FrameSource) streams to completion.
//!
//! Thread topology (identical for the batch runner and the live
//! [`ServingRuntime`](crate::ServingRuntime) — both execute the
//! session core's worker loops):
//!
//! ```text
//! admission ──► [ingress queue] ──► preproc pool ──► [stage queue] ──► inference pool ──► records
//!  (scheduler)     bounded            P workers         bounded           I workers
//! ```
//!
//! Pre-processing of frame *t+1* overlaps inference of frame *t* in
//! real threads — the execution the analytical
//! [`realtime`](hgpcn_system::realtime) model only predicts. Latency
//! accounting runs on a **virtual clock**: each worker advances its own
//! virtual time by the modeled latency of the work it actually executed,
//! keeping throughput comparable to the paper's modeled numbers while
//! wall-clock duration is reported separately. Per-frame modeled
//! results are fully deterministic (seeds depend only on stream and
//! frame index); the *aggregate* virtual timeline is bit-reproducible
//! with one worker per stage, while wider pools inherit the OS's
//! frame-to-worker assignment and may shift virtual queueing times
//! slightly between runs.

use hgpcn_pcn::PointNet;
use hgpcn_system::E2ePipeline;

use crate::config::RuntimeConfig;
use crate::metrics::RuntimeReport;
use crate::stream::StreamSpec;
use crate::RuntimeError;

/// The concurrent multi-stream serving runtime, batch front end.
///
/// Drives the session core to completion over a
/// fixed fleet; for open-ended serving (submit frames one at a time,
/// poll results, live stats) use
/// [`ServingRuntime`](crate::ServingRuntime) — the two share the worker
/// loops, so their per-frame results are bit-identical.
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime after validating `config`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for empty pools or queues.
    pub fn new(config: RuntimeConfig) -> Result<Runtime, RuntimeError> {
        config.validate()?;
        Ok(Runtime { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Serves `streams` through the prototype [`E2ePipeline`] with `net`.
    ///
    /// # Errors
    ///
    /// Propagates the first frame failure, or config/stream mistakes.
    pub fn run(
        &self,
        streams: Vec<StreamSpec>,
        net: &PointNet,
    ) -> Result<RuntimeReport, RuntimeError> {
        self.run_with_pipeline(&E2ePipeline::prototype(), streams, net)
    }

    /// Serves `streams` through a caller-supplied pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoStreams`] for an empty stream list and
    /// [`RuntimeError::Frame`] for the first engine failure.
    ///
    /// # Panics
    ///
    /// A panic inside a user-supplied [`FrameSource`](crate::FrameSource) (or engine code)
    /// unwinds the whole pipeline and propagates out of this call; it
    /// never deadlocks the worker pools.
    pub fn run_with_pipeline(
        &self,
        pipeline: &E2ePipeline,
        streams: Vec<StreamSpec>,
        net: &PointNet,
    ) -> Result<RuntimeReport, RuntimeError> {
        // `new()` already validated, but `run_with_pipeline` is also the
        // funnel for configs arriving by other roads (e.g. a
        // deserialized server config) — validating here keeps "reject,
        // don't panic in a worker" true for every entry point.
        self.config.validate()?;
        if streams.is_empty() {
            return Err(RuntimeError::NoStreams);
        }
        crate::session::run_batch(&self.config, pipeline, streams, net)
    }
}

#[cfg(test)]
mod tests {
    use hgpcn_geometry::PointCloud;
    use hgpcn_pcn::{PointNet, PointNetConfig};

    use super::*;

    struct PanickingSource;

    impl crate::FrameSource for PanickingSource {
        fn next_frame(&mut self) -> Option<(f64, PointCloud)> {
            panic!("source exploded");
        }

        fn nominal_fps(&self) -> f64 {
            10.0
        }
    }

    #[test]
    fn panicking_source_propagates_instead_of_deadlocking() {
        let runtime = Runtime::new(RuntimeConfig::default()).unwrap();
        let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runtime.run(vec![StreamSpec::new("bad", PanickingSource)], &net)
        }));
        assert!(
            outcome.is_err(),
            "the source's panic must surface, not hang the pools"
        );
    }

    #[test]
    fn engine_failure_aborts_with_frame_error() {
        // target_points(8) passes preprocessing but is far below the
        // net's coarsest stage, so inference fails on the first frame;
        // the run must surface that frame's error, not hang or succeed.
        let runtime = Runtime::new(RuntimeConfig::default().target_points(8)).unwrap();
        let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 1);
        let streams = vec![StreamSpec::new(
            "tiny",
            crate::SyntheticSource::new(1200, 10.0, 4, 5),
        )];
        match runtime.run(streams, &net) {
            Err(RuntimeError::Frame { stream_id: 0, .. }) => {}
            other => panic!("expected a frame error, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_list_is_an_error() {
        let runtime = Runtime::new(RuntimeConfig::default()).unwrap();
        let net = PointNet::new(PointNetConfig::semantic_segmentation(512), 1);
        assert_eq!(
            runtime.run(vec![], &net).unwrap_err(),
            crate::RuntimeError::NoStreams
        );
    }
}
