//! Sensor stream sources feeding the runtime.
//!
//! A [`FrameSource`] yields timestamped point clouds; [`StreamSpec`]
//! names it, assigns a fairness weight, and is what the runtime admits
//! frames from. Two sources ship in-tree: [`KittiSource`], backed by the
//! LiDAR simulator in `hgpcn-datasets`, and [`SyntheticSource`], an
//! arithmetic generator cheap enough for tests and benches.

use hgpcn_datasets::kitti::{KittiConfig, KittiStream};
use hgpcn_geometry::{Point3, PointCloud};
use hgpcn_pcn::Precision;

/// One frame traveling through the runtime.
#[derive(Clone, Debug)]
pub struct TimedFrame {
    /// Index of the owning stream in the submitted stream list.
    pub stream_id: usize,
    /// Per-stream frame sequence number, starting at zero.
    pub frame_index: usize,
    /// Sensor timestamp in seconds since stream start.
    pub sensor_ts_s: f64,
    /// The captured point cloud.
    pub cloud: PointCloud,
}

/// A producer of timestamped frames.
pub trait FrameSource: Send {
    /// The next frame, or `None` when the stream ends.
    fn next_frame(&mut self) -> Option<(f64, PointCloud)>;

    /// The sensor's nominal generation rate in frames per second.
    fn nominal_fps(&self) -> f64;
}

/// A named, weighted stream the runtime serves.
pub struct StreamSpec {
    /// Human-readable stream name (used in reports).
    pub name: String,
    /// Relative weight under
    /// [`AdmissionPolicy::WeightedFair`](crate::AdmissionPolicy::WeightedFair);
    /// ignored by round-robin. Must be at least 1.
    pub weight: u32,
    /// Per-stream inference precision override; `None` (the default)
    /// inherits [`RuntimeConfig::precision`](crate::RuntimeConfig::precision).
    /// Lets one fleet mix accuracy-tier (f32) and throughput-tier
    /// (int8) tenants — inference workers partition micro-batches by
    /// effective precision, preserving per-stream FIFO and determinism.
    pub precision: Option<Precision>,
    /// The frame producer.
    pub source: Box<dyn FrameSource>,
}

impl std::fmt::Debug for StreamSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSpec")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("precision", &self.precision)
            .finish_non_exhaustive()
    }
}

impl StreamSpec {
    /// A stream of unit weight at the runtime's default precision.
    pub fn new(name: impl Into<String>, source: impl FrameSource + 'static) -> StreamSpec {
        StreamSpec {
            name: name.into(),
            weight: 1,
            precision: None,
            source: Box::new(source),
        }
    }

    /// Sets the weighted-fair share.
    pub fn weight(mut self, weight: u32) -> StreamSpec {
        self.weight = weight.max(1);
        self
    }

    /// Pins this stream to a specific inference precision, overriding
    /// the runtime default.
    pub fn precision(mut self, precision: Precision) -> StreamSpec {
        self.precision = Some(precision);
        self
    }

    /// This spec's serving-session profile: the source-independent
    /// metadata (name, nominal rate, precision override) a
    /// [`ServingRuntime`](crate::ServingRuntime) needs to open the
    /// equivalent stream. The batch driver registers streams through
    /// this same projection, so batch and serving sessions report
    /// streams identically.
    pub fn profile(&self) -> StreamProfile {
        StreamProfile {
            name: self.name.clone(),
            nominal_fps: self.source.nominal_fps(),
            precision: self.precision,
        }
    }
}

/// Metadata for opening a stream on a live
/// [`ServingRuntime`](crate::ServingRuntime).
///
/// A serving session has no [`FrameSource`] — clients push frames — so
/// this is a [`StreamSpec`] minus the source: the name reports carry,
/// the sensor's nominal rate (report metadata only; the runtime never
/// paces clients), and an optional per-stream precision override.
#[derive(Clone, Debug)]
pub struct StreamProfile {
    /// Human-readable stream name (used in reports).
    pub name: String,
    /// The sensor's nominal generation rate in frames per second,
    /// reported as [`StreamReport::sensor_fps`](crate::StreamReport::sensor_fps).
    /// `0.0` (the default) means unspecified.
    pub nominal_fps: f64,
    /// Per-stream inference precision override; `None` (the default)
    /// inherits [`RuntimeConfig::precision`](crate::RuntimeConfig::precision).
    pub precision: Option<Precision>,
}

impl StreamProfile {
    /// A profile with an unspecified sensor rate at the runtime's
    /// default precision.
    pub fn new(name: impl Into<String>) -> StreamProfile {
        StreamProfile {
            name: name.into(),
            nominal_fps: 0.0,
            precision: None,
        }
    }

    /// Sets the nominal sensor rate in frames per second.
    pub fn nominal_fps(mut self, fps: f64) -> StreamProfile {
        self.nominal_fps = fps;
        self
    }

    /// Pins the stream to a specific inference precision, overriding
    /// the runtime default.
    pub fn precision(mut self, precision: Precision) -> StreamProfile {
        self.precision = Some(precision);
        self
    }
}

/// A [`FrameSource`] over the KITTI-like LiDAR simulator, bounded to a
/// frame count.
#[derive(Debug)]
pub struct KittiSource {
    stream: KittiStream,
    remaining: usize,
    fps: f64,
}

impl KittiSource {
    /// Streams `frames` frames from a simulated drive.
    pub fn new(config: KittiConfig, seed: u64, frames: usize) -> KittiSource {
        let fps = config.spin_hz;
        KittiSource {
            stream: KittiStream::new(config, seed),
            remaining: frames,
            fps,
        }
    }
}

impl FrameSource for KittiSource {
    fn next_frame(&mut self) -> Option<(f64, PointCloud)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.stream.next().map(|f| (f.timestamp_s, f.cloud))
    }

    fn nominal_fps(&self) -> f64 {
        self.fps
    }
}

/// A deterministic arithmetic frame generator: `points` quasi-random
/// points in the unit cube per frame, at a fixed rate. Frames differ per
/// index (the generator folds the frame number into the low-discrepancy
/// sequence) but are exactly reproducible — ideal for determinism tests
/// and benches where the LiDAR simulator would dominate runtime.
#[derive(Clone, Debug)]
pub struct SyntheticSource {
    points: usize,
    fps: f64,
    remaining: usize,
    index: usize,
    salt: u64,
}

impl SyntheticSource {
    /// `frames` frames of `points` points at `fps` frames per second.
    ///
    /// # Panics
    ///
    /// Panics unless `points >= 1` and `fps > 0`.
    pub fn new(points: usize, fps: f64, frames: usize, salt: u64) -> SyntheticSource {
        assert!(points >= 1, "frames need at least one point");
        assert!(fps > 0.0, "sensor rate must be positive");
        SyntheticSource {
            points,
            fps,
            remaining: frames,
            index: 0,
            salt,
        }
    }

    /// The cloud of frame `index`, independent of iteration state.
    pub fn frame_cloud(&self, index: usize) -> PointCloud {
        // A well-mixed 20-bit offset per (salt, frame): small enough to
        // stay inside f32's exact-integer range when added to the point
        // index, so the golden-ratio fractions below keep full precision.
        let base = (self.salt ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            >> 44;
        (0..self.points)
            .map(|i| {
                let f = (i as u64 + base) as f32;
                Point3::new(
                    (f * 0.618_034).fract(),
                    (f * 0.414_214).fract(),
                    (f * 0.732_051).fract(),
                )
            })
            .collect()
    }
}

impl FrameSource for SyntheticSource {
    fn next_frame(&mut self) -> Option<(f64, PointCloud)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let index = self.index;
        self.index += 1;
        let ts = index as f64 / self.fps;
        Some((ts, self.frame_cloud(index)))
    }

    fn nominal_fps(&self) -> f64 {
        self.fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_bounded() {
        let mut a = SyntheticSource::new(100, 10.0, 3, 7);
        let mut b = SyntheticSource::new(100, 10.0, 3, 7);
        for _ in 0..3 {
            let (ta, ca) = a.next_frame().unwrap();
            let (tb, cb) = b.next_frame().unwrap();
            assert_eq!(ta, tb);
            assert_eq!(ca, cb);
        }
        assert!(a.next_frame().is_none());
    }

    #[test]
    fn synthetic_salts_differ() {
        let mut a = SyntheticSource::new(50, 10.0, 1, 1);
        let mut b = SyntheticSource::new(50, 10.0, 1, 2);
        assert_ne!(a.next_frame().unwrap().1, b.next_frame().unwrap().1);
    }

    #[test]
    fn synthetic_timestamps_follow_rate() {
        let mut s = SyntheticSource::new(10, 20.0, 4, 0);
        let ts: Vec<f64> = std::iter::from_fn(|| s.next_frame().map(|(t, _)| t)).collect();
        assert_eq!(ts.len(), 4);
        for (i, t) in ts.iter().enumerate() {
            assert!((t - i as f64 * 0.05).abs() < 1e-12, "ts[{i}] = {t}");
        }
    }

    #[test]
    fn kitti_source_bounded() {
        let cfg = KittiConfig {
            beams: 8,
            azimuth_steps: 60,
            ..KittiConfig::standard()
        };
        let mut src = KittiSource::new(cfg, 3, 2);
        assert!(src.next_frame().is_some());
        assert!(src.next_frame().is_some());
        assert!(src.next_frame().is_none());
        assert_eq!(src.nominal_fps(), 10.0);
    }

    #[test]
    fn spec_weight_floor_is_one() {
        let spec = StreamSpec::new("s", SyntheticSource::new(10, 10.0, 1, 0)).weight(0);
        assert_eq!(spec.weight, 1);
    }
}
