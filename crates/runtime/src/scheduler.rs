//! Multi-tenant admission: interleaving frames from N streams.
//!
//! The scheduler is deliberately separated from the threaded executor —
//! it is a plain sequential iterator over the stream set, so fairness
//! properties are unit-testable without touching threads (the microkernel
//! separation: policy here, mechanism in the executor).

use crate::config::AdmissionPolicy;
use crate::stream::{StreamSpec, TimedFrame};

struct Entry {
    spec: StreamSpec,
    next_index: usize,
    exhausted: bool,
    /// Smooth-WRR running credit.
    credit: i64,
}

/// Pulls frames from many streams under an [`AdmissionPolicy`].
pub struct Scheduler {
    entries: Vec<Entry>,
    policy: AdmissionPolicy,
    cursor: usize,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("streams", &self.entries.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl Scheduler {
    /// Builds a scheduler over `streams`.
    pub fn new(streams: Vec<StreamSpec>, policy: AdmissionPolicy) -> Scheduler {
        let entries = streams
            .into_iter()
            .map(|spec| Entry {
                spec,
                next_index: 0,
                exhausted: false,
                credit: 0,
            })
            .collect();
        Scheduler {
            entries,
            policy,
            cursor: 0,
        }
    }

    /// Number of streams (exhausted or not).
    pub fn stream_count(&self) -> usize {
        self.entries.len()
    }

    /// The next admitted frame, or `None` when every stream is done.
    ///
    /// Round-robin visits live streams in a fixed cycle; weighted-fair
    /// runs smooth weighted round-robin: each turn every live stream
    /// gains `weight` credit and the richest stream is served, paying
    /// the total weight back. Over any window the service counts
    /// approach the weight proportions.
    pub fn next_frame(&mut self) -> Option<TimedFrame> {
        match self.policy {
            AdmissionPolicy::RoundRobin => self.next_round_robin(),
            AdmissionPolicy::WeightedFair => self.next_weighted_fair(),
        }
    }

    fn pull(&mut self, id: usize) -> Option<TimedFrame> {
        let entry = &mut self.entries[id];
        match entry.spec.source.next_frame() {
            Some((sensor_ts_s, cloud)) => {
                let frame = TimedFrame {
                    stream_id: id,
                    frame_index: entry.next_index,
                    sensor_ts_s,
                    cloud,
                };
                entry.next_index += 1;
                Some(frame)
            }
            None => {
                entry.exhausted = true;
                None
            }
        }
    }

    fn next_round_robin(&mut self) -> Option<TimedFrame> {
        let n = self.entries.len();
        // One full cycle visits every stream exactly once; each visit
        // either yields a frame or marks the stream exhausted, so a
        // frameless cycle means every stream is done.
        for _ in 0..n {
            let id = self.cursor % n;
            self.cursor = (self.cursor + 1) % n;
            if self.entries[id].exhausted {
                continue;
            }
            if let Some(frame) = self.pull(id) {
                return Some(frame);
            }
        }
        None
    }

    fn next_weighted_fair(&mut self) -> Option<TimedFrame> {
        loop {
            let mut total: i64 = 0;
            for entry in self.entries.iter_mut().filter(|e| !e.exhausted) {
                entry.credit += i64::from(entry.spec.weight);
                total += i64::from(entry.spec.weight);
            }
            let id = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.exhausted)
                .max_by_key(|(_, e)| e.credit)
                .map(|(id, _)| id)?;
            self.entries[id].credit -= total;
            if let Some(frame) = self.pull(id) {
                return Some(frame);
            }
            // The chosen stream just ended; try again with the rest.
        }
    }

    /// Consumes the scheduler, returning stream names and nominal rates
    /// in stream-id order (for report assembly).
    pub fn into_stream_info(self) -> Vec<(String, f64)> {
        self.entries
            .into_iter()
            .map(|e| {
                let fps = e.spec.source.nominal_fps();
                (e.spec.name, fps)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SyntheticSource;

    fn streams(counts: &[usize]) -> Vec<StreamSpec> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                StreamSpec::new(format!("s{i}"), SyntheticSource::new(8, 10.0, n, i as u64))
            })
            .collect()
    }

    #[test]
    fn round_robin_interleaves_evenly() {
        let mut sched = Scheduler::new(streams(&[3, 3, 3]), AdmissionPolicy::RoundRobin);
        let order: Vec<usize> = std::iter::from_fn(|| sched.next_frame())
            .map(|f| f.stream_id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_drains_unequal_streams() {
        let mut sched = Scheduler::new(streams(&[1, 4]), AdmissionPolicy::RoundRobin);
        let order: Vec<usize> = std::iter::from_fn(|| sched.next_frame())
            .map(|f| f.stream_id)
            .collect();
        assert_eq!(order.iter().filter(|&&s| s == 0).count(), 1);
        assert_eq!(order.iter().filter(|&&s| s == 1).count(), 4);
    }

    #[test]
    fn frame_indices_are_sequential_per_stream() {
        let mut sched = Scheduler::new(streams(&[5, 5]), AdmissionPolicy::RoundRobin);
        let mut next = [0usize; 2];
        while let Some(frame) = sched.next_frame() {
            assert_eq!(frame.frame_index, next[frame.stream_id]);
            next[frame.stream_id] += 1;
        }
        assert_eq!(next, [5, 5]);
    }

    #[test]
    fn weighted_fair_honors_weights() {
        let specs = vec![
            StreamSpec::new("heavy", SyntheticSource::new(8, 10.0, 60, 0)).weight(3),
            StreamSpec::new("light", SyntheticSource::new(8, 10.0, 60, 1)).weight(1),
        ];
        let mut sched = Scheduler::new(specs, AdmissionPolicy::WeightedFair);
        let first: Vec<usize> = (0..40)
            .filter_map(|_| sched.next_frame())
            .map(|f| f.stream_id)
            .collect();
        let heavy = first.iter().filter(|&&s| s == 0).count();
        assert_eq!(
            heavy, 30,
            "3:1 weights should serve 30 of 40 turns, got {heavy}"
        );
    }

    #[test]
    fn weighted_fair_drains_everything() {
        let mut sched = Scheduler::new(streams(&[2, 7]), AdmissionPolicy::WeightedFair);
        let total = std::iter::from_fn(|| sched.next_frame()).count();
        assert_eq!(total, 9);
    }
}
