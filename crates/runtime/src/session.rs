//! The session-oriented runtime core.
//!
//! This module owns the pipeline machinery — bounded queues, the
//! pre-processing and inference worker pools, per-frame accounting —
//! behind two front ends:
//!
//! * [`ServingRuntime`]: a **live** runtime. Streams are opened while
//!   the pools run ([`ServingRuntime::open_stream`]), frames are pushed
//!   one at a time ([`StreamHandle::submit`] returns a [`FrameTicket`]),
//!   results are retrieved by polling ([`ServingRuntime::poll`]), stats
//!   are snapshotted mid-flight ([`ServingRuntime::stats`]), and a
//!   graceful [`ServingRuntime::shutdown`] drains the backlog and
//!   returns the final [`RuntimeReport`]. Engine failures resolve the
//!   failing frame's ticket ([`FrameStatus::Failed`]) without killing
//!   the runtime — a server keeps serving.
//! * the batch driver ([`run_batch`], what [`Runtime::run`](crate::Runtime::run)
//!   calls): admission pulls every frame from pre-registered
//!   [`FrameSource`](crate::FrameSource)s through the
//!   [`Scheduler`](crate::Scheduler), the pools drain to completion, and
//!   the first engine failure aborts the run — the pre-session
//!   run-to-completion semantics, byte-for-byte. Both front ends execute
//!   the *same* worker loops, so the batch path's determinism guarantees
//!   carry over to serving unchanged.
//!
//! Frame identity is `(stream_id, frame_index)` in both modes, and the
//! virtual-clock accounting is identical: a fresh core starts all worker
//! clocks at zero, so a serving session fed the same frames in the same
//! order as a batch run produces bit-identical [`FrameRecord`]s.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread;
use std::time::Instant;

use hgpcn_geometry::PointCloud;
use hgpcn_memsim::{Latency, OpCounts};
use hgpcn_pcn::{InferenceOutput, PointNet, Precision, StageBackends};
use hgpcn_system::{
    E2ePipeline, E2eReport, InferenceReport, PhaseReport, PreprocReuse, StreamPreprocContext,
    SystemError,
};
use hgpcn_telemetry::{EventKind, SpanRecorder, TraceCollector, WorkerId};

use crate::config::{ArrivalModel, BackpressurePolicy, RuntimeConfig};
use crate::metrics::{
    BatchingStats, FrameRecord, LatencySummary, QueueDepthStats, QueueStats, RuntimeReport,
    StageBackendNames, StageBreakdown, StreamReport, TelemetrySnapshot, WorkerUtilization,
};
use crate::queue::BoundedQueue;
use crate::scheduler::Scheduler;
use crate::stream::{StreamProfile, StreamSpec, TimedFrame};
use crate::{frame_seed, RuntimeError};

/// A frame admitted to the pre-processing stage.
#[derive(Debug)]
struct PreprocJob {
    frame: TimedFrame,
    virtual_arrival_s: f64,
    /// Effective inference tier, resolved at admission so workers never
    /// need the stream registry on the hot path.
    precision: Precision,
}

/// A pre-processed frame awaiting inference.
#[derive(Debug)]
struct StageJob {
    stream_id: usize,
    frame_index: usize,
    sensor_ts_s: f64,
    virtual_arrival_s: f64,
    virtual_preproc_start_s: f64,
    virtual_preproc_done_s: f64,
    preproc_ticket: u64,
    wall_preproc_s: f64,
    precision: Precision,
    sampled: PointCloud,
    pre_phase: PhaseReport,
    /// Whether preprocessing took the temporal-coherence warm path
    /// (always `false` under [`PreprocReuse::Off`]).
    preproc_reused: bool,
}

// ---------------------------------------------------------------------
// Stream-scoped preprocessing contexts (`PreprocReuse::On`).
//
// The warm path's *results* are bit-identical from any cache state, but
// its modeled cost (warm vs cold, dirty counts) depends on which frame
// last primed the cache. To keep modeled latencies a pure function of
// submission order at any worker count, context updates are serialized
// into frame order per stream: the worker holding frame f waits for its
// turn (`next == f`), frames evicted before preprocessing are skipped
// over, and teardown aborts the turn discipline so waiters never
// outlive the run. Deadlock-free by induction: ingress pops are FIFO,
// so the earliest-popped unfinished frame's stream predecessors have
// all finished — its worker never waits.
// ---------------------------------------------------------------------

/// One stream's context slot: the [`StreamPreprocContext`] plus the
/// turn state serializing its updates into frame order.
struct CtxSlot {
    inner: Mutex<CtxInner>,
    turn: Condvar,
}

struct CtxInner {
    /// The next frame index allowed to update the context.
    next: usize,
    /// Admitted frames evicted before preprocessing; `next` advances
    /// over them instead of waiting for work that will never arrive.
    skipped: BTreeSet<usize>,
    ctx: StreamPreprocContext,
}

impl CtxSlot {
    fn new() -> CtxSlot {
        CtxSlot {
            inner: Mutex::new(CtxInner {
                next: 0,
                skipped: BTreeSet::new(),
                ctx: StreamPreprocContext::new(),
            }),
            turn: Condvar::new(),
        }
    }

    /// Advances the turn past `frame_index` (just finished, failed, or
    /// evicted) and wakes waiters. A no-op for out-of-turn completions
    /// (aborted-mode processing).
    fn advance_locked(&self, inner: &mut CtxInner, frame_index: usize) {
        if inner.next == frame_index {
            inner.next = frame_index + 1;
            while inner.skipped.remove(&inner.next) {
                inner.next += 1;
            }
            self.turn.notify_all();
        }
    }
}

/// The session's registry of per-stream context slots, indexed by
/// stream id (slots are opened alongside streams). Unused under
/// [`PreprocReuse::Off`] beyond the (cheap, empty) slot allocation.
struct CtxRegistry {
    slots: Mutex<Vec<Arc<CtxSlot>>>,
    /// Set on teardown (batch abort, panic unwind, shutdown-less drop):
    /// waiters proceed out of order instead of waiting on predecessors
    /// that were discarded with the queues.
    aborted: AtomicBool,
}

impl CtxRegistry {
    fn new() -> CtxRegistry {
        CtxRegistry {
            slots: Mutex::new(Vec::new()),
            aborted: AtomicBool::new(false),
        }
    }

    fn open(&self) {
        self.slots
            .lock()
            .expect("context registry poisoned")
            .push(Arc::new(CtxSlot::new()));
    }

    fn slot(&self, stream_id: usize) -> Arc<CtxSlot> {
        Arc::clone(&self.slots.lock().expect("context registry poisoned")[stream_id])
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Marks an admitted-but-evicted frame so the turn can pass it.
    fn skip(&self, stream_id: usize, frame_index: usize) {
        let slot = self.slot(stream_id);
        let mut inner = slot.inner.lock().expect("preproc context poisoned");
        if frame_index == inner.next {
            slot.advance_locked(&mut inner, frame_index);
        } else if frame_index > inner.next {
            inner.skipped.insert(frame_index);
        }
    }

    /// Ends the turn discipline: waiters wake and process unordered
    /// (the run is dying; its reports are already forfeit). Tolerates
    /// poisoned locks — this runs on panic-unwind paths.
    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        let slots: Vec<Arc<CtxSlot>> = match self.slots.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        for slot in slots {
            // Take (and immediately release) the slot lock so a waiter
            // between its flag check and `wait` cannot miss the wakeup.
            let _turn = slot.inner.lock();
            slot.turn.notify_all();
        }
    }

    /// Per-stream `(warm hits, cold misses)`, in stream-id order.
    fn counts(&self) -> Vec<(u64, u64)> {
        self.slots
            .lock()
            .expect("context registry poisoned")
            .iter()
            .map(|slot| {
                let inner = slot.inner.lock().expect("preproc context poisoned");
                (inner.ctx.hits(), inner.ctx.misses())
            })
            .collect()
    }
}

/// Closes both queues if the holding thread unwinds, so a panic in any
/// pipeline thread (e.g. a user-supplied `FrameSource` panicking inside
/// the admission loop) releases workers blocked on queue condvars
/// instead of deadlocking the run; the panic then propagates through
/// the joins.
struct PanicGuard<'a, A, B> {
    ingress: &'a BoundedQueue<A>,
    stage: &'a BoundedQueue<B>,
    contexts: &'a CtxRegistry,
}

impl<A, B> Drop for PanicGuard<'_, A, B> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.ingress.close_and_clear();
            self.stage.close_and_clear();
            // Release any worker parked on a context turn whose
            // predecessor was just discarded with the queues.
            self.contexts.abort();
        }
    }
}

/// Receipt for one submitted frame: poll it to retrieve the result.
///
/// Tickets are deterministic — `(stream_id, frame_index)` — so a client
/// that replays the same submissions gets the same tickets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FrameTicket {
    /// The owning stream.
    pub stream_id: usize,
    /// Per-stream frame sequence number, assigned at submission.
    pub frame_index: usize,
}

/// A completed frame: the network output plus the frame's full journey.
#[derive(Clone, Debug)]
pub struct FrameResult {
    /// The inference output (logits, op counts, precision).
    pub output: InferenceOutput,
    /// The frame's modeled/virtual-clock journey through the pipeline.
    pub record: FrameRecord,
}

/// Outcome of polling a [`FrameTicket`].
#[derive(Debug)]
pub enum FrameStatus {
    /// Still queued or in flight; poll again.
    Pending,
    /// Inference finished. Delivered at most once: the poll that
    /// observes `Done` consumes the result. (Boxed: a result carries
    /// the full logits matrix and frame record, far larger than the
    /// other variants.)
    Done(Box<FrameResult>),
    /// The frame failed (engine error, or evicted by backpressure).
    /// Also delivered at most once.
    Failed(RuntimeError),
}

/// One open stream in the registry.
#[derive(Clone, Debug)]
struct StreamState {
    name: String,
    nominal_fps: f64,
    precision: Precision,
    offered: usize,
    dropped: usize,
    next_index: usize,
}

/// Shared state of one runtime session — everything the worker loops,
/// the submitters and the pollers touch. Lock order (outer first):
/// `admission` → `streams` → queue internals; `results` and `records`
/// are leaves.
struct SessionCore {
    config: RuntimeConfig,
    kernel_backend: &'static str,
    /// Resolved once per session: the config override if set, else the
    /// served network's pinned selection. Workers thread this into every
    /// engine call, so one session never mixes stage backends.
    stages: StageBackends,
    /// Per-frame failure policy: `true` resolves the failing ticket and
    /// keeps serving; `false` aborts the whole run (batch semantics).
    serving: bool,
    started: Instant,
    traced: bool,
    /// Resolved once per session: the config pin if set, else the
    /// process-wide `HGPCN_PREPROC_REUSE` policy.
    reuse: PreprocReuse,
    /// Per-stream preprocessing contexts (warm caches + turn state).
    contexts: CtxRegistry,
    ingress: BoundedQueue<PreprocJob>,
    stage: BoundedQueue<StageJob>,
    streams: Mutex<Vec<StreamState>>,
    admission: Mutex<SpanRecorder>,
    /// Ticket → status. Serving mode only; the batch driver keeps no
    /// per-ticket state (its results are the report's records).
    results: Mutex<HashMap<(usize, usize), FrameStatus>>,
    results_ready: Condvar,
    records: Mutex<Vec<FrameRecord>>,
    batch_sizes: Mutex<Vec<usize>>,
    first_error: Mutex<Option<RuntimeError>>,
    preproc_live: AtomicUsize,
    collector: Mutex<Option<TraceCollector>>,
}

impl SessionCore {
    fn new(config: RuntimeConfig, net: &PointNet, serving: bool) -> SessionCore {
        let started = Instant::now();
        // Resolved once per session: `Auto` reads the environment here,
        // not per event. When off, every SpanRecorder is a no-op sink.
        let traced = config.telemetry.is_enabled();
        SessionCore {
            kernel_backend: net.kernel().name(),
            stages: config.stage_backends.unwrap_or(net.stage_backends()),
            serving,
            started,
            traced,
            reuse: config
                .preproc_reuse
                .unwrap_or_else(hgpcn_system::reuse::active),
            contexts: CtxRegistry::new(),
            ingress: BoundedQueue::new(config.queue_capacity),
            stage: BoundedQueue::new(config.queue_capacity),
            streams: Mutex::new(Vec::new()),
            admission: Mutex::new(SpanRecorder::new(WorkerId::admission(), started, traced)),
            results: Mutex::new(HashMap::new()),
            results_ready: Condvar::new(),
            records: Mutex::new(Vec::new()),
            batch_sizes: Mutex::new(Vec::new()),
            first_error: Mutex::new(None),
            preproc_live: AtomicUsize::new(config.preproc_workers),
            collector: Mutex::new(Some(TraceCollector::new())),
            config,
        }
    }

    fn open_stream(&self, profile: StreamProfile) -> usize {
        let mut streams = self.streams.lock().expect("stream registry poisoned");
        let id = streams.len();
        // One context slot per stream, opened unconditionally (a fresh
        // slot allocates nothing heavy) so stream ids always index the
        // registry regardless of the reuse policy.
        self.contexts.open();
        streams.push(StreamState {
            name: profile.name,
            nominal_fps: profile.nominal_fps,
            precision: profile.precision.unwrap_or(self.config.precision),
            offered: 0,
            dropped: 0,
            next_index: 0,
        });
        id
    }

    /// Admits one frame under the (held) admission recorder lock —
    /// the single code path both front ends enqueue through, so the
    /// event order (`Admit`, then `Drop`/`Enqueue`) and the drop
    /// accounting are identical in batch and serving mode.
    fn admit_locked(
        &self,
        recorder: &mut SpanRecorder,
        frame: TimedFrame,
        precision: Precision,
    ) -> Result<FrameTicket, RuntimeError> {
        let ticket = FrameTicket {
            stream_id: frame.stream_id,
            frame_index: frame.frame_index,
        };
        self.streams.lock().expect("stream registry poisoned")[frame.stream_id].offered += 1;
        let virtual_arrival_s = match self.config.arrival {
            ArrivalModel::Sensor => frame.sensor_ts_s,
            ArrivalModel::Backlogged => 0.0,
        };
        if self.serving {
            // The Pending entry must exist before the frame becomes
            // visible to workers, or a fast completion could be
            // overwritten by it.
            self.results
                .lock()
                .expect("result table poisoned")
                .insert((ticket.stream_id, ticket.frame_index), FrameStatus::Pending);
        }
        recorder.record(
            EventKind::Admit,
            frame.stream_id,
            frame.frame_index,
            virtual_arrival_s,
        );
        let job = PreprocJob {
            frame,
            virtual_arrival_s,
            precision,
        };
        let refused = |core: &SessionCore| {
            if core.serving {
                core.results
                    .lock()
                    .expect("result table poisoned")
                    .remove(&(ticket.stream_id, ticket.frame_index));
            }
            Err(RuntimeError::ShuttingDown)
        };
        match self.config.backpressure {
            BackpressurePolicy::Block => {
                let (sid, fidx) = (job.frame.stream_id, job.frame.frame_index);
                if self.ingress.push_blocking(job).is_err() {
                    return refused(self);
                }
                recorder.record(EventKind::Enqueue, sid, fidx, virtual_arrival_s);
            }
            BackpressurePolicy::DropOldest => {
                let (sid, fidx) = (job.frame.stream_id, job.frame.frame_index);
                match self.ingress.push_drop_oldest(job) {
                    Ok(Some(evicted)) => {
                        self.streams.lock().expect("stream registry poisoned")
                            [evicted.frame.stream_id]
                            .dropped += 1;
                        if self.reuse == PreprocReuse::On {
                            // The evicted frame will never reach a
                            // preproc worker: pass its context turn so
                            // successors don't wait for it.
                            self.contexts
                                .skip(evicted.frame.stream_id, evicted.frame.frame_index);
                        }
                        recorder.record(
                            EventKind::Drop,
                            evicted.frame.stream_id,
                            evicted.frame.frame_index,
                            evicted.virtual_arrival_s,
                        );
                        if self.serving {
                            self.publish(
                                (evicted.frame.stream_id, evicted.frame.frame_index),
                                FrameStatus::Failed(RuntimeError::Dropped {
                                    stream_id: evicted.frame.stream_id,
                                    frame_index: evicted.frame.frame_index,
                                }),
                            );
                        }
                        recorder.record(EventKind::Enqueue, sid, fidx, virtual_arrival_s);
                    }
                    Ok(None) => {
                        recorder.record(EventKind::Enqueue, sid, fidx, virtual_arrival_s);
                    }
                    Err(_) => return refused(self),
                }
            }
        }
        Ok(ticket)
    }

    /// Serving-mode submission: assigns the next frame index and admits.
    fn submit(
        &self,
        stream_id: usize,
        sensor_ts_s: f64,
        cloud: PointCloud,
    ) -> Result<FrameTicket, RuntimeError> {
        // The admission lock is taken for the whole assign+enqueue so
        // concurrent submitters cannot reorder a stream's indices; a
        // full ingress queue under `Block` therefore backpressures every
        // submitter, not just this one.
        let mut recorder = self.admission.lock().expect("admission recorder poisoned");
        let (frame_index, precision) = {
            let mut streams = self.streams.lock().expect("stream registry poisoned");
            let state = streams
                .get_mut(stream_id)
                .ok_or(RuntimeError::UnknownStream { stream_id })?;
            let index = state.next_index;
            state.next_index += 1;
            (index, state.precision)
        };
        let frame = TimedFrame {
            stream_id,
            frame_index,
            sensor_ts_s,
            cloud,
        };
        self.admit_locked(&mut recorder, frame, precision)
    }

    fn publish(&self, key: (usize, usize), status: FrameStatus) {
        let mut results = self.results.lock().expect("result table poisoned");
        results.insert(key, status);
        self.results_ready.notify_all();
    }

    /// Non-blocking poll. `Done`/`Failed` are consumed by the observing
    /// poll; a consumed (or never-issued) ticket is `UnknownTicket`.
    fn poll(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        let key = (ticket.stream_id, ticket.frame_index);
        let mut results = self.results.lock().expect("result table poisoned");
        match results.get(&key) {
            Some(FrameStatus::Pending) => Ok(FrameStatus::Pending),
            Some(_) => Ok(results.remove(&key).expect("entry just observed")),
            None => Err(RuntimeError::UnknownTicket {
                stream_id: ticket.stream_id,
                frame_index: ticket.frame_index,
            }),
        }
    }

    /// Blocking poll: parks until the ticket resolves.
    fn wait(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        let key = (ticket.stream_id, ticket.frame_index);
        let mut results = self.results.lock().expect("result table poisoned");
        loop {
            match results.get(&key) {
                Some(FrameStatus::Pending) => {
                    results = self
                        .results_ready
                        .wait(results)
                        .expect("result table poisoned");
                }
                Some(_) => return Ok(results.remove(&key).expect("entry just observed")),
                None => {
                    return Err(RuntimeError::UnknownTicket {
                        stream_id: ticket.stream_id,
                        frame_index: ticket.frame_index,
                    })
                }
            }
        }
    }

    /// Resolves a frame failure per the session's policy. Returns `true`
    /// when the worker must abort its loop (batch semantics).
    fn frame_failed(&self, stream_id: usize, frame_index: usize, source: SystemError) -> bool {
        let err = RuntimeError::Frame {
            stream_id,
            frame_index,
            source,
        };
        if self.serving {
            self.publish((stream_id, frame_index), FrameStatus::Failed(err));
            false
        } else {
            let mut slot = self.first_error.lock().expect("error slot poisoned");
            if slot.is_none() {
                *slot = Some(err);
            }
            // Unwind the whole pipeline, discarding backlogged work —
            // its results would be thrown away with the run anyway.
            self.ingress.close_and_clear();
            self.stage.close_and_clear();
            self.contexts.abort();
            true
        }
    }

    fn submit_recorder(&self, recorder: SpanRecorder) {
        if let Some(collector) = self
            .collector
            .lock()
            .expect("trace collector poisoned")
            .as_ref()
        {
            collector.submit(recorder);
        }
    }

    /// A live snapshot report over everything completed so far. The
    /// `telemetry` field stays `None` — the trace is only merged once,
    /// at shutdown.
    fn snapshot(&self) -> RuntimeReport {
        let streams = self
            .streams
            .lock()
            .expect("stream registry poisoned")
            .clone();
        let mut records = self.records.lock().expect("record sink poisoned").clone();
        records.sort_by_key(|r| (r.stream_id, r.frame_index));
        let sizes = self
            .batch_sizes
            .lock()
            .expect("batch stats poisoned")
            .clone();
        assemble_report(
            &self.config,
            self.kernel_backend,
            StageBackendNames::from(self.stages),
            self.reuse,
            &self.contexts.counts(),
            &streams,
            records,
            QueueStats {
                high_water: self.ingress.high_water(),
                dropped: self.ingress.dropped(),
            },
            QueueStats {
                high_water: self.stage.high_water(),
                dropped: self.stage.dropped(),
            },
            BatchingStats::from_sizes(self.config.max_batch, &sizes),
            self.started.elapsed(),
        )
    }

    /// Assembles the final report after every worker has exited. Called
    /// exactly once per session.
    fn finalize(&self) -> Result<RuntimeReport, RuntimeError> {
        if let Some(err) = self.first_error.lock().expect("error slot poisoned").take() {
            return Err(err);
        }
        let recorder = {
            let mut guard = self.admission.lock().expect("admission recorder poisoned");
            std::mem::replace(
                &mut *guard,
                SpanRecorder::new(WorkerId::admission(), self.started, false),
            )
        };
        self.submit_recorder(recorder);
        let streams = self
            .streams
            .lock()
            .expect("stream registry poisoned")
            .clone();
        let mut records = std::mem::take(&mut *self.records.lock().expect("record sink poisoned"));
        records.sort_by_key(|r| (r.stream_id, r.frame_index));
        let sizes = std::mem::take(&mut *self.batch_sizes.lock().expect("batch stats poisoned"));
        let mut report = assemble_report(
            &self.config,
            self.kernel_backend,
            StageBackendNames::from(self.stages),
            self.reuse,
            &self.contexts.counts(),
            &streams,
            records,
            QueueStats {
                high_water: self.ingress.high_water(),
                dropped: self.ingress.dropped(),
            },
            QueueStats {
                high_water: self.stage.high_water(),
                dropped: self.stage.dropped(),
            },
            BatchingStats::from_sizes(self.config.max_batch, &sizes),
            self.started.elapsed(),
        );
        if self.traced {
            let collector = self
                .collector
                .lock()
                .expect("trace collector poisoned")
                .take()
                .expect("finalize runs once");
            let trace = collector.finish();
            let metrics = report.build_metrics();
            report.telemetry = Some(TelemetrySnapshot { trace, metrics });
        }
        Ok(report)
    }
}

// ---------------------------------------------------------------------
// Worker loops — shared verbatim by the batch driver and the live
// serving runtime. Latency accounting runs on the virtual clock: each
// worker advances its own virtual time by the modeled latency of the
// work it actually executed.
// ---------------------------------------------------------------------

fn preproc_worker(core: &SessionCore, pipeline: &E2ePipeline, w: usize) {
    let _guard = PanicGuard {
        ingress: &core.ingress,
        stage: &core.stage,
        contexts: &core.contexts,
    };
    let mut recorder = SpanRecorder::new(WorkerId::preproc(w), core.started, core.traced);
    let mut vclock = 0.0f64;
    while let Some((job, ticket)) = core.ingress.pop() {
        let PreprocJob {
            frame,
            virtual_arrival_s,
            precision,
        } = job;
        recorder.record(
            EventKind::Dequeue,
            frame.stream_id,
            frame.frame_index,
            virtual_arrival_s,
        );
        let seed = frame_seed(core.config.seed, frame.stream_id, frame.frame_index);
        // Both branches produce `(sampled, latency, counts, reused,
        // wall_secs)`; the warm branch runs under the stream's context
        // turn so cache state — and therefore modeled cost — is a pure
        // function of submission order at any worker count. Wall time is
        // measured around the engine call only, excluding the turn wait.
        let processed: Result<(PointCloud, Latency, OpCounts, bool, f64), SystemError> =
            if core.reuse == PreprocReuse::On {
                let slot = core.contexts.slot(frame.stream_id);
                let mut inner = slot.inner.lock().expect("preproc context poisoned");
                while inner.next != frame.frame_index && !core.contexts.is_aborted() {
                    inner = slot.turn.wait(inner).expect("preproc context poisoned");
                }
                let wall0 = Instant::now();
                let result = pipeline
                    .preproc
                    .run_with_context(
                        &frame.cloud,
                        core.config.target_points,
                        seed,
                        core.stages.sampling,
                        &mut inner.ctx,
                    )
                    .map(|mut out| {
                        let latency = out.total_latency();
                        let counts = out.total_counts();
                        let reused = out.reused;
                        let sampled = std::mem::replace(&mut out.sampled, PointCloud::new());
                        inner.ctx.recycle(out);
                        (
                            sampled,
                            latency,
                            counts,
                            reused,
                            wall0.elapsed().as_secs_f64(),
                        )
                    });
                // Pass the turn whether the frame succeeded or failed;
                // successors must not wait on a frame that already
                // resolved.
                slot.advance_locked(&mut inner, frame.frame_index);
                result
            } else {
                let wall0 = Instant::now();
                pipeline
                    .preproc
                    .run_using(
                        &frame.cloud,
                        core.config.target_points,
                        seed,
                        core.stages.sampling,
                    )
                    .map(|out| {
                        let latency = out.total_latency();
                        let counts = out.total_counts();
                        (
                            out.sampled,
                            latency,
                            counts,
                            false,
                            wall0.elapsed().as_secs_f64(),
                        )
                    })
            };
        match processed {
            Ok((sampled, latency, counts, preproc_reused, wall_preproc_s)) => {
                let start = vclock.max(virtual_arrival_s);
                let done = start + latency.secs();
                vclock = done;
                recorder.record(
                    EventKind::PreprocStart,
                    frame.stream_id,
                    frame.frame_index,
                    start,
                );
                recorder.record(
                    EventKind::PreprocEnd,
                    frame.stream_id,
                    frame.frame_index,
                    done,
                );
                let stage_job = StageJob {
                    stream_id: frame.stream_id,
                    frame_index: frame.frame_index,
                    sensor_ts_s: frame.sensor_ts_s,
                    virtual_arrival_s,
                    virtual_preproc_start_s: start,
                    virtual_preproc_done_s: done,
                    preproc_ticket: ticket,
                    wall_preproc_s,
                    precision,
                    sampled,
                    pre_phase: PhaseReport { latency, counts },
                    preproc_reused,
                };
                let (sid, fidx) = (frame.stream_id, frame.frame_index);
                if core.stage.push_blocking(stage_job).is_err() {
                    break; // shutdown under way
                }
                recorder.record(EventKind::Enqueue, sid, fidx, done);
            }
            Err(err) => {
                if core.frame_failed(frame.stream_id, frame.frame_index, err) {
                    break;
                }
            }
        }
    }
    if core.preproc_live.fetch_sub(1, Ordering::AcqRel) == 1 {
        core.stage.close();
    }
    core.submit_recorder(recorder);
}

// `max_batch == 1` runs the legacy per-frame engine call; `>= 2`
// coalesces micro-batches into the SoA path, whose per-frame results
// are bit-identical by construction.
fn inference_worker(core: &SessionCore, pipeline: &E2ePipeline, net: &PointNet, w: usize) {
    let _guard = PanicGuard {
        ingress: &core.ingress,
        stage: &core.stage,
        contexts: &core.contexts,
    };
    let mut recorder = SpanRecorder::new(WorkerId::inference(w), core.started, core.traced);
    let mut vclock = 0.0f64;
    if core.config.max_batch <= 1 {
        while let Some((job, ticket)) = core.stage.pop() {
            recorder.record(
                EventKind::Dequeue,
                job.stream_id,
                job.frame_index,
                job.virtual_preproc_done_s,
            );
            let seed = frame_seed(core.config.seed, job.stream_id, job.frame_index);
            let precision = job.precision;
            let wall0 = Instant::now();
            match pipeline.inference.run_with_precision_using(
                &job.sampled,
                net,
                seed,
                precision,
                core.stages,
            ) {
                Ok(inf) => {
                    complete_frame(
                        core,
                        job,
                        ticket,
                        &inf,
                        &mut vclock,
                        wall0.elapsed().as_secs_f64(),
                        &mut recorder,
                    );
                }
                Err(err) => {
                    if core.frame_failed(job.stream_id, job.frame_index, err) {
                        break;
                    }
                }
            }
        }
        core.submit_recorder(recorder);
        return;
    }

    // Running estimate of per-frame modeled inference latency, for the
    // deadline cap.
    let mut est_latency_s = 0.0f64;
    'work: while let Some(first) = core.stage.pop() {
        recorder.record(
            EventKind::Dequeue,
            first.0.stream_id,
            first.0.frame_index,
            first.0.virtual_preproc_done_s,
        );
        // The first frame is taken blocking; the rest of the micro-batch
        // only drains whatever is already queued, up to the
        // deadline-aware ceiling — a frame never waits for companions.
        let allowed = if !core.config.batch_deadline_s.is_finite() {
            core.config.max_batch
        } else if est_latency_s <= 0.0 {
            1 // prime the estimator on one frame
        } else {
            ((core.config.batch_deadline_s / est_latency_s) as usize)
                .clamp(1, core.config.max_batch)
        };
        let mut batch = vec![first];
        while batch.len() < allowed {
            match core.stage.try_pop() {
                Some(next) => {
                    recorder.record(
                        EventKind::Dequeue,
                        next.0.stream_id,
                        next.0.frame_index,
                        next.0.virtual_preproc_done_s,
                    );
                    batch.push(next);
                }
                None => break,
            }
        }
        recorder.record_detail(
            EventKind::BatchCoalesce,
            batch[0].0.stream_id,
            batch[0].0.frame_index,
            batch[0].0.virtual_preproc_done_s,
            batch.len() as u32,
        );

        // Partition the drained micro-batch by effective precision: each
        // engine call is single-tier (the SoA GEMMs cannot mix operand
        // widths), but frames still finish — and advance the virtual
        // clock — in dequeue order, so mixing tiers never reorders a
        // stream.
        let mut reports: Vec<Option<InferenceReport>> = batch.iter().map(|_| None).collect();
        // Per-frame share of the tier call's host wall time (split
        // evenly — the SoA path serves the whole sub-batch in one pass).
        let mut walls: Vec<f64> = vec![0.0; batch.len()];
        let mut tier_failed = false;
        for tier in [Precision::F32, Precision::Int8] {
            let idxs: Vec<usize> = (0..batch.len())
                .filter(|&i| batch[i].0.precision == tier)
                .collect();
            if idxs.is_empty() {
                continue;
            }
            let inputs: Vec<&PointCloud> = idxs.iter().map(|&i| &batch[i].0.sampled).collect();
            let seeds: Vec<u64> = idxs
                .iter()
                .map(|&i| {
                    let j = &batch[i].0;
                    frame_seed(core.config.seed, j.stream_id, j.frame_index)
                })
                .collect();
            let wall0 = Instant::now();
            match pipeline.inference.run_batch_with_precision_using(
                &inputs,
                net,
                &seeds,
                tier,
                core.stages,
            ) {
                Ok(rs) => {
                    let share = wall0.elapsed().as_secs_f64() / idxs.len() as f64;
                    core.batch_sizes
                        .lock()
                        .expect("batch stats poisoned")
                        .push(idxs.len());
                    for (slot, r) in idxs.into_iter().zip(rs) {
                        walls[slot] = share;
                        reports[slot] = Some(r);
                    }
                }
                Err(_) => {
                    tier_failed = true;
                    break;
                }
            }
        }
        if !tier_failed {
            for (i, ((job, ticket), inf)) in batch.into_iter().zip(&reports).enumerate() {
                let inf = inf.as_ref().expect("every tier ran or we bailed");
                let lat = inf.total_latency().secs();
                est_latency_s = if est_latency_s <= 0.0 {
                    lat
                } else {
                    0.5 * (est_latency_s + lat)
                };
                complete_frame(core, job, ticket, inf, &mut vclock, walls[i], &mut recorder);
            }
        } else {
            // Attribute the failure: re-run the batch serially
            // (deterministic, so healthy frames reproduce exactly) and
            // resolve the culprit — per frame in serving mode, aborting
            // the run in batch mode.
            for (job, ticket) in batch {
                let seed = frame_seed(core.config.seed, job.stream_id, job.frame_index);
                let precision = job.precision;
                let wall0 = Instant::now();
                match pipeline.inference.run_with_precision_using(
                    &job.sampled,
                    net,
                    seed,
                    precision,
                    core.stages,
                ) {
                    Ok(inf) => {
                        complete_frame(
                            core,
                            job,
                            ticket,
                            &inf,
                            &mut vclock,
                            wall0.elapsed().as_secs_f64(),
                            &mut recorder,
                        );
                    }
                    Err(err) => {
                        if core.frame_failed(job.stream_id, job.frame_index, err) {
                            break 'work;
                        }
                    }
                }
            }
        }
    }
    core.submit_recorder(recorder);
}

/// Advances the worker's virtual clock past `job`, records its journey,
/// and — in serving mode — resolves its ticket with the output. Shared
/// by the serial and batched inference paths: within a micro-batch,
/// frames advance the clock in dequeue order, so the modeled timeline of
/// a batched run matches the serial one exactly.
fn complete_frame(
    core: &SessionCore,
    job: StageJob,
    inference_ticket: u64,
    inf: &InferenceReport,
    vclock: &mut f64,
    wall_infer_s: f64,
    recorder: &mut SpanRecorder,
) {
    let key = (job.stream_id, job.frame_index);
    let latency = inf.total_latency();
    let start = vclock.max(job.virtual_preproc_done_s);
    let done = start + latency.secs();
    *vclock = done;
    recorder.record(EventKind::InferStart, job.stream_id, job.frame_index, start);
    recorder.record(EventKind::InferEnd, job.stream_id, job.frame_index, done);
    recorder.record(EventKind::Complete, job.stream_id, job.frame_index, done);
    let record = FrameRecord {
        stream_id: job.stream_id,
        frame_index: job.frame_index,
        sensor_ts_s: job.sensor_ts_s,
        virtual_arrival_s: job.virtual_arrival_s,
        virtual_preproc_start_s: job.virtual_preproc_start_s,
        virtual_preproc_done_s: job.virtual_preproc_done_s,
        virtual_infer_start_s: start,
        virtual_done_s: done,
        modeled: E2eReport {
            preprocess: job.pre_phase,
            inference: PhaseReport {
                latency,
                counts: inf.total_counts(),
            },
        },
        preproc_ticket: job.preproc_ticket,
        inference_ticket,
        wall_preproc_s: job.wall_preproc_s,
        wall_infer_s,
        wall_done: core.started.elapsed(),
        preproc_reused: job.preproc_reused,
    };
    // Record first, publish second: a poller that observes `Done` must
    // find the frame already counted in `stats()` snapshots.
    let published = core.serving.then(|| record.clone());
    core.records
        .lock()
        .expect("record sink poisoned")
        .push(record);
    if let Some(record) = published {
        core.publish(
            key,
            FrameStatus::Done(Box::new(FrameResult {
                output: inf.output.clone(),
                record,
            })),
        );
    }
}

// ---------------------------------------------------------------------
// Batch driver: the pre-session `Runtime::run` semantics, executed as a
// thin front end over the session core.
// ---------------------------------------------------------------------

/// Runs `streams` to completion through a fresh session core.
pub(crate) fn run_batch(
    config: &RuntimeConfig,
    pipeline: &E2ePipeline,
    streams: Vec<StreamSpec>,
    net: &PointNet,
) -> Result<RuntimeReport, RuntimeError> {
    let core = SessionCore::new(config.clone(), net, false);
    let precisions: Vec<Precision> = streams
        .iter()
        .map(|s| s.precision.unwrap_or(config.precision))
        .collect();
    for spec in &streams {
        core.open_stream(spec.profile());
    }
    let mut scheduler = Scheduler::new(streams, config.admission);
    {
        let core = &core;
        thread::scope(|s| {
            // --- Admission: scheduler → ingress queue. ---
            let admission = s.spawn(move || {
                let _guard = PanicGuard {
                    ingress: &core.ingress,
                    stage: &core.stage,
                    contexts: &core.contexts,
                };
                // Batch admission is single-threaded, so the recorder
                // lock is held for the whole run.
                let mut recorder = core.admission.lock().expect("admission recorder poisoned");
                while let Some(frame) = scheduler.next_frame() {
                    let precision = precisions[frame.stream_id];
                    if core.admit_locked(&mut recorder, frame, precision).is_err() {
                        break; // shutdown under way
                    }
                }
                drop(recorder);
                core.ingress.close();
            });

            // --- Pre-processing pool: ingress → stage queue. ---
            let preproc_handles: Vec<_> = (0..config.preproc_workers)
                .map(|w| s.spawn(move || preproc_worker(core, pipeline, w)))
                .collect();

            // --- Inference pool: stage queue → records. ---
            let inference_handles: Vec<_> = (0..config.inference_workers)
                .map(|w| s.spawn(move || inference_worker(core, pipeline, net, w)))
                .collect();

            admission.join().expect("admission thread panicked");
            for h in preproc_handles {
                h.join().expect("preprocessing worker panicked");
            }
            for h in inference_handles {
                h.join().expect("inference worker panicked");
            }
        });
    }
    core.finalize()
}

// ---------------------------------------------------------------------
// The live serving front end.
// ---------------------------------------------------------------------

/// A live, session-oriented serving runtime.
///
/// Where [`Runtime::run`](crate::Runtime::run) executes a pre-registered
/// fleet to completion, a `ServingRuntime` keeps its worker pools
/// running and lets clients open streams and submit frames one at a
/// time — the core a network front end (`hgpcn-serve`) is built on.
///
/// ```
/// use hgpcn_runtime::{FrameStatus, RuntimeConfig, ServingRuntime, StreamProfile};
/// use hgpcn_pcn::{PointNet, PointNetConfig};
/// use hgpcn_geometry::Point3;
///
/// let net = PointNet::new(PointNetConfig::classification(), 7);
/// let rt = ServingRuntime::start(RuntimeConfig::default().target_points(512), net)?;
/// let stream = rt.open_stream(StreamProfile::new("lidar-a"))?;
/// let cloud = (0..1000)
///     .map(|i| {
///         let f = i as f32;
///         Point3::new((f * 0.618).fract(), (f * 0.414).fract(), (f * 0.732).fract())
///     })
///     .collect();
/// let ticket = stream.submit(0.0, cloud)?;
/// match rt.wait(ticket)? {
///     FrameStatus::Done(result) => assert!(result.output.logits.rows() > 0),
///     other => panic!("expected completion, got {other:?}"),
/// }
/// let report = rt.shutdown()?;
/// assert_eq!(report.total_frames, 1);
/// # Ok::<(), hgpcn_runtime::RuntimeError>(())
/// ```
pub struct ServingRuntime {
    core: Option<Arc<SessionCore>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServingRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingRuntime")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServingRuntime {
    /// Starts worker pools over the prototype pipeline.
    ///
    /// The network is taken as `impl Into<Arc<PointNet>>`: passing a
    /// `PointNet` by value keeps working unchanged, while passing an
    /// `Arc<PointNet>` lets many runtimes (the shards of a
    /// [`ShardedRuntime`](crate::ShardedRuntime)) serve **one** shared
    /// copy of the weights instead of cloning them per replica.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `config` fails
    /// [`RuntimeConfig::validate`].
    pub fn start(
        config: RuntimeConfig,
        net: impl Into<Arc<PointNet>>,
    ) -> Result<ServingRuntime, RuntimeError> {
        ServingRuntime::start_with_pipeline(config, E2ePipeline::prototype(), net)
    }

    /// Starts worker pools over a caller-supplied pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `config` fails
    /// [`RuntimeConfig::validate`].
    pub fn start_with_pipeline(
        config: RuntimeConfig,
        pipeline: E2ePipeline,
        net: impl Into<Arc<PointNet>>,
    ) -> Result<ServingRuntime, RuntimeError> {
        config.validate()?;
        let net: Arc<PointNet> = net.into();
        let core = Arc::new(SessionCore::new(config.clone(), &net, true));
        let pipeline = Arc::new(pipeline);
        let mut workers = Vec::with_capacity(config.preproc_workers + config.inference_workers);
        for w in 0..config.preproc_workers {
            let (core, pipeline) = (Arc::clone(&core), Arc::clone(&pipeline));
            workers.push(
                thread::Builder::new()
                    .name(format!("hgpcn-preproc-{w}"))
                    .spawn(move || preproc_worker(&core, &pipeline, w))
                    .expect("spawn preproc worker"),
            );
        }
        for w in 0..config.inference_workers {
            let (core, pipeline, net) =
                (Arc::clone(&core), Arc::clone(&pipeline), Arc::clone(&net));
            workers.push(
                thread::Builder::new()
                    .name(format!("hgpcn-infer-{w}"))
                    .spawn(move || inference_worker(&core, &pipeline, &net, w))
                    .expect("spawn inference worker"),
            );
        }
        Ok(ServingRuntime {
            core: Some(core),
            workers,
        })
    }

    fn core(&self) -> &Arc<SessionCore> {
        self.core.as_ref().expect("core present until shutdown")
    }

    /// Opens a stream session and returns its handle.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves room for
    /// admission-control refusals.
    pub fn open_stream(&self, profile: StreamProfile) -> Result<StreamHandle, RuntimeError> {
        let core = self.core();
        let stream_id = core.open_stream(profile);
        Ok(StreamHandle {
            stream_id,
            core: Arc::downgrade(core),
        })
    }

    /// A handle to an already-open stream, or `None` for an unknown id.
    pub fn stream(&self, stream_id: usize) -> Option<StreamHandle> {
        let core = self.core();
        let known = stream_id < core.streams.lock().expect("stream registry poisoned").len();
        known.then(|| StreamHandle {
            stream_id,
            core: Arc::downgrade(core),
        })
    }

    /// Submits one frame to `stream_id`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id and
    /// [`RuntimeError::ShuttingDown`] once shutdown has begun.
    pub fn submit(
        &self,
        stream_id: usize,
        sensor_ts_s: f64,
        cloud: PointCloud,
    ) -> Result<FrameTicket, RuntimeError> {
        self.core().submit(stream_id, sensor_ts_s, cloud)
    }

    /// Polls a ticket without blocking. See [`FrameStatus`] for the
    /// at-most-once delivery contract.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a never-issued or
    /// already-consumed ticket.
    pub fn poll(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        self.core().poll(ticket)
    }

    /// Blocks until `ticket` resolves.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a never-issued or
    /// already-consumed ticket.
    pub fn wait(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        self.core().wait(ticket)
    }

    /// A live snapshot of the aggregate serving report: everything
    /// completed so far, on the same schema the batch runner returns
    /// (`telemetry` stays `None` until [`ServingRuntime::shutdown`]).
    pub fn stats(&self) -> RuntimeReport {
        self.core().snapshot()
    }

    /// Frames currently queued between stages (ingress + stage queue
    /// occupancy) — the live load signal
    /// [`PlacementPolicy::LeastLoaded`](crate::PlacementPolicy)
    /// placement reads. A momentary observation: it can change before
    /// the caller acts on it.
    pub fn queue_depth(&self) -> usize {
        let core = self.core();
        core.ingress.depth() + core.stage.depth()
    }

    /// One stream's slice of [`ServingRuntime::stats`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownStream`] for an unopened id.
    pub fn stream_stats(&self, stream_id: usize) -> Result<StreamReport, RuntimeError> {
        self.stats()
            .streams
            .into_iter()
            .find(|s| s.stream_id == stream_id)
            .ok_or(RuntimeError::UnknownStream { stream_id })
    }

    /// Graceful shutdown: refuses new submissions, drains every queued
    /// frame, joins the pools and returns the final report (with
    /// telemetry, when enabled).
    ///
    /// # Errors
    ///
    /// Never fails in serving mode today; the `Result` mirrors the batch
    /// runner so both front ends report the same way.
    ///
    /// # Panics
    ///
    /// Propagates a worker-thread panic (an engine bug), like
    /// [`Runtime::run`](crate::Runtime::run) does.
    pub fn shutdown(mut self) -> Result<RuntimeReport, RuntimeError> {
        let core = self.core.take().expect("core present until shutdown");
        core.ingress.close();
        for handle in std::mem::take(&mut self.workers) {
            handle.join().expect("runtime worker panicked");
        }
        core.finalize()
    }
}

impl Drop for ServingRuntime {
    fn drop(&mut self) {
        // Shutdown-less drop: abort (discarding backlog) rather than
        // leak live threads. Worker panics are swallowed — propagating
        // from a destructor would abort the process.
        if let Some(core) = self.core.take() {
            core.ingress.close_and_clear();
            core.stage.close_and_clear();
            core.contexts.abort();
            for handle in std::mem::take(&mut self.workers) {
                let _ = handle.join();
            }
        }
    }
}

/// A cheap, cloneable handle to one open stream. Holds a weak reference:
/// once the owning [`ServingRuntime`] shuts down, every operation
/// returns [`RuntimeError::ShuttingDown`].
#[derive(Clone)]
pub struct StreamHandle {
    stream_id: usize,
    core: Weak<SessionCore>,
}

impl std::fmt::Debug for StreamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHandle")
            .field("stream_id", &self.stream_id)
            .finish_non_exhaustive()
    }
}

impl StreamHandle {
    /// The stream's id (its index in report stream lists).
    pub fn id(&self) -> usize {
        self.stream_id
    }

    fn core(&self) -> Result<Arc<SessionCore>, RuntimeError> {
        self.core.upgrade().ok_or(RuntimeError::ShuttingDown)
    }

    /// Submits one frame; see [`ServingRuntime::submit`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShuttingDown`] once the runtime is gone.
    pub fn submit(&self, sensor_ts_s: f64, cloud: PointCloud) -> Result<FrameTicket, RuntimeError> {
        self.core()?.submit(self.stream_id, sensor_ts_s, cloud)
    }

    /// Polls a ticket; see [`ServingRuntime::poll`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] / [`RuntimeError::ShuttingDown`].
    pub fn poll(&self, ticket: FrameTicket) -> Result<FrameStatus, RuntimeError> {
        self.core()?.poll(ticket)
    }

    /// This stream's live report slice; see
    /// [`ServingRuntime::stream_stats`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShuttingDown`] once the runtime is gone.
    pub fn stats(&self) -> Result<StreamReport, RuntimeError> {
        self.core()?
            .snapshot()
            .streams
            .into_iter()
            .find(|s| s.stream_id == self.stream_id)
            .ok_or(RuntimeError::UnknownStream {
                stream_id: self.stream_id,
            })
    }
}

// ---------------------------------------------------------------------
// Report assembly (shared by live snapshots and final reports).
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn assemble_report(
    config: &RuntimeConfig,
    kernel_backend: &'static str,
    stage_backends: StageBackendNames,
    reuse: PreprocReuse,
    reuse_counts: &[(u64, u64)],
    streams: &[StreamState],
    records: Vec<FrameRecord>,
    ingress_queue: QueueStats,
    stage_queue: QueueStats,
    batching: BatchingStats,
    wall_elapsed: std::time::Duration,
) -> RuntimeReport {
    use hgpcn_memsim::Latency;

    let mut reports = Vec::with_capacity(streams.len());
    for (id, state) in streams.iter().enumerate() {
        let mine: Vec<&FrameRecord> = records.iter().filter(|r| r.stream_id == id).collect();
        let service: Vec<Latency> = mine.iter().map(|r| r.modeled.total()).collect();
        let sojourn: Vec<Latency> = mine
            .iter()
            .map(|r| Latency::from_secs((r.virtual_done_s - r.virtual_arrival_s).max(0.0)))
            .collect();
        let achieved_fps = match mine.first() {
            Some(first) => {
                let span = mine
                    .iter()
                    .map(|r| r.virtual_done_s)
                    .fold(f64::NEG_INFINITY, f64::max)
                    - first.virtual_arrival_s;
                if span > 1e-12 {
                    mine.len() as f64 / span
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        reports.push(StreamReport {
            stream_id: id,
            shard: 0,
            name: state.name.clone(),
            offered: state.offered,
            completed: mine.len(),
            dropped: state.dropped,
            sensor_fps: state.nominal_fps,
            precision: state.precision.name(),
            stage_backends,
            preproc_reuse: reuse.name(),
            preproc_reuse_hits: reuse_counts.get(id).map_or(0, |c| c.0),
            preproc_reuse_misses: reuse_counts.get(id).map_or(0, |c| c.1),
            achieved_fps,
            service: LatencySummary::from_samples(&service),
            sojourn: LatencySummary::from_samples(&sojourn),
            breakdown: StageBreakdown::from_records(mine.iter().copied()),
        });
    }

    let earliest_arrival = records
        .iter()
        .map(|r| r.virtual_arrival_s)
        .fold(f64::INFINITY, f64::min);
    let latest_done = records
        .iter()
        .map(|r| r.virtual_done_s)
        .fold(0.0f64, f64::max);
    let virtual_makespan_s = if records.is_empty() {
        0.0
    } else {
        (latest_done - earliest_arrival).max(0.0)
    };
    let modeled_pipelined_fps = if virtual_makespan_s > 1e-12 {
        records.len() as f64 / virtual_makespan_s
    } else {
        0.0
    };

    let precision = {
        let tiers: Vec<Precision> = streams.iter().map(|s| s.precision).collect();
        match tiers.as_slice() {
            [] => Precision::F32.name(),
            [first, rest @ ..] if rest.iter().all(|p| p == first) => first.name(),
            _ => "mixed",
        }
    };

    let breakdown = StageBreakdown::from_records(&records);
    let utilization = if virtual_makespan_s > 1e-12 {
        WorkerUtilization {
            preproc_busy: breakdown.virtual_preproc_busy_s
                / (virtual_makespan_s * config.preproc_workers as f64),
            infer_busy: breakdown.virtual_infer_busy_s
                / (virtual_makespan_s * config.inference_workers as f64),
        }
    } else {
        WorkerUtilization::default()
    };
    let ingress_depth = QueueDepthStats::from_deltas(
        records
            .iter()
            .flat_map(|r| [(r.virtual_arrival_s, 1), (r.virtual_preproc_start_s, -1)])
            .collect(),
    );
    let stage_depth = QueueDepthStats::from_deltas(
        records
            .iter()
            .flat_map(|r| [(r.virtual_preproc_done_s, 1), (r.virtual_infer_start_s, -1)])
            .collect(),
    );

    RuntimeReport {
        streams: reports,
        total_frames: records.len(),
        total_dropped: streams.iter().map(|s| s.dropped).sum(),
        preproc_workers: config.preproc_workers,
        inference_workers: config.inference_workers,
        ingress_queue,
        stage_queue,
        virtual_makespan_s,
        modeled_pipelined_fps,
        wall_elapsed,
        kernel_backend,
        stage_backends,
        preproc_reuse: reuse.name(),
        preproc_reuse_hits: reuse_counts.iter().map(|c| c.0).sum(),
        preproc_reuse_misses: reuse_counts.iter().map(|c| c.1).sum(),
        precision,
        batching,
        breakdown,
        utilization,
        ingress_depth,
        stage_depth,
        telemetry: None,
        records,
    }
}
