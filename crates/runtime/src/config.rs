//! Runtime configuration: worker pools, queue sizing and policies.

use hgpcn_pcn::{Precision, StageBackends};
use hgpcn_system::PreprocReuse;
use hgpcn_telemetry::TelemetryMode;

use crate::RuntimeError;

/// How the scheduler interleaves frames from multiple streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Visit streams in a fixed cycle, one frame per turn.
    #[default]
    RoundRobin,
    /// Smooth weighted round-robin: streams are visited in proportion
    /// to their [`StreamSpec::weight`](crate::StreamSpec::weight).
    WeightedFair,
}

/// What the admission thread does when the ingress queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block admission until a worker frees a slot (lossless).
    #[default]
    Block,
    /// Evict the oldest queued frame to make room (bounded latency,
    /// lossy). The eviction is charged to the evicted frame's stream.
    DropOldest,
}

/// What virtual arrival times frames carry.
///
/// The runtime executes on real threads but its latency accounting runs
/// on the *modeled* clock (the workspace's deterministic cost models),
/// so "arrival" is a virtual-time notion:
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Frames arrive at their sensor timestamps — sojourn times include
    /// the wait for data, and achieved FPS is capped by the sensor rate.
    #[default]
    Sensor,
    /// All frames are ready at t=0 (a backlogged source) — achieved FPS
    /// measures pipeline *capacity*, the number the analytical
    /// `RealtimeReport::pipelined_fps` bounds.
    Backlogged,
}

/// Configuration of a [`Runtime`](crate::Runtime).
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeConfig {
    /// Workers in the pre-processing stage pool.
    pub preproc_workers: usize,
    /// Workers in the inference stage pool.
    pub inference_workers: usize,
    /// Capacity of each inter-stage frame queue.
    pub queue_capacity: usize,
    /// Multi-stream interleaving policy.
    pub admission: AdmissionPolicy,
    /// Ingress-queue overflow policy.
    pub backpressure: BackpressurePolicy,
    /// Virtual arrival-time model.
    pub arrival: ArrivalModel,
    /// Points each frame is down-sampled to before inference.
    pub target_points: usize,
    /// Base seed; per-frame seeds derive from it via
    /// [`frame_seed`](crate::frame_seed).
    pub seed: u64,
    /// Largest micro-batch an inference worker may coalesce from the
    /// stage queue. `1` (the default) keeps the legacy serial execution;
    /// `>= 2` routes frames through the SoA batched path
    /// ([`InferenceEngine::run_batch`](hgpcn_system::InferenceEngine::run_batch)),
    /// which produces bit-identical per-frame results with one weight
    /// traversal per layer for the whole batch.
    pub max_batch: usize,
    /// Deadline awareness of the coalescer: the modeled virtual-time
    /// budget (seconds) a micro-batch may occupy the inference engine.
    /// Workers cap each batch at `batch_deadline_s / est` frames, where
    /// `est` is their running estimate of per-frame modeled inference
    /// latency — so under a tight deadline a backlogged queue degrades
    /// to smaller batches instead of head-of-line blocking the oldest
    /// frame. `f64::INFINITY` (the default) disables the cap.
    pub batch_deadline_s: f64,
    /// Default arithmetic precision of the inference stage
    /// ([`Precision::F32`] unless overridden). Individual streams can
    /// override it via
    /// [`StreamSpec::precision`](crate::StreamSpec::precision), so one
    /// fleet can mix accuracy-tier (f32) and throughput-tier (int8)
    /// tenants; inference workers partition micro-batches by effective
    /// precision. [`Precision::Int8`] requires the served network to
    /// carry calibrated quantized weights
    /// ([`PointNet::with_int8`](hgpcn_pcn::PointNet::with_int8)) —
    /// serving an unquantized network at int8 fails on the first frame.
    pub precision: Precision,
    /// Whether the run records frame-lifecycle telemetry (trace +
    /// metrics registry into [`RuntimeReport::telemetry`](crate::RuntimeReport::telemetry)).
    /// The default, [`TelemetryMode::Auto`], defers to the
    /// `HGPCN_TELEMETRY` environment variable; when resolved off the
    /// recorders are no-op sinks and the hot path never touches them.
    pub telemetry: TelemetryMode,
    /// Preproc-stage backend selection (sampling / gather / FP
    /// interpolation) for every worker of the run. `None` (the default)
    /// defers to the served network's pinned
    /// [`stage_backends`](hgpcn_pcn::PointNet::stage_backends) — which
    /// itself defaults to the process-wide `HGPCN_STAGE_*` resolution.
    /// Every backend is bit-identical to its scalar anchor, so this knob
    /// moves host speed only, never results or modeled latencies; the
    /// resolved selection is reported in
    /// [`RuntimeReport::stage_backends`](crate::RuntimeReport::stage_backends).
    pub stage_backends: Option<StageBackends>,
    /// Preprocessing state policy for every stream of the run. `None`
    /// (the default) defers to the process-wide `HGPCN_PREPROC_REUSE`
    /// resolution ([`hgpcn_system::reuse::active`]). With
    /// [`PreprocReuse::On`] each stream owns a
    /// [`StreamPreprocContext`](hgpcn_system::StreamPreprocContext):
    /// scratch buffers persist across its frames and consecutive frames
    /// sharing a root AABB take the temporal-coherence warm path, priced
    /// as a §V-A delta pass. Results are **bit-identical** either way;
    /// what changes is host speed and the *modeled* preprocessing cost
    /// of warm frames. The resolved policy is reported in
    /// [`RuntimeReport::preproc_reuse`](crate::RuntimeReport::preproc_reuse).
    pub preproc_reuse: Option<PreprocReuse>,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            preproc_workers: 1,
            inference_workers: 1,
            queue_capacity: 8,
            admission: AdmissionPolicy::RoundRobin,
            backpressure: BackpressurePolicy::Block,
            arrival: ArrivalModel::Sensor,
            target_points: 1024,
            seed: 0x5EED,
            max_batch: 1,
            batch_deadline_s: f64::INFINITY,
            precision: Precision::F32,
            telemetry: TelemetryMode::Auto,
            stage_backends: None,
            preproc_reuse: None,
        }
    }
}

impl RuntimeConfig {
    /// Sets the pre-processing worker-pool size.
    pub fn preproc_workers(mut self, n: usize) -> Self {
        self.preproc_workers = n;
        self
    }

    /// Sets the inference worker-pool size.
    pub fn inference_workers(mut self, n: usize) -> Self {
        self.inference_workers = n;
        self
    }

    /// Sets the capacity of the inter-stage queues.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the multi-stream admission policy.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Sets the ingress backpressure policy.
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Sets the virtual arrival model.
    pub fn arrival(mut self, arrival: ArrivalModel) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the down-sampling target.
    pub fn target_points(mut self, n: usize) -> Self {
        self.target_points = n;
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the largest micro-batch the inference stage may coalesce.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Sets the virtual-time budget one micro-batch may occupy the
    /// inference engine (deadline-aware batch sizing).
    pub fn batch_deadline_s(mut self, s: f64) -> Self {
        self.batch_deadline_s = s;
        self
    }

    /// Sets the default inference precision (streams may override it
    /// per [`StreamSpec`](crate::StreamSpec)).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets whether the run records telemetry.
    pub fn telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Pins the preproc-stage backends for every worker of the run
    /// (bit-identical to the anchors — a host-speed knob only).
    pub fn stage_backends(mut self, stages: StageBackends) -> Self {
        self.stage_backends = Some(stages);
        self
    }

    /// Pins the preprocessing state policy for the run, overriding the
    /// process-wide `HGPCN_PREPROC_REUSE` resolution (bit-identical
    /// results either way — a modeled-cost and host-speed knob).
    pub fn preproc_reuse(mut self, policy: PreprocReuse) -> Self {
        self.preproc_reuse = Some(policy);
        self
    }

    /// Checks the configuration is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when a pool is empty, the
    /// queue capacity is zero, or the sampling target is zero.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if self.preproc_workers == 0 {
            return Err(RuntimeError::InvalidConfig(
                "preproc_workers must be >= 1".into(),
            ));
        }
        if self.inference_workers == 0 {
            return Err(RuntimeError::InvalidConfig(
                "inference_workers must be >= 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(RuntimeError::InvalidConfig(
                "queue_capacity must be >= 1".into(),
            ));
        }
        if self.target_points == 0 {
            return Err(RuntimeError::InvalidConfig(
                "target_points must be >= 1".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(RuntimeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        if self.batch_deadline_s.is_nan() || self.batch_deadline_s <= 0.0 {
            return Err(RuntimeError::InvalidConfig(
                "batch_deadline_s must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(RuntimeConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_set_fields() {
        let cfg = RuntimeConfig::default()
            .preproc_workers(3)
            .inference_workers(2)
            .queue_capacity(5)
            .admission(AdmissionPolicy::WeightedFair)
            .backpressure(BackpressurePolicy::DropOldest)
            .arrival(ArrivalModel::Backlogged)
            .target_points(256)
            .seed(42)
            .max_batch(8)
            .batch_deadline_s(0.25)
            .precision(Precision::Int8)
            .telemetry(TelemetryMode::On)
            .stage_backends(StageBackends::anchor())
            .preproc_reuse(PreprocReuse::Off);
        assert_eq!(cfg.preproc_workers, 3);
        assert_eq!(cfg.inference_workers, 2);
        assert_eq!(cfg.queue_capacity, 5);
        assert_eq!(cfg.admission, AdmissionPolicy::WeightedFair);
        assert_eq!(cfg.backpressure, BackpressurePolicy::DropOldest);
        assert_eq!(cfg.arrival, ArrivalModel::Backlogged);
        assert_eq!(cfg.target_points, 256);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.max_batch, 8);
        assert_eq!(cfg.batch_deadline_s, 0.25);
        assert_eq!(cfg.precision, Precision::Int8);
        assert_eq!(cfg.telemetry, TelemetryMode::On);
        assert_eq!(cfg.stage_backends, Some(StageBackends::anchor()));
        assert_eq!(cfg.preproc_reuse, Some(PreprocReuse::Off));
        assert_eq!(RuntimeConfig::default().stage_backends, None);
        assert_eq!(RuntimeConfig::default().preproc_reuse, None);
        assert_eq!(RuntimeConfig::default().precision, Precision::F32);
        assert_eq!(RuntimeConfig::default().telemetry, TelemetryMode::Auto);
    }

    #[test]
    fn zero_pools_rejected() {
        assert!(RuntimeConfig::default()
            .preproc_workers(0)
            .validate()
            .is_err());
        assert!(RuntimeConfig::default()
            .inference_workers(0)
            .validate()
            .is_err());
        assert!(RuntimeConfig::default()
            .queue_capacity(0)
            .validate()
            .is_err());
        assert!(RuntimeConfig::default()
            .target_points(0)
            .validate()
            .is_err());
        assert!(RuntimeConfig::default().max_batch(0).validate().is_err());
        assert!(RuntimeConfig::default()
            .batch_deadline_s(0.0)
            .validate()
            .is_err());
        assert!(RuntimeConfig::default()
            .batch_deadline_s(f64::NAN)
            .validate()
            .is_err());
        assert!(RuntimeConfig::default().max_batch(16).validate().is_ok());
    }
}
