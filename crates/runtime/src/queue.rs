//! Bounded MPMC frame queues connecting the runtime's pipeline stages.
//!
//! Built on `Mutex` + `Condvar` only (the workspace is `forbid(unsafe)`
//! and has no external dependencies). Both ends are multi-producer and
//! multi-consumer: the admission thread and every worker of a stage can
//! push/pop concurrently. A queue can be *closed*, after which pushes
//! fail fast and pops drain the remaining items before returning `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A fixed-capacity multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    dropped: u64,
    pushed: u64,
    popped: u64,
    high_water: usize,
}

/// Outcome of a push against a closed queue: the item is handed back.
#[derive(Debug)]
pub struct Closed<T>(pub T);

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                dropped: 0,
                pushed: 0,
                popped: 0,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Pushes `item`, blocking while the queue is full (the `Block`
    /// backpressure policy). Fails only if the queue is closed.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] carrying the item back if the queue was closed
    /// before space became available.
    pub fn push_blocking(&self, item: T) -> Result<(), Closed<T>> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if state.closed {
                return Err(Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.pushed += 1;
                state.high_water = state.high_water.max(state.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue mutex poisoned");
        }
    }

    /// Pushes `item`, evicting the oldest queued item when full (the
    /// `DropOldest` backpressure policy). Returns the evicted item, if
    /// any, so the caller can account the drop to its stream.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] carrying the item back if the queue is closed.
    pub fn push_drop_oldest(&self, item: T) -> Result<Option<T>, Closed<T>> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        if state.closed {
            return Err(Closed(item));
        }
        let evicted = if state.items.len() >= self.capacity {
            state.dropped += 1;
            state.items.pop_front()
        } else {
            None
        };
        state.items.push_back(item);
        state.pushed += 1;
        state.high_water = state.high_water.max(state.items.len());
        self.not_empty.notify_one();
        Ok(evicted)
    }

    /// Pops the oldest item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained. The second tuple
    /// element is a dequeue ticket: a counter strictly increasing in pop
    /// order, letting consumers prove FIFO admission ordering.
    pub fn pop(&self) -> Option<(T, u64)> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                let ticket = state.popped;
                state.popped += 1;
                self.not_full.notify_one();
                return Some((item, ticket));
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue mutex poisoned");
        }
    }

    /// Pops the oldest item if one is queued, without blocking — the
    /// micro-batch coalescing primitive: a worker that already holds one
    /// frame drains whatever else is ready, but never waits for more.
    /// Returns `None` when the queue is momentarily empty *or* closed.
    pub fn try_pop(&self) -> Option<(T, u64)> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        let item = state.items.pop_front()?;
        let ticket = state.popped;
        state.popped += 1;
        self.not_full.notify_one();
        Some((item, ticket))
    }

    /// Closes the queue: pending and future pushes fail, pops drain the
    /// backlog then return `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the queue *and* discards the backlog — the abort path.
    /// Blocked consumers return `None` immediately instead of draining
    /// work whose results would be thrown away.
    pub fn close_and_clear(&self) {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        state.closed = true;
        state.items.clear();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue mutex poisoned").items.len()
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue mutex poisoned").high_water
    }

    /// Items evicted by [`BoundedQueue::push_drop_oldest`].
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("queue mutex poisoned").dropped
    }

    /// Items ever accepted (excluding evictions).
    pub fn pushed(&self) -> u64 {
        self.state.lock().expect("queue mutex poisoned").pushed
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::thread;

    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push_blocking(i).unwrap();
        }
        for want in 0..4 {
            let (got, ticket) = q.pop().unwrap();
            assert_eq!(got, want);
            assert_eq!(ticket, want as u64);
        }
        assert_eq!(q.high_water(), 4);
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let q = BoundedQueue::new(2);
        assert!(q.push_drop_oldest(1).unwrap().is_none());
        assert!(q.push_drop_oldest(2).unwrap().is_none());
        assert_eq!(q.push_drop_oldest(3).unwrap(), Some(1));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pop().unwrap().0, 2);
        assert_eq!(q.pop().unwrap().0, 3);
    }

    #[test]
    fn close_and_clear_discards_backlog() {
        let q = BoundedQueue::new(4);
        q.push_blocking(1).unwrap();
        q.push_blocking(2).unwrap();
        q.close_and_clear();
        assert!(q.pop().is_none(), "backlog must be discarded, not drained");
        assert_eq!(q.depth(), 0);
        assert!(q.push_blocking(3).is_err());
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(2);
        assert!(q.try_pop().is_none(), "empty queue yields nothing");
        q.push_blocking(5).unwrap();
        let (item, ticket) = q.try_pop().unwrap();
        assert_eq!(item, 5);
        assert_eq!(ticket, 0);
        q.close();
        assert!(q.try_pop().is_none(), "closed+empty yields nothing");
    }

    #[test]
    fn try_pop_shares_tickets_with_pop() {
        let q = BoundedQueue::new(4);
        q.push_blocking(1).unwrap();
        q.push_blocking(2).unwrap();
        assert_eq!(q.pop().unwrap(), (1, 0));
        assert_eq!(q.try_pop().unwrap(), (2, 1));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push_blocking(7).unwrap();
        q.close();
        assert!(q.push_blocking(8).is_err());
        assert_eq!(q.pop().unwrap().0, 7);
        assert!(q.pop().is_none());
    }

    #[test]
    fn blocking_push_resumes_after_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_blocking(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(2).is_ok())
        };
        // The producer is blocked until we make room.
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop().unwrap().0, 1);
        assert!(producer.join().unwrap());
        assert_eq!(q.pop().unwrap().0, 2);
    }

    #[test]
    fn mpmc_conserves_items() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some((item, _)) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        q.push_blocking(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<i32> = (0..100).chain(1000..1100).collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
