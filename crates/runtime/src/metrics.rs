//! Per-stream and aggregate serving metrics.
//!
//! All latencies here are **modeled** latencies from the workspace's
//! deterministic cost models, accumulated on a virtual clock by the real
//! worker threads; wall-clock numbers are reported separately. The
//! aggregate [`RuntimeReport`] cross-validates the runtime's achieved
//! virtual throughput against the analytical
//! [`RealtimeReport::pipelined_fps`](hgpcn_system::realtime::RealtimeReport).

use std::fmt;
use std::time::Duration;

use hgpcn_memsim::Latency;
use hgpcn_pcn::StageBackends;
use hgpcn_system::realtime::RealtimeReport;
use hgpcn_system::E2eReport;

/// The resolved preproc-stage backend names of a run — one entry per
/// dispatch seam of the frame pipeline (sampling scoreboard scan,
/// neighbor top-K selection, FP interpolation). Like
/// [`RuntimeReport::kernel_backend`] this is host-speed provenance, not
/// a result qualifier: every backend is bit-identical to its scalar
/// anchor, so two runs differing only here produce identical logits,
/// modeled latencies and report timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageBackendNames {
    /// OIS scoreboard-scan backend (`hgpcn_sampling::SamplingKernel::name`).
    pub sampling: &'static str,
    /// Neighbor top-K selection backend (`hgpcn_gather::GatherKernel::name`).
    pub gather: &'static str,
    /// FP-interpolation backend (`hgpcn_pcn::InterpolateKernel::name`).
    pub interpolate: &'static str,
}

impl StageBackendNames {
    /// `(stage, backend)` pairs in pipeline order — the iteration the
    /// `/metrics` info series and the report renderers share.
    pub fn as_pairs(&self) -> [(&'static str, &'static str); 3] {
        [
            ("sampling", self.sampling),
            ("gather", self.gather),
            ("interpolate", self.interpolate),
        ]
    }
}

impl From<StageBackends> for StageBackendNames {
    fn from(stages: StageBackends) -> StageBackendNames {
        StageBackendNames {
            sampling: stages.sampling.name(),
            gather: stages.gather.name(),
            interpolate: stages.interpolate.name(),
        }
    }
}

impl fmt::Display for StageBackendNames {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sampling={} gather={} interpolate={}",
            self.sampling, self.gather, self.interpolate
        )
    }
}

/// One frame's complete journey, recorded by the worker that finished it.
#[derive(Clone, Debug)]
pub struct FrameRecord {
    /// Owning stream.
    pub stream_id: usize,
    /// Per-stream sequence number.
    pub frame_index: usize,
    /// Sensor timestamp of the frame.
    pub sensor_ts_s: f64,
    /// Virtual arrival time (sensor timestamp, or 0 when backlogged).
    pub virtual_arrival_s: f64,
    /// Virtual time the pre-processing stage began serving the frame
    /// (`>= virtual_arrival_s`; the gap is ingress queue wait).
    pub virtual_preproc_start_s: f64,
    /// Virtual time the pre-processing stage finished the frame.
    pub virtual_preproc_done_s: f64,
    /// Virtual time the inference stage began serving the frame
    /// (`>= virtual_preproc_done_s`; the gap is stage queue wait).
    pub virtual_infer_start_s: f64,
    /// Virtual time the inference stage finished the frame.
    pub virtual_done_s: f64,
    /// Modeled per-phase latencies and op counts.
    pub modeled: E2eReport,
    /// Ingress-queue dequeue ticket (proves FIFO admission order).
    pub preproc_ticket: u64,
    /// Stage-queue dequeue ticket.
    pub inference_ticket: u64,
    /// Host wall-clock seconds the pre-processing engine call took.
    pub wall_preproc_s: f64,
    /// Host wall-clock seconds of this frame's share of its inference
    /// engine call (a micro-batch's wall time is split evenly).
    pub wall_infer_s: f64,
    /// Wall-clock instant (relative to run start) the frame completed.
    pub wall_done: Duration,
    /// Whether preprocessing took the temporal-coherence warm path
    /// (reused the stream context's cached grid). Always `false` when
    /// the run's reuse policy is `off`. Host-speed/modeled-cost
    /// provenance only: warm and cold frames carry bit-identical
    /// sampled clouds and logits.
    pub preproc_reused: bool,
}

/// Percentile summary of a latency population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: Latency,
    /// 95th percentile.
    pub p95: Latency,
    /// 99th percentile.
    pub p99: Latency,
    /// Worst observation.
    pub max: Latency,
    /// Arithmetic mean.
    pub mean: Latency,
}

impl LatencySummary {
    /// Summarizes `samples` (need not be sorted). Returns zeros for an
    /// empty population. Non-finite samples (degenerate cost-model
    /// arithmetic, e.g. `∞ × 0`) are excluded from the population
    /// instead of panicking mid-report.
    pub fn from_samples(samples: &[Latency]) -> LatencySummary {
        let mut ns: Vec<f64> = samples
            .iter()
            .map(|l| l.ns())
            .filter(|n| n.is_finite())
            .collect();
        if ns.is_empty() {
            let z = Latency::ZERO;
            return LatencySummary {
                p50: z,
                p95: z,
                p99: z,
                max: z,
                mean: z,
            };
        }
        // total_cmp, not partial_cmp().expect("finite latencies"): even
        // if the filter above ever changes, sorting must not be the
        // thing that aborts a finished run's report.
        ns.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| -> Latency {
            let idx = ((ns.len() - 1) as f64 * q).round() as usize;
            Latency::from_ns(ns[idx])
        };
        LatencySummary {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: Latency::from_ns(*ns.last().expect("nonempty")),
            mean: Latency::from_ns(ns.iter().sum::<f64>() / ns.len() as f64),
        }
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {} | p95 {} | p99 {} | max {} | mean {}",
            self.p50, self.p95, self.p99, self.max, self.mean
        )
    }
}

/// Serving metrics for one stream.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Stream index in the submitted list.
    pub stream_id: usize,
    /// The runtime replica serving this stream: always `0` on a single
    /// [`ServingRuntime`](crate::ServingRuntime); the owning shard's
    /// index on a [`ShardedRuntime`](crate::ShardedRuntime) (a stream
    /// is pinned to exactly one shard for its lifetime).
    pub shard: usize,
    /// Stream name from its [`StreamSpec`](crate::StreamSpec).
    pub name: String,
    /// Frames the source produced.
    pub offered: usize,
    /// Frames completing inference.
    pub completed: usize,
    /// Frames evicted by `DropOldest` backpressure.
    pub dropped: usize,
    /// The sensor's nominal generation rate.
    pub sensor_fps: f64,
    /// The arithmetic precision this stream's inference ran at
    /// (`hgpcn_pcn::Precision::name`: `f32` or `int8`) — the effective
    /// tier after applying the stream's override to the runtime
    /// default.
    pub precision: &'static str,
    /// The preproc-stage backends that served this stream — always the
    /// session-wide selection (stage backends are resolved once per
    /// run, never per stream), repeated here so a per-stream consumer
    /// need not join against the run report.
    pub stage_backends: StageBackendNames,
    /// The preprocessing state policy that served this stream
    /// (`hgpcn_system::PreprocReuse::name`: `off` or `on`) — the
    /// session-wide resolution, repeated per stream like
    /// `stage_backends`. Identity provenance, not a result qualifier:
    /// both policies produce bit-identical outputs.
    pub preproc_reuse: &'static str,
    /// Frames of this stream whose preprocessing took the
    /// temporal-coherence warm path. Zero under the `off` policy.
    pub preproc_reuse_hits: u64,
    /// Frames that rebuilt cold (first frame, root-AABB drift). With
    /// reuse `on`, hits staying at zero while frames flow means the
    /// warm path never engages — the silent-fallback diagnostic.
    pub preproc_reuse_misses: u64,
    /// Completed frames per virtual second, over this stream's span of
    /// virtual time (arrival of first frame to completion of last).
    pub achieved_fps: f64,
    /// Modeled service time per frame (preprocess + inference).
    pub service: LatencySummary,
    /// Modeled sojourn per frame (virtual completion − virtual arrival;
    /// includes pipeline queueing).
    pub sojourn: LatencySummary,
    /// Where this stream's sojourn went: queue wait vs service, per
    /// stage (the components telescope back to `sojourn`).
    pub breakdown: StageBreakdown,
}

impl StreamReport {
    /// Fraction of offered frames that completed.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.completed as f64 / self.offered as f64
    }
}

/// Occupancy statistics of one inter-stage queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Deepest observed occupancy.
    pub high_water: usize,
    /// Frames evicted (drop-oldest only; zero under `Block`).
    pub dropped: u64,
}

/// Virtual-time queue-depth reconstruction for one inter-stage queue.
///
/// [`QueueStats::high_water`] is the *live* occupancy the real queue
/// observed, which depends on host thread interleaving. This is the
/// **modeled** occupancy on the virtual clock, reconstructed post-hoc
/// from frame records (a frame occupies the queue from the moment it
/// becomes available until its next stage starts serving it) — fully
/// deterministic, and timestamped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueDepthStats {
    /// Deepest modeled occupancy.
    pub high_water: usize,
    /// Virtual time at which the high-water mark was first reached.
    pub high_water_vts_s: f64,
    /// `(virtual_time, depth)` after every occupancy change, in time
    /// order — the queue-depth time series.
    pub samples: Vec<(f64, usize)>,
}

impl QueueDepthStats {
    /// Reconstructs the series from `(virtual_time, +1 | -1)` occupancy
    /// deltas. At equal timestamps departures apply before arrivals, so
    /// a frame handed straight to an idle worker never counts as queued.
    pub fn from_deltas(mut deltas: Vec<(f64, i64)>) -> QueueDepthStats {
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut depth = 0i64;
        let mut stats = QueueDepthStats::default();
        for (t, d) in deltas {
            depth += d;
            let depth_u = depth.max(0) as usize;
            stats.samples.push((t, depth_u));
            if depth_u > stats.high_water {
                stats.high_water = depth_u;
                stats.high_water_vts_s = t;
            }
        }
        stats
    }
}

/// Per-stage latency attribution for a set of frames: where each
/// frame's sojourn went, split into queue wait and service per stage.
///
/// Built from [`FrameRecord`]s for every run (telemetry on or off).
/// The four components telescope exactly:
/// `preproc_wait + preproc_service + infer_wait + infer_service =
/// sojourn` per frame, so the component means sum to the sojourn mean
/// (asserted in the runtime's telemetry tests).
#[derive(Clone, Debug, PartialEq)]
pub struct StageBreakdown {
    /// Frames attributed.
    pub frames: usize,
    /// Ingress queue wait (`virtual_preproc_start − virtual_arrival`).
    pub preproc_wait: LatencySummary,
    /// Pre-processing service (`virtual_preproc_done − virtual_preproc_start`).
    pub preproc_service: LatencySummary,
    /// Stage queue wait (`virtual_infer_start − virtual_preproc_done`).
    pub infer_wait: LatencySummary,
    /// Inference service (`virtual_done − virtual_infer_start`).
    pub infer_service: LatencySummary,
    /// Total virtual seconds of pre-processing service.
    pub virtual_preproc_busy_s: f64,
    /// Total virtual seconds of inference service.
    pub virtual_infer_busy_s: f64,
    /// Total virtual seconds spent waiting in queues (both stages).
    pub virtual_wait_s: f64,
    /// Total host wall seconds of pre-processing engine calls.
    pub wall_preproc_s: f64,
    /// Total host wall seconds of inference engine calls.
    pub wall_infer_s: f64,
}

impl StageBreakdown {
    /// Attributes every record in `records`.
    pub fn from_records<'a, I>(records: I) -> StageBreakdown
    where
        I: IntoIterator<Item = &'a FrameRecord>,
    {
        let mut pre_wait = Vec::new();
        let mut pre_service = Vec::new();
        let mut inf_wait = Vec::new();
        let mut inf_service = Vec::new();
        let mut wall_preproc_s = 0.0;
        let mut wall_infer_s = 0.0;
        for r in records {
            pre_wait.push(Latency::from_secs(
                r.virtual_preproc_start_s - r.virtual_arrival_s,
            ));
            pre_service.push(Latency::from_secs(
                r.virtual_preproc_done_s - r.virtual_preproc_start_s,
            ));
            inf_wait.push(Latency::from_secs(
                r.virtual_infer_start_s - r.virtual_preproc_done_s,
            ));
            inf_service.push(Latency::from_secs(
                r.virtual_done_s - r.virtual_infer_start_s,
            ));
            wall_preproc_s += r.wall_preproc_s;
            wall_infer_s += r.wall_infer_s;
        }
        let sum_s = |v: &[Latency]| v.iter().map(|l| l.secs()).sum::<f64>();
        StageBreakdown {
            frames: pre_wait.len(),
            virtual_preproc_busy_s: sum_s(&pre_service),
            virtual_infer_busy_s: sum_s(&inf_service),
            virtual_wait_s: sum_s(&pre_wait) + sum_s(&inf_wait),
            wall_preproc_s,
            wall_infer_s,
            preproc_wait: LatencySummary::from_samples(&pre_wait),
            preproc_service: LatencySummary::from_samples(&pre_service),
            infer_wait: LatencySummary::from_samples(&inf_wait),
            infer_service: LatencySummary::from_samples(&inf_service),
        }
    }

    /// Sum of the four component means — equals the sojourn mean of the
    /// same records, up to floating-point rounding.
    pub fn mean_sojourn(&self) -> Latency {
        Latency::from_ns(
            self.preproc_wait.mean.ns()
                + self.preproc_service.mean.ns()
                + self.infer_wait.mean.ns()
                + self.infer_service.mean.ns(),
        )
    }
}

impl fmt::Display for StageBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "preproc: wait {} | service {}",
            self.preproc_wait, self.preproc_service
        )?;
        write!(
            f,
            "infer:   wait {} | service {}",
            self.infer_wait, self.infer_service
        )
    }
}

/// Worker-pool busy fractions over the run's virtual makespan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerUtilization {
    /// Pre-processing pool: busy virtual time / (makespan × workers).
    pub preproc_busy: f64,
    /// Inference pool: busy virtual time / (makespan × workers).
    pub infer_busy: f64,
}

impl WorkerUtilization {
    /// Idle fraction of the pre-processing pool.
    pub fn preproc_idle(&self) -> f64 {
        (1.0 - self.preproc_busy).max(0.0)
    }

    /// Idle fraction of the inference pool.
    pub fn infer_idle(&self) -> f64 {
        (1.0 - self.infer_busy).max(0.0)
    }
}

/// The optional telemetry payload of a traced run: the merged frame
/// lifecycle trace and the populated metrics registry.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Merged, time-ordered lifecycle events
    /// ([`Trace::chrome_trace_json`](hgpcn_telemetry::Trace::chrome_trace_json)
    /// exports them for `chrome://tracing` / Perfetto).
    pub trace: hgpcn_telemetry::Trace,
    /// Counters, gauges and histograms
    /// ([`Registry::prometheus_text`](hgpcn_telemetry::Registry::prometheus_text)
    /// is the `/metrics` payload).
    pub metrics: hgpcn_telemetry::Registry,
}

/// Micro-batching behaviour of one run's inference stage.
///
/// Populated only when the run executed the SoA batched path
/// (`max_batch >= 2`); a legacy serial run reports zero `batches` and a
/// `mean_batch_size` of 1. Comparing a batched run's throughput against
/// an unbatched one is [`RuntimeReport::wall_speedup_over`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchingStats {
    /// Configured micro-batch ceiling.
    pub max_batch: usize,
    /// Micro-batches the inference pool executed.
    pub batches: usize,
    /// Largest micro-batch actually coalesced.
    pub largest_batch: usize,
    /// Mean frames per micro-batch (1.0 for a serial run).
    pub mean_batch_size: f64,
    /// Frames that shared a micro-batch with at least one other frame.
    pub coalesced_frames: usize,
}

impl BatchingStats {
    /// Summarizes the batch sizes one run produced.
    pub fn from_sizes(max_batch: usize, sizes: &[usize]) -> BatchingStats {
        let batches = sizes.len();
        let frames: usize = sizes.iter().sum();
        BatchingStats {
            max_batch,
            batches,
            largest_batch: sizes.iter().copied().max().unwrap_or(0),
            mean_batch_size: if batches == 0 {
                1.0
            } else {
                frames as f64 / batches as f64
            },
            coalesced_frames: sizes.iter().filter(|&&s| s > 1).sum(),
        }
    }
}

/// Aggregate outcome of one [`Runtime::run`](crate::Runtime::run).
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Per-stream metrics, in stream-id order.
    pub streams: Vec<StreamReport>,
    /// Frames completing inference across all streams.
    pub total_frames: usize,
    /// Frames dropped across all streams.
    pub total_dropped: usize,
    /// Pre-processing worker-pool size used.
    pub preproc_workers: usize,
    /// Inference worker-pool size used.
    pub inference_workers: usize,
    /// Ingress (admission → preprocess) queue stats.
    pub ingress_queue: QueueStats,
    /// Stage (preprocess → inference) queue stats.
    pub stage_queue: QueueStats,
    /// Virtual time from the earliest arrival to the last completion.
    pub virtual_makespan_s: f64,
    /// Achieved throughput on the virtual clock:
    /// `total_frames / virtual_makespan_s`.
    pub modeled_pipelined_fps: f64,
    /// Wall-clock duration of the run (host execution speed — unrelated
    /// to the modeled hardware's throughput).
    pub wall_elapsed: Duration,
    /// The matmul kernel backend the served network dispatched to
    /// (`hgpcn_pcn::LinearKernel::name`) — results are bit-identical
    /// across backends, so this is host-speed provenance, not a result
    /// qualifier.
    pub kernel_backend: &'static str,
    /// The preproc-stage backends every worker of the run dispatched to
    /// (the config override if set, else the served network's pinned
    /// selection). Host-speed provenance like `kernel_backend`.
    pub stage_backends: StageBackendNames,
    /// The preprocessing state policy of the run
    /// (`hgpcn_system::PreprocReuse::name`: `off` or `on`). Like
    /// `kernel_backend` this is provenance, not a result qualifier —
    /// warm and cold preprocessing are bit-identical.
    pub preproc_reuse: &'static str,
    /// Frames across all streams whose preprocessing took the
    /// temporal-coherence warm path.
    pub preproc_reuse_hits: u64,
    /// Frames across all streams that rebuilt cold.
    pub preproc_reuse_misses: u64,
    /// The fleet's inference precision: `f32` or `int8` when every
    /// stream ran one tier, `mixed` when stream overrides differed.
    /// Unlike `kernel_backend` this **is** a result qualifier — int8
    /// logits are quantized approximations of the f32 reference
    /// (per-stream tiers are in [`StreamReport::precision`]).
    pub precision: &'static str,
    /// Micro-batching behaviour of the inference stage.
    pub batching: BatchingStats,
    /// Aggregate per-stage attribution across all streams.
    pub breakdown: StageBreakdown,
    /// Worker-pool busy fractions over the virtual makespan.
    pub utilization: WorkerUtilization,
    /// Modeled ingress-queue occupancy time series (virtual clock).
    pub ingress_depth: QueueDepthStats,
    /// Modeled stage-queue occupancy time series (virtual clock).
    pub stage_depth: QueueDepthStats,
    /// Trace and metrics of the run, when telemetry was enabled
    /// ([`RuntimeConfig::telemetry`](crate::RuntimeConfig::telemetry));
    /// `None` for an untraced run.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Every completed frame's journey, sorted by `(stream, frame)`.
    pub records: Vec<FrameRecord>,
}

impl RuntimeReport {
    /// Host-side throughput (frames per wall-clock second).
    pub fn wall_fps(&self) -> f64 {
        self.total_frames as f64 / self.wall_elapsed.as_secs_f64().max(1e-12)
    }

    /// Batched-vs-unbatched throughput: this run's host throughput over
    /// `baseline`'s. Run the same fleet twice — once with `max_batch: 1`,
    /// once batched — and this is the single-machine speedup the SoA
    /// path delivers (per-frame modeled results are identical by
    /// construction, so only wall time differs).
    pub fn wall_speedup_over(&self, baseline: &RuntimeReport) -> f64 {
        self.wall_fps() / baseline.wall_fps().max(1e-12)
    }

    /// Fraction of preprocessed frames that took the warm path:
    /// `hits / (hits + misses)`, or 0.0 when nothing was preprocessed.
    /// With reuse `on` and temporally coherent streams this approaches
    /// `(n − streams) / n`; a value of 0.0 while frames flowed is the
    /// silent-fallback diagnostic (AABB drifting every frame).
    pub fn preproc_warm_ratio(&self) -> f64 {
        let total = self.preproc_reuse_hits + self.preproc_reuse_misses;
        if total == 0 {
            return 0.0;
        }
        self.preproc_reuse_hits as f64 / total as f64
    }

    /// Populates a metrics registry from this report: frame counters
    /// and achieved-FPS gauges per stream, run-level throughput and
    /// utilization gauges, and per-stage service / queue-wait / sojourn
    /// / queue-depth histograms. Everything here derives from the
    /// deterministic virtual timeline except the two `wall` gauges.
    ///
    /// This is what a traced run stores in
    /// [`TelemetrySnapshot::metrics`], and what the HTTP front end
    /// renders on `/metrics`
    /// ([`Registry::prometheus_text`](hgpcn_telemetry::Registry::prometheus_text)).
    pub fn build_metrics(&self) -> hgpcn_telemetry::Registry {
        let mut reg = hgpcn_telemetry::Registry::new();
        self.build_metrics_into(&mut reg, &[]);
        reg
    }

    /// [`RuntimeReport::build_metrics`] into an existing registry, with
    /// `extra` labels appended to every series — how a
    /// [`ShardedRuntime`](crate::ShardedRuntime) stacks one registry
    /// holding every shard's families under an `hgpcn_shard` label.
    /// With `extra = &[]` this emits exactly what `build_metrics` does.
    pub fn build_metrics_into(&self, reg: &mut hgpcn_telemetry::Registry, extra: &[(&str, &str)]) {
        self.build_scalar_metrics_into(reg, extra);
        self.build_histogram_metrics_into(reg, extra);
    }

    /// The counter and gauge half of [`RuntimeReport::build_metrics_into`].
    ///
    /// Split out so an aggregator can combine per-shard scalar series
    /// with histogram series merged through
    /// [`LogHistogram::merge`](hgpcn_telemetry::LogHistogram::merge)
    /// instead of re-recording samples.
    pub fn build_scalar_metrics_into(
        &self,
        reg: &mut hgpcn_telemetry::Registry,
        extra: &[(&str, &str)],
    ) {
        let with = label_extender(|labels| with_extra(labels, extra));
        for s in &self.streams {
            let labels = with(&[("stream", s.name.as_str())]);
            reg.counter_add(
                "hgpcn_frames_offered_total",
                "Frames offered by stream sources",
                &labels,
                s.offered as u64,
            );
            reg.counter_add(
                "hgpcn_frames_completed_total",
                "Frames completing inference",
                &labels,
                s.completed as u64,
            );
            reg.counter_add(
                "hgpcn_frames_dropped_total",
                "Frames evicted by backpressure",
                &labels,
                s.dropped as u64,
            );
            reg.gauge_set(
                "hgpcn_stream_achieved_fps",
                "Per-stream achieved virtual-clock throughput",
                &labels,
                s.achieved_fps,
            );
            reg.counter_add(
                "hgpcn_preproc_reuse_hits_total",
                "Frames preprocessed via the temporal-coherence warm path",
                &labels,
                s.preproc_reuse_hits,
            );
            reg.counter_add(
                "hgpcn_preproc_reuse_misses_total",
                "Frames preprocessed via a cold rebuild",
                &labels,
                s.preproc_reuse_misses,
            );
        }
        reg.gauge_set(
            "hgpcn_modeled_fps",
            "Achieved virtual-clock throughput of the run",
            &with(&[]),
            self.modeled_pipelined_fps,
        );
        reg.gauge_set(
            "hgpcn_wall_fps",
            "Host wall-clock throughput of the run",
            &with(&[]),
            self.wall_fps(),
        );
        reg.gauge_set(
            "hgpcn_virtual_makespan_seconds",
            "Virtual time from first arrival to last completion",
            &with(&[]),
            self.virtual_makespan_s,
        );
        for (stage, busy) in [
            ("preproc", self.utilization.preproc_busy),
            ("infer", self.utilization.infer_busy),
        ] {
            reg.gauge_set(
                "hgpcn_worker_busy_ratio",
                "Worker-pool busy fraction over the virtual makespan",
                &with(&[("stage", stage)]),
                busy,
            );
        }
        if self.batching.batches > 0 {
            reg.counter_add(
                "hgpcn_micro_batches_total",
                "Micro-batches the inference pool executed",
                &with(&[]),
                self.batching.batches as u64,
            );
            reg.gauge_set(
                "hgpcn_mean_batch_size",
                "Mean frames per micro-batch",
                &with(&[]),
                self.batching.mean_batch_size,
            );
        }
        // Info-style identity series (value always 1; the labels carry
        // the payload): which backend served each preproc stage.
        for (stage, backend) in self.stage_backends.as_pairs() {
            reg.gauge_set(
                "hgpcn_stage_backend_info",
                "Preproc-stage backend identity (info-style; value is always 1)",
                &with(&[("stage", stage), ("backend", backend)]),
                1.0,
            );
        }
        reg.gauge_set(
            "hgpcn_preproc_reuse_info",
            "Preprocessing state policy identity (info-style; value is always 1)",
            &with(&[("policy", self.preproc_reuse)]),
            1.0,
        );
    }

    /// The histogram half of [`RuntimeReport::build_metrics_into`]:
    /// per-stage service, queue wait, sojourn and queue-depth series
    /// recorded from this report's frame records.
    pub fn build_histogram_metrics_into(
        &self,
        reg: &mut hgpcn_telemetry::Registry,
        extra: &[(&str, &str)],
    ) {
        let with = label_extender(|labels| with_extra(labels, extra));
        for r in &self.records {
            reg.histogram_record(
                "hgpcn_stage_service_seconds",
                "Modeled per-stage service time",
                &with(&[("stage", "preproc")]),
                r.virtual_preproc_done_s - r.virtual_preproc_start_s,
            );
            reg.histogram_record(
                "hgpcn_stage_service_seconds",
                "Modeled per-stage service time",
                &with(&[("stage", "infer")]),
                r.virtual_done_s - r.virtual_infer_start_s,
            );
            reg.histogram_record(
                "hgpcn_queue_wait_seconds",
                "Modeled time queued between stages",
                &with(&[("queue", "ingress")]),
                r.virtual_preproc_start_s - r.virtual_arrival_s,
            );
            reg.histogram_record(
                "hgpcn_queue_wait_seconds",
                "Modeled time queued between stages",
                &with(&[("queue", "stage")]),
                r.virtual_infer_start_s - r.virtual_preproc_done_s,
            );
            reg.histogram_record(
                "hgpcn_sojourn_seconds",
                "Modeled end-to-end frame sojourn",
                &with(&[]),
                r.virtual_done_s - r.virtual_arrival_s,
            );
        }
        for (queue, depth) in [
            ("ingress", &self.ingress_depth),
            ("stage", &self.stage_depth),
        ] {
            for &(_, d) in &depth.samples {
                reg.histogram_record(
                    "hgpcn_queue_depth",
                    "Modeled queue occupancy after each change",
                    &with(&[("queue", queue)]),
                    d as f64,
                );
            }
        }
    }

    /// Cross-validates this run against the analytical model.
    ///
    /// See [`CrossValidation`] for the tolerance rationale.
    pub fn validate_against(&self, analytical: &RealtimeReport) -> CrossValidation {
        CrossValidation {
            measured_fps: self.modeled_pipelined_fps,
            analytical_fps: analytical.pipelined_fps,
            tolerance: DEFAULT_VALIDATION_TOLERANCE,
        }
    }
}

/// `labels` with `extra` appended — the family's own labels always come
/// first so un-extended renderings stay byte-identical.
fn with_extra<'a>(
    labels: &[(&'a str, &'a str)],
    extra: &[(&'a str, &'a str)],
) -> Vec<(&'a str, &'a str)> {
    labels.iter().chain(extra.iter()).copied().collect()
}

/// Pins one label lifetime across a label-extending closure's call
/// sites (a bare closure would be inferred higher-ranked over the inner
/// `&str`s and fail to borrow-check).
fn label_extender<'a, F>(f: F) -> F
where
    F: Fn(&[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)>,
{
    f
}

/// Default relative tolerance for [`RuntimeReport::validate_against`].
///
/// The analytical `pipelined_fps` is `1 / max_t max(pre_t, inf_t)` — a
/// worst-frame bound — while the runtime measures `n / makespan`, which
/// reflects *mean* stage occupancy plus one pipeline fill. For a stream
/// of similar-sized frames the two agree closely; the mean-vs-max gap
/// and the `1/n` fill overhead bound the disagreement well inside ±25%
/// for the frame counts the experiments use (n ≥ 16). A measured value
/// below `1 − tolerance` indicates the executor lost overlap (stalled
/// queues); above `1 + tolerance`, that the analytical bound is loose
/// for the workload (high frame-to-frame variance).
pub const DEFAULT_VALIDATION_TOLERANCE: f64 = 0.25;

/// Comparison of measured (virtual-clock) vs analytical throughput.
#[derive(Clone, Copy, Debug)]
pub struct CrossValidation {
    /// The runtime's achieved virtual throughput.
    pub measured_fps: f64,
    /// The analytical two-stage bound.
    pub analytical_fps: f64,
    /// Relative tolerance for agreement.
    pub tolerance: f64,
}

impl CrossValidation {
    /// `measured / analytical`.
    pub fn ratio(&self) -> f64 {
        self.measured_fps / self.analytical_fps.max(1e-12)
    }

    /// Whether the two agree within the tolerance.
    pub fn agrees(&self) -> bool {
        (self.ratio() - 1.0).abs() <= self.tolerance
    }
}

impl fmt::Display for CrossValidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "measured {:.2} FPS vs analytical {:.2} FPS (ratio {:.3}, tolerance ±{:.0}%: {})",
            self.measured_fps,
            self.analytical_fps,
            self.ratio(),
            self.tolerance * 100.0,
            if self.agrees() { "agree" } else { "DISAGREE" },
        )
    }
}

impl fmt::Display for RuntimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RuntimeReport: {} frames ({} dropped) | {}+{} workers | kernel {} | stages {} | reuse {} ({} warm / {} cold) | precision {} | virtual makespan {:.3} s | {:.2} modeled FPS | wall {:.2?} ({:.1} frames/s host)",
            self.total_frames,
            self.total_dropped,
            self.preproc_workers,
            self.inference_workers,
            self.kernel_backend,
            self.stage_backends,
            self.preproc_reuse,
            self.preproc_reuse_hits,
            self.preproc_reuse_misses,
            self.precision,
            self.virtual_makespan_s,
            self.modeled_pipelined_fps,
            self.wall_elapsed,
            self.wall_fps(),
        )?;
        writeln!(
            f,
            "  queues: ingress high-water {} (dropped {}), stage high-water {} (dropped {})",
            self.ingress_queue.high_water,
            self.ingress_queue.dropped,
            self.stage_queue.high_water,
            self.stage_queue.dropped,
        )?;
        writeln!(
            f,
            "  modeled depth: ingress high-water {} @ {:.3} s, stage high-water {} @ {:.3} s",
            self.ingress_depth.high_water,
            self.ingress_depth.high_water_vts_s,
            self.stage_depth.high_water,
            self.stage_depth.high_water_vts_s,
        )?;
        writeln!(
            f,
            "  utilization: preproc {:.1}% busy / {:.1}% idle, infer {:.1}% busy / {:.1}% idle",
            self.utilization.preproc_busy * 100.0,
            self.utilization.preproc_idle() * 100.0,
            self.utilization.infer_busy * 100.0,
            self.utilization.infer_idle() * 100.0,
        )?;
        if self.batching.batches > 0 {
            writeln!(
                f,
                "  batching: {} micro-batches (max {}, largest {}, mean {:.2}), {} frames coalesced",
                self.batching.batches,
                self.batching.max_batch,
                self.batching.largest_batch,
                self.batching.mean_batch_size,
                self.batching.coalesced_frames,
            )?;
        }
        for s in &self.streams {
            writeln!(
                f,
                "  [{}] {} ({}): {}/{} frames (dropped {}), sensor {:.1} FPS, achieved {:.2} FPS",
                s.stream_id,
                s.name,
                s.precision,
                s.completed,
                s.offered,
                s.dropped,
                s.sensor_fps,
                s.achieved_fps,
            )?;
            writeln!(f, "      service: {}", s.service)?;
            writeln!(f, "      sojourn: {}", s.sojourn)?;
            writeln!(
                f,
                "      stages:  preproc wait {} / service {}, infer wait {} / service {}",
                s.breakdown.preproc_wait.mean,
                s.breakdown.preproc_service.mean,
                s.breakdown.infer_wait.mean,
                s.breakdown.infer_service.mean,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Latency {
        Latency::from_ms(v)
    }

    #[test]
    fn summary_percentiles_ordered() {
        let samples: Vec<Latency> = (1..=100).map(|i| ms(i as f64)).collect();
        let s = LatencySummary::from_samples(&samples);
        // Nearest-rank on 100 samples: idx = round(99 * q).
        assert_eq!(s.p50, ms(51.0));
        assert_eq!(s.p95, ms(95.0));
        assert_eq!(s.p99, ms(99.0));
        assert_eq!(s.max, ms(100.0));
        assert!((s.mean.ms() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.max, Latency::ZERO);
        assert_eq!(s.mean, Latency::ZERO);
    }

    #[test]
    fn summary_survives_nonfinite_samples() {
        // Regression: summarization used partial_cmp().expect("finite
        // latencies"), so a non-finite sample aborted the whole run's
        // report. (`Latency::from_ns` rejects NaN at construction, so ∞
        // — which it does admit — is the representative non-finite
        // input; the internal f64 path is additionally NaN-safe via the
        // filter + total_cmp.)
        let samples = vec![ms(1.0), Latency::from_ns(f64::INFINITY), ms(2.0)];
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.max, ms(2.0), "non-finite samples are excluded");
        assert_eq!(s.p50, ms(2.0));
        assert!((s.mean.ms() - 1.5).abs() < 1e-12);

        let all_bad = vec![Latency::from_ns(f64::INFINITY)];
        assert_eq!(
            LatencySummary::from_samples(&all_bad).max,
            Latency::ZERO,
            "an all-non-finite population degrades to the empty summary"
        );
    }

    #[test]
    fn queue_depth_reconstruction() {
        // Frames available at t=0,1,2; drained at t=1.5, 2.5, 3.5.
        let stats = QueueDepthStats::from_deltas(vec![
            (0.0, 1),
            (1.0, 1),
            (2.0, 1),
            (1.5, -1),
            (2.5, -1),
            (3.5, -1),
        ]);
        assert_eq!(stats.high_water, 2);
        assert_eq!(stats.high_water_vts_s, 1.0);
        assert_eq!(stats.samples.last(), Some(&(3.5, 0)));
    }

    #[test]
    fn queue_depth_ties_apply_departures_first() {
        // Arrival and departure at the same instant: the frame went
        // straight to an idle worker and never queued.
        let stats = QueueDepthStats::from_deltas(vec![(1.0, 1), (1.0, -1), (1.0, 1)]);
        assert_eq!(stats.high_water, 1);
    }

    fn record(arrival: f64, waits: [f64; 2], services: [f64; 2]) -> FrameRecord {
        use hgpcn_memsim::OpCounts;
        use hgpcn_system::PhaseReport;
        let phase = |s: f64| PhaseReport {
            latency: Latency::from_secs(s),
            counts: OpCounts::default(),
        };
        let pre_start = arrival + waits[0];
        let pre_done = pre_start + services[0];
        let inf_start = pre_done + waits[1];
        FrameRecord {
            stream_id: 0,
            frame_index: 0,
            sensor_ts_s: arrival,
            virtual_arrival_s: arrival,
            virtual_preproc_start_s: pre_start,
            virtual_preproc_done_s: pre_done,
            virtual_infer_start_s: inf_start,
            virtual_done_s: inf_start + services[1],
            modeled: hgpcn_system::E2eReport {
                preprocess: phase(services[0]),
                inference: phase(services[1]),
            },
            preproc_ticket: 0,
            inference_ticket: 0,
            wall_preproc_s: 0.0,
            wall_infer_s: 0.0,
            wall_done: Duration::ZERO,
            preproc_reused: false,
        }
    }

    #[test]
    fn breakdown_telescopes_to_sojourn() {
        let records = vec![
            record(0.0, [0.1, 0.2], [0.3, 0.4]),
            record(1.0, [0.0, 0.5], [0.25, 0.25]),
        ];
        let b = StageBreakdown::from_records(&records);
        assert_eq!(b.frames, 2);
        let sojourns: Vec<Latency> = records
            .iter()
            .map(|r| Latency::from_secs(r.virtual_done_s - r.virtual_arrival_s))
            .collect();
        let sojourn = LatencySummary::from_samples(&sojourns);
        assert!(
            (b.mean_sojourn().secs() - sojourn.mean.secs()).abs() < 1e-9,
            "component means must telescope to the sojourn mean"
        );
        assert!((b.virtual_preproc_busy_s - 0.55).abs() < 1e-12);
        assert!((b.virtual_infer_busy_s - 0.65).abs() < 1e-12);
        assert!((b.virtual_wait_s - 0.8).abs() < 1e-12);
    }

    #[test]
    fn batching_stats_from_sizes() {
        let s = BatchingStats::from_sizes(8, &[8, 8, 3, 1]);
        assert_eq!(s.batches, 4);
        assert_eq!(s.largest_batch, 8);
        assert_eq!(s.coalesced_frames, 19);
        assert!((s.mean_batch_size - 5.0).abs() < 1e-12);

        let serial = BatchingStats::from_sizes(1, &[]);
        assert_eq!(serial.batches, 0);
        assert_eq!(serial.largest_batch, 0);
        assert_eq!(serial.coalesced_frames, 0);
        assert_eq!(serial.mean_batch_size, 1.0);
    }

    #[test]
    fn cross_validation_tolerance() {
        let v = CrossValidation {
            measured_fps: 110.0,
            analytical_fps: 100.0,
            tolerance: 0.25,
        };
        assert!(v.agrees());
        assert!((v.ratio() - 1.1).abs() < 1e-12);
        let bad = CrossValidation {
            measured_fps: 50.0,
            analytical_fps: 100.0,
            tolerance: 0.25,
        };
        assert!(!bad.agrees());
    }
}
