//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), assertion
//! macros, the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! range and tuple strategies, `prop::collection::vec` and
//! `prop::bool::ANY`.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the assertion message and the generation seed), and case generation
//! is seeded deterministically from each test's module path and name.

#![forbid(unsafe_code)]

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The deterministic generator used to produce test cases.
    pub type TestRng = StdRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases, overridable through the `PROPTEST_CASES`
        /// environment variable — the same knob upstream proptest
        /// honours, used by the scheduled CI run to sweep the kernel
        /// and quantization equivalence properties much deeper than a
        /// per-PR run can afford. (Tests pinning an explicit
        /// `with_cases(..)` are unaffected.)
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another.
        Reject(String),
        /// An assertion failed — the property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (from `prop_assume!`).
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }

        /// A failure (from `prop_assert!` and friends).
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Result type the body of each generated case evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test generator, seeded from the test's name.
    pub fn new_rng(test_path: &str) -> TestRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible lengths for a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(len: usize) -> SizeRange {
            SizeRange(len..len + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            SizeRange(range)
        }
    }

    /// The strategy returned by [`vec`](fn@self::vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` (a fixed
    /// `usize` or a `Range<usize>`) and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// The `prop::` namespace used by call sites (`prop::collection::vec`,
/// `prop::bool::ANY`).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a property test needs, importable in one line.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)+);
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Rejects the current case (without failing the test) unless `cond`
/// holds; the runner draws a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::new_rng(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(20).max(1_000);
                while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} accepted of {} wanted)",
                        accepted,
                        cfg.cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {} of {} failed: {}\n(no shrinking in the offline compat shim)",
                                accepted + 1,
                                cfg.cases,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn mapped_strategy_applies(v in (0u8..10).prop_map(|x| x as u32 * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 20, "v was {}", v);
        }

        #[test]
        fn vec_respects_size(xs in prop::collection::vec((0u64..5, prop::bool::ANY), 1..8)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for (n, _flag) in xs {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
