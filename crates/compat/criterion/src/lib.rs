//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the surface the workspace benches use: groups, benchmark
//! ids, throughput annotation, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical analysis it runs a short warmup plus `sample_size` timed
//! iterations and prints a one-line wall-clock mean per benchmark, so
//! `cargo bench` finishes quickly and `--no-run` compiles identically.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for call sites that want to defeat constant folding.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            "",
            &id.into_benchmark_id(),
            DEFAULT_SAMPLE_SIZE,
            None,
            routine,
        );
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.sample_size,
            self.throughput,
            routine,
        );
        self
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id, self.sample_size, self.throughput, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Times the routine it is handed.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warmup pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let iters = bencher.iters.max(1);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (mean_ns / 1e9))
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("bench: {label:<60} mean {:>12}{rate}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (name, Some(p)) if name.is_empty() => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both
/// string labels and explicit ids.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Groups benchmark functions under one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 100).to_string(), "build/100");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        assert_eq!("plain".into_benchmark_id().to_string(), "plain");
    }

    #[test]
    fn bench_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert!(runs >= 4, "warmup + samples should have run, got {runs}");
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}
