//! Offline, API-compatible subset of the `rand` crate.
//!
//! Implements exactly the surface the workspace uses: seedable
//! deterministic generators (`rngs::StdRng`), uniform sampling over
//! ranges (`Rng::gen_range`) and Bernoulli draws (`Rng::gen_bool`).
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic per seed, which is the only
//! property workspace code relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample one value of `T` from a generator.
pub trait SampleRange<T> {
    /// Draws a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a `lo..hi` / `lo..=hi` interval.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough
/// that `gen_range(0.0..0.3)` unifies the literal's type with the
/// calling context, exactly as the real crate does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty, $unit:ident);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let v = lo + (hi - lo) * $unit(rng.next_u64());
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

float_sample_uniform!(f32, unit_f32; f64, unit_f64);

/// The deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `rand::rngs::StdRng` algorithm — sequences
    /// differ — but seed-deterministic, which is all callers rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: usize = rng.gen_range(0..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
