//! `minihttp` — a dependency-free HTTP/1.1 + JSON layer.
//!
//! The build environment has no crates.io access, so the serving front
//! end cannot pull `hyper`/`serde_json`. This crate is the in-tree
//! substitute, in the same spirit as the `rand`/`proptest`/`criterion`
//! shims next door: the *smallest* std-only implementation that serves
//! the workspace's needs, not a general web framework. Unlike its
//! compat siblings it mirrors no specific crates.io API — there is no
//! single de-facto std-only HTTP crate to be drop-in-compatible with —
//! so the API is its own, kept deliberately tiny:
//!
//! * [`json`]: a JSON tree ([`json::Json`]), a strict recursive-descent
//!   parser with a nesting-depth cap ([`json::parse`], grown from
//!   `tools/minijson.rs`), and a deterministic serializer
//!   (`Display`; `BTreeMap` objects render in key order).
//! * [`http`]: a bounded, thread-per-connection HTTP/1.1 server
//!   ([`http::Server`]) with keep-alive and graceful stop, plus the
//!   blocking client ([`http::request`]) the tests and the load smoke
//!   use.
//!
//! Everything here is synchronous and bounded: request heads and bodies
//! have explicit size limits, malformed input is answered with a 4xx
//! (never a panic or a hang), and all output is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod json;
