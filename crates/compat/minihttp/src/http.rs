//! A bounded, thread-per-connection HTTP/1.1 server and a blocking
//! client, both std-only.
//!
//! Scope: exactly what a loopback JSON-RPC front end needs. `GET`/`POST`
//! with `Content-Length` bodies, keep-alive, explicit size limits and
//! graceful stop. Not supported (answered with a clean 4xx/5xx, never a
//! hang): chunked transfer encoding, upgrades, TLS, pipelining beyond
//! serial keep-alive.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Size limits a [`Server`] enforces per request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (431 beyond).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` (413 beyond).
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout; a stalled peer is dropped
    /// instead of pinning its thread forever.
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 * 1024,
            // Generous enough for large point clouds as JSON, small
            // enough to bound one connection's memory.
            max_body_bytes: 16 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string (after `?`), empty if absent.
    pub query: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON response with an explicit status.
    pub fn json_status(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response with an explicit status.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            _ => "",
        }
    }
}

/// What went wrong reading one request off a connection.
enum ReadOutcome {
    Ok(Request),
    /// Peer closed cleanly between requests — end the keep-alive loop.
    Closed,
    /// Protocol violation; respond with this and close.
    Reject(Response),
}

fn read_request(reader: &mut BufReader<TcpStream>, limits: &Limits) -> ReadOutcome {
    // --- Head: request line + headers, bounded. ---
    let mut head = Vec::new();
    loop {
        let mut line = Vec::new();
        // read_until returns 0 only at EOF.
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Reject(Response::text(400, "truncated request head\n"))
                };
            }
            Ok(_) => {}
            Err(_) => {
                return if head.is_empty() {
                    ReadOutcome::Closed // read timeout between requests
                } else {
                    ReadOutcome::Reject(Response::text(408, "timed out reading request\n"))
                };
            }
        }
        if head.len() + line.len() > limits.max_head_bytes {
            return ReadOutcome::Reject(Response::text(431, "request head too large\n"));
        }
        let blank = line == b"\r\n" || line == b"\n";
        head.extend_from_slice(&line);
        if blank && head.len() > line.len() {
            break; // end of headers
        }
        if blank {
            // Leading blank line(s) before the request line are
            // tolerated (RFC 9112 §2.2); reset and keep reading.
            head.clear();
        }
    }

    let head = match std::str::from_utf8(&head) {
        Ok(s) => s,
        Err(_) => return ReadOutcome::Reject(Response::text(400, "non-UTF-8 request head\n")),
    };
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return ReadOutcome::Reject(Response::text(400, "malformed request line\n")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ReadOutcome::Reject(Response::text(400, "unsupported HTTP version\n"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
            None => return ReadOutcome::Reject(Response::text(400, "malformed header line\n")),
        }
    }

    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query: query.to_string(),
        headers,
        body: Vec::new(),
    };

    // --- Body: Content-Length only. ---
    if request.header("transfer-encoding").is_some() {
        return ReadOutcome::Reject(Response::text(501, "chunked bodies not supported\n"));
    }
    let content_length = match request.header("content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return ReadOutcome::Reject(Response::text(400, "bad content-length\n")),
        },
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return ReadOutcome::Reject(Response::text(413, "request body too large\n"));
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        // EOF or timeout mid-body: the declared length never arrived.
        return ReadOutcome::Reject(Response::text(400, "truncated request body\n"));
    }
    request.body = body;
    ReadOutcome::Ok(request)
}

fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

fn serve_connection<H>(stream: TcpStream, handler: &H, limits: &Limits, stopping: &AtomicBool)
where
    H: Fn(&Request) -> Response,
{
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        match read_request(&mut reader, limits) {
            ReadOutcome::Ok(request) => {
                let response = handler(&request);
                let close = stopping.load(Ordering::Acquire)
                    || request
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                if write_response(&mut stream, &response, close).is_err() || close {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Reject(response) => {
                let _ = write_response(&mut stream, &response, true);
                return;
            }
        }
    }
}

/// A running HTTP server; dropping it (or calling
/// [`ServerHandle::stop`]) shuts the listener down.
pub struct ServerHandle {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to
    /// port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. In-flight
    /// connection threads finish their current response and close
    /// (keep-alive is not honoured once stopping).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stopping.store(true, Ordering::Release);
        // Unblock accept() with a wake-up connection; the loop checks
        // the flag before serving it.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// serves every request through `handler`, one thread per
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<H>(
        addr: impl ToSocketAddrs,
        limits: Limits,
        handler: H,
    ) -> std::io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let accept_stopping = Arc::clone(&stopping);
        let handler = Arc::new(handler);
        let accept_thread = thread::Builder::new()
            .name("minihttp-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stopping.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = Arc::clone(&handler);
                    let stopping = Arc::clone(&accept_stopping);
                    let _ = thread::Builder::new()
                        .name("minihttp-conn".to_string())
                        .spawn(move || {
                            serve_connection(stream, handler.as_ref(), &limits, &stopping);
                        });
                }
            })
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            stopping,
            accept_thread: Some(accept_thread),
        })
    }
}

/// A parsed client-side response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Performs one blocking HTTP/1.1 request (`connection: close`) and
/// reads the full response — the std-only client the tests and the load
/// smoke are built on.
///
/// # Errors
///
/// Propagates socket errors; malformed responses surface as
/// `InvalidData`.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Write);
    read_client_response(stream)
}

fn invalid(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn read_client_response(stream: TcpStream) -> std::io::Result<ClientResponse> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("truncated response head"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = Some(value.parse().map_err(|_| invalid("bad content-length"))?);
        }
        headers.push((name, value));
    }
    let body = match content_length {
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> ServerHandle {
        Server::bind("127.0.0.1:0", Limits::default(), |req: &Request| {
            Response::json(format!(
                "{{\"method\":\"{}\",\"path\":\"{}\",\"len\":{}}}",
                req.method,
                req.path,
                req.body.len()
            ))
        })
        .expect("bind loopback")
    }

    #[test]
    fn round_trip_get_and_post() {
        let server = echo_server();
        let get = request(server.addr(), "GET", "/health", b"").unwrap();
        assert_eq!(get.status, 200);
        assert!(get.body_text().contains("\"method\":\"GET\""));
        let post = request(server.addr(), "POST", "/rpc", b"hello").unwrap();
        assert!(post.body_text().contains("\"len\":5"));
        server.stop();
    }

    #[test]
    fn truncated_body_is_a_400_not_a_hang() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /rpc HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly-a-little")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let resp = read_client_response(stream).unwrap();
        assert_eq!(resp.status, 400);
        server.stop();
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let server = Server::bind(
            "127.0.0.1:0",
            Limits {
                max_body_bytes: 64,
                ..Limits::default()
            },
            |_req: &Request| Response::json("{}"),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /rpc HTTP/1.1\r\ncontent-length: 65\r\n\r\n")
            .unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let resp = read_client_response(stream).unwrap();
        assert_eq!(resp.status, 413);
        server.stop();
    }

    #[test]
    fn garbage_request_line_is_400() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"\x00\x01garbage\r\n\r\n").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let resp = read_client_response(stream).unwrap();
        assert_eq!(resp.status, 400);
        server.stop();
    }

    #[test]
    fn keep_alive_serves_sequential_requests() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for i in 0..3 {
            stream
                .write_all(b"GET /ping HTTP/1.1\r\nhost: x\r\n\r\n")
                .unwrap();
            // Read one full response off the shared connection.
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("200"), "request {i}: got {line:?}");
            let mut len = 0usize;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                if h.trim_end().is_empty() {
                    break;
                }
                if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().unwrap();
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
        }
        server.stop();
    }
}
