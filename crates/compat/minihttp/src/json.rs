//! JSON tree, strict parser, deterministic serializer.
//!
//! Grown from the repository tools' `minijson.rs` parser with the
//! hardening a network-facing layer needs: a nesting-depth cap (a
//! `[[[[…` bomb fails with [`ParseError`] instead of overflowing the
//! stack), strict number validation, and a serializer (`Display`) whose
//! output is deterministic — objects are `BTreeMap`s, so two equal
//! trees render byte-identically.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth [`parse`] accepts. Deep enough for any sane
/// payload, shallow enough that the recursive parser cannot be driven
/// to stack overflow by hostile input.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps traversal and render order
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a dotted path like `"result.status"`.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            match cur {
                Json::Obj(map) => cur = map.get(key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The number at `path`, if present.
    pub fn num(&self, path: &str) -> Option<f64> {
        match self.path(path)? {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number at `path` as a `usize`, if present, non-negative and
    /// integral.
    pub fn usize_at(&self, path: &str) -> Option<usize> {
        let v = self.num(path)?;
        (v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64).then_some(v as usize)
    }

    /// The string at `path`, if present.
    pub fn str_at(&self, path: &str) -> Option<&str> {
        match self.path(path)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean at `path`, if present.
    pub fn bool_at(&self, path: &str) -> Option<bool> {
        match self.path(path)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array at `path`, if present.
    pub fn arr(&self, path: &str) -> Option<&[Json]> {
        match self.path(path)? {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_fmt(format_args!("{c}"))?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact, deterministic rendering (no whitespace; object keys in
    /// `BTreeMap` order). Non-finite numbers render as `null` — JSON
    /// has no representation for them, and a serving layer must never
    /// emit unparseable output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Why a parse failed (byte offset + reason).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Static reason.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError {
            pos: self.pos,
            what,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy the raw byte run (UTF-8 passes through intact).
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Parses `text` as one complete JSON document.
///
/// # Errors
///
/// [`ParseError`] on any syntax violation, trailing data, non-finite
/// numbers, or nesting deeper than [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let j =
            parse(r#"{"a": {"b": 1.5, "c": [1, 2]}, "d": -3e2, "s": "x\ny", "t": true}"#).unwrap();
        assert_eq!(j.num("a.b"), Some(1.5));
        assert_eq!(j.num("d"), Some(-300.0));
        assert_eq!(j.str_at("s"), Some("x\ny"));
        assert_eq!(j.bool_at("t"), Some(true));
        assert_eq!(j.arr("a.c").map(<[Json]>::len), Some(2));
        assert_eq!(j.usize_at("a.b"), None, "1.5 is not integral");
        assert_eq!(j.num("a.missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
        assert!(parse("").is_err());
        assert!(parse("+-").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers are rejected");
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_crash() {
        let bomb = "[".repeat(100_000);
        assert_eq!(parse(&bomb).unwrap_err().what, "nesting too deep");
    }

    #[test]
    fn roundtrips_deterministically() {
        let j = Json::obj([
            ("b", Json::from(2.5)),
            ("a", Json::from("he\"llo\n")),
            (
                "c",
                Json::Arr(vec![Json::Null, Json::from(true), Json::from(3usize)]),
            ),
        ]);
        let text = j.to_string();
        assert_eq!(text, r#"{"a":"he\"llo\n","b":2.5,"c":[null,true,3]}"#);
        assert_eq!(parse(&text).unwrap(), j);
        assert_eq!(parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn nonfinite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn control_chars_escape_to_unicode() {
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }
}
