use hgpcn_memsim::{Latency, OpCounts};

use crate::{LayerShape, MlpSpec};

/// Outcome of running one layer (or MLP) on the array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayerRun {
    /// Total array cycles, including per-tile pipeline fills.
    pub cycles: u64,
    /// Operation tally (MACs plus weight/activation traffic).
    pub counts: OpCounts,
}

/// A weight-stationary systolic array of `rows × cols` processing elements.
///
/// A layer `in → out` is tiled as `ceil(in/rows) × ceil(out/cols)` weight
/// tiles; for each tile the point batch streams through, costing
/// `points + rows + cols` cycles (stream + fill), and the tile's weights
/// are loaded once.
///
/// # Examples
///
/// ```
/// use hgpcn_dla::{LayerShape, SystolicArray};
///
/// let array = SystolicArray::paper_16x16();
/// let run = array.layer(LayerShape::new(64, 128), 1024);
/// assert_eq!(run.counts.macs, 1024 * 64 * 128);
/// assert!(run.cycles > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystolicArray {
    /// PE rows (input-feature dimension).
    pub rows: usize,
    /// PE columns (output-feature dimension).
    pub cols: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
}

impl SystolicArray {
    /// The evaluation configuration shared by HgPCN, PointACC and Mesorasi
    /// (§VII-A): a 16×16 array. Clocked at 200 MHz like the rest of the
    /// FPGA prototype.
    pub fn paper_16x16() -> SystolicArray {
        SystolicArray {
            rows: 16,
            cols: 16,
            clock_mhz: 200.0,
        }
    }

    /// Nanoseconds per cycle.
    #[inline]
    pub fn cycle_ns(&self) -> f64 {
        1e3 / self.clock_mhz
    }

    /// Runs one shared-MLP layer over a batch of `points` inputs.
    pub fn layer(&self, shape: LayerShape, points: usize) -> LayerRun {
        let row_tiles = shape.in_features.div_ceil(self.rows) as u64;
        let col_tiles = shape.out_features.div_ceil(self.cols) as u64;
        let tiles = row_tiles * col_tiles;
        let per_tile = points as u64 + self.rows as u64 + self.cols as u64;
        let cycles = tiles * per_tile;
        let weight_bytes = (shape.params() as u64) * 4;
        let act_bytes = (points as u64) * (shape.in_features + shape.out_features) as u64 * 4;
        let counts = OpCounts {
            macs: shape.macs(points),
            bytes_read: weight_bytes + act_bytes / 2,
            bytes_written: act_bytes / 2,
            mem_reads: tiles, // one weight-tile load per tile
            ..OpCounts::default()
        };
        LayerRun { cycles, counts }
    }

    /// Runs a whole MLP stack over a batch of `points` inputs.
    pub fn mlp(&self, spec: &MlpSpec, points: usize) -> LayerRun {
        let mut total = LayerRun::default();
        for &layer in spec.layers() {
            let run = self.layer(layer, points);
            total.cycles += run.cycles;
            total.counts += run.counts;
        }
        total
    }

    /// Converts array cycles to time.
    #[inline]
    pub fn latency(&self, run: &LayerRun) -> Latency {
        Latency::from_ns(run.cycles as f64 * self.cycle_ns())
    }

    /// Fraction of peak MACs actually used by a run (pipeline fills and
    /// ragged tiles cost utilization).
    pub fn utilization(&self, run: &LayerRun) -> f64 {
        let peak = run.cycles * (self.rows * self.cols) as u64;
        if peak == 0 {
            return 0.0;
        }
        run.counts.macs as f64 / peak as f64
    }
}

impl Default for SystolicArray {
    fn default() -> Self {
        SystolicArray::paper_16x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_math_for_exact_fit() {
        let a = SystolicArray::paper_16x16();
        // 16→16 layer on a 16x16 array: one tile.
        let run = a.layer(LayerShape::new(16, 16), 100);
        assert_eq!(run.cycles, 100 + 32);
        assert_eq!(run.counts.macs, 100 * 256);
    }

    #[test]
    fn ragged_layers_need_more_tiles() {
        let a = SystolicArray::paper_16x16();
        let run = a.layer(LayerShape::new(17, 16), 100);
        assert_eq!(run.cycles, 2 * (100 + 32));
    }

    #[test]
    fn mlp_sums_layers() {
        let a = SystolicArray::paper_16x16();
        let spec = MlpSpec::new(16, &[16, 16]);
        let mlp = a.mlp(&spec, 50);
        let single = a.layer(LayerShape::new(16, 16), 50);
        assert_eq!(mlp.cycles, 2 * single.cycles);
        assert_eq!(mlp.counts.macs, 2 * single.counts.macs);
    }

    #[test]
    fn utilization_improves_with_batch() {
        let a = SystolicArray::paper_16x16();
        let small = a.layer(LayerShape::new(16, 16), 8);
        let large = a.layer(LayerShape::new(16, 16), 4096);
        assert!(a.utilization(&large) > a.utilization(&small));
        assert!(a.utilization(&large) <= 1.0);
    }

    #[test]
    fn latency_scales_with_clock() {
        let fast = SystolicArray {
            clock_mhz: 400.0,
            ..SystolicArray::paper_16x16()
        };
        let slow = SystolicArray {
            clock_mhz: 100.0,
            ..SystolicArray::paper_16x16()
        };
        let shape = LayerShape::new(64, 64);
        let run_f = fast.layer(shape, 256);
        let run_s = slow.layer(shape, 256);
        assert_eq!(run_f.cycles, run_s.cycles);
        assert!(fast.latency(&run_f) < slow.latency(&run_s));
    }
}
