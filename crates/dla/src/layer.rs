use std::fmt;

/// One shared-MLP layer (a 1×1 convolution over points): `in_features →
/// out_features` applied independently to every point of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Input feature width.
    pub in_features: usize,
    /// Output feature width.
    pub out_features: usize,
}

impl LayerShape {
    /// Creates a layer shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize) -> LayerShape {
        assert!(
            in_features > 0 && out_features > 0,
            "layer dimensions must be positive"
        );
        LayerShape {
            in_features,
            out_features,
        }
    }

    /// Multiply-accumulates to apply this layer to `points` inputs.
    #[inline]
    pub fn macs(&self, points: usize) -> u64 {
        (points as u64) * (self.in_features as u64) * (self.out_features as u64)
    }

    /// Weight parameters (plus bias) of this layer.
    #[inline]
    pub fn params(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.in_features, self.out_features)
    }
}

/// A stack of shared-MLP layers (e.g. PointNet++'s `[64, 64, 128]` blocks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MlpSpec {
    layers: Vec<LayerShape>,
}

impl MlpSpec {
    /// Builds an MLP from an input width and the hidden/output widths,
    /// e.g. `MlpSpec::new(6, &[64, 64, 128])`.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or any width is zero.
    pub fn new(input_width: usize, widths: &[usize]) -> MlpSpec {
        assert!(!widths.is_empty(), "an MLP needs at least one layer");
        let mut layers = Vec::with_capacity(widths.len());
        let mut prev = input_width;
        for &w in widths {
            layers.push(LayerShape::new(prev, w));
            prev = w;
        }
        MlpSpec { layers }
    }

    /// The layer stack.
    #[inline]
    pub fn layers(&self) -> &[LayerShape] {
        &self.layers
    }

    /// Output feature width of the final layer.
    #[inline]
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("non-empty").out_features
    }

    /// Total MACs to run `points` inputs through the whole stack.
    pub fn macs(&self, points: usize) -> u64 {
        self.layers.iter().map(|l| l.macs(points)).sum()
    }

    /// Total parameters of the stack.
    pub fn params(&self) -> usize {
        self.layers.iter().map(LayerShape::params).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_and_params() {
        let l = LayerShape::new(3, 64);
        assert_eq!(l.macs(10), 10 * 3 * 64);
        assert_eq!(l.params(), 3 * 64 + 64);
        assert_eq!(l.to_string(), "3→64");
    }

    #[test]
    fn mlp_chains_widths() {
        let mlp = MlpSpec::new(6, &[64, 64, 128]);
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.layers()[0], LayerShape::new(6, 64));
        assert_eq!(mlp.layers()[2], LayerShape::new(64, 128));
        assert_eq!(mlp.output_width(), 128);
        assert_eq!(mlp.macs(1), (6 * 64 + 64 * 64 + 64 * 128) as u64);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = LayerShape::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_mlp_panics() {
        let _ = MlpSpec::new(3, &[]);
    }
}
