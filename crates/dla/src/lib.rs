//! The Feature Computation Unit: a commercial-DLA-style systolic array.
//!
//! The paper's Inference Engine pairs its custom Data Structuring Unit with
//! a commercially available DLA implementing "a classic systolic array
//! design" (§VI); the accelerator baselines (PointACC, Mesorasi) are
//! evaluated with the **same 16×16 systolic array** for feature computation
//! (§VII-A), so one shared model keeps the comparison fair — exactly the
//! paper's methodology.
//!
//! The model is a weight-stationary array: a layer's weight matrix is
//! tiled onto the PE grid, activations stream through, and each tile costs
//! its streaming rows plus the pipeline fill. [`SystolicArray::layer`]
//! returns cycles and [`hgpcn_memsim::OpCounts`] for one shared-MLP layer
//! applied to a batch of points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layer;
mod systolic;

pub use layer::{LayerShape, MlpSpec};
pub use systolic::{LayerRun, SystolicArray};
