//! Property tests for the systolic-array cycle model.

use proptest::prelude::*;

use hgpcn_dla::{LayerShape, MlpSpec, SystolicArray};

proptest! {
    /// MAC counts are exact: points x in x out, and an MLP run equals the
    /// sum of its layer runs.
    #[test]
    fn macs_and_composition(inputs in 1usize..512, w1 in 1usize..300, w2 in 1usize..300, points in 0usize..2000) {
        let array = SystolicArray::paper_16x16();
        let spec = MlpSpec::new(inputs, &[w1, w2]);
        let run = array.mlp(&spec, points);
        let l1 = array.layer(LayerShape::new(inputs, w1), points);
        let l2 = array.layer(LayerShape::new(w1, w2), points);
        prop_assert_eq!(run.cycles, l1.cycles + l2.cycles);
        prop_assert_eq!(run.counts.macs, (points * inputs * w1 + points * w1 * w2) as u64);
    }

    /// Cycles are monotone in every dimension and utilization never
    /// exceeds 1.
    #[test]
    fn cycles_monotone_and_utilization_bounded(inp in 1usize..256, out in 1usize..256, points in 1usize..2000) {
        let array = SystolicArray::paper_16x16();
        let base = array.layer(LayerShape::new(inp, out), points);
        let more_points = array.layer(LayerShape::new(inp, out), points + 1);
        let wider = array.layer(LayerShape::new(inp, out + 1), points);
        prop_assert!(more_points.cycles >= base.cycles);
        prop_assert!(wider.cycles >= base.cycles);
        let u = array.utilization(&base);
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    /// A bigger array never needs more cycles for the same layer.
    #[test]
    fn bigger_arrays_are_not_slower(inp in 1usize..200, out in 1usize..200, points in 1usize..1000) {
        let small = SystolicArray { rows: 8, cols: 8, clock_mhz: 200.0 };
        let big = SystolicArray { rows: 32, cols: 32, clock_mhz: 200.0 };
        let shape = LayerShape::new(inp, out);
        prop_assert!(big.layer(shape, points).cycles <= small.layer(shape, points).cycles);
    }
}
