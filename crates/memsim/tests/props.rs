//! Property tests for the memory/cost models.

use proptest::prelude::*;

use hgpcn_memsim::{DeviceProfile, Latency, OnChipMemory, OpCounts};

fn arb_counts() -> impl Strategy<Value = OpCounts> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
    )
        .prop_map(|(r, w, d, c, m)| OpCounts {
            mem_reads: r,
            mem_writes: w,
            bytes_read: r * 12,
            bytes_written: w * 12,
            distance_computations: d,
            comparisons: c,
            macs: m,
            ..OpCounts::default()
        })
}

proptest! {
    /// OpCounts addition is commutative and associative, and scaling
    /// distributes.
    #[test]
    fn counts_algebra(a in arb_counts(), b in arb_counts(), n in 0u64..100) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b).scaled(n), a.scaled(n) + b.scaled(n));
        prop_assert_eq!(a.scaled(1), a);
        prop_assert_eq!(a.scaled(0), OpCounts::default());
    }

    /// Device latency is monotone: more work never takes less time.
    #[test]
    fn latency_is_monotone(a in arb_counts(), extra in arb_counts()) {
        for dev in [
            DeviceProfile::xeon_w2255(),
            DeviceProfile::jetson_nx(),
            DeviceProfile::rtx_4060ti(),
            DeviceProfile::systolic_16x16(),
        ] {
            let base = dev.latency(&a);
            let more = dev.latency(&(a + extra));
            prop_assert!(more >= base, "{}: {} < {}", dev.name, more, base);
        }
    }

    /// Latency arithmetic: sums and scaling behave like numbers.
    #[test]
    fn latency_arithmetic(a_ns in 0.0f64..1e12, b_ns in 0.0f64..1e12, k in 1.0f64..100.0) {
        let a = Latency::from_ns(a_ns);
        let b = Latency::from_ns(b_ns);
        prop_assert!(((a + b).ns() - (a_ns + b_ns)).abs() < 1.0);
        prop_assert!(((a * k).ns() - a_ns * k).abs() < a_ns.max(1.0) * 1e-9);
        prop_assert_eq!(a.max(b), b.max(a));
        if a_ns > 0.0 && b_ns > 0.0 {
            prop_assert!((a.speedup_over(b) * b.speedup_over(a) - 1.0).abs() < 1e-9);
        }
    }

    /// On-chip memory: allocations and frees never corrupt accounting,
    /// and the peak is an upper bound on usage.
    #[test]
    fn onchip_accounting(ops in prop::collection::vec((0u64..1000, prop::bool::ANY), 1..50)) {
        let mut mem = OnChipMemory::new(10_000);
        let mut shadow: u64 = 0;
        for (bits, is_alloc) in ops {
            if is_alloc {
                if mem.allocate(bits).is_ok() {
                    shadow += bits;
                }
            } else {
                mem.free(bits);
                shadow = shadow.saturating_sub(bits);
            }
            prop_assert_eq!(mem.used_bits(), shadow);
            prop_assert!(mem.used_bits() <= mem.capacity_bits());
            prop_assert!(mem.peak_bits() >= mem.used_bits());
        }
    }
}
