use crate::{Latency, OpCounts};

/// A per-operation cost table for one device (or one hardware engine).
///
/// The paper compares HgPCN against an Intel Xeon W-2255, an Nvidia Jetson
/// Xavier NX, an RTX 4060 Ti, and the PointACC/Mesorasi accelerators. We
/// model each as a small set of documented per-operation costs and a
/// roofline combination rule ([`DeviceProfile::latency`]): memory time and
/// compute time overlap, so the modeled latency is their maximum plus a
/// fixed invocation overhead.
///
/// The constants are first-order estimates from public spec sheets (memory
/// bandwidth, core counts, clock rates). Absolute values are *not* the
/// point — the paper's figures are all ratios, and those are driven by the
/// operation counts the algorithms in this workspace actually perform.
///
/// # Examples
///
/// ```
/// use hgpcn_memsim::{DeviceProfile, OpCounts};
///
/// let cpu = DeviceProfile::xeon_w2255();
/// let counts = OpCounts { distance_computations: 1_000_000, ..OpCounts::default() };
/// assert!(cpu.latency(&counts).ns() > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Streaming cost per byte moved to/from host memory (ns).
    pub ns_per_byte: f64,
    /// Issue/serialization cost per memory access (ns), on top of bytes.
    pub ns_per_access: f64,
    /// Cost per Octree-Table row lookup (ns).
    pub ns_per_lookup: f64,
    /// Cost per 3-D distance computation (ns).
    pub ns_per_distance: f64,
    /// Cost per sort/rank comparison (ns).
    pub ns_per_comparison: f64,
    /// Cost per XOR+popcount voxel-distance evaluation (ns).
    pub ns_per_hamming: f64,
    /// Cost per multiply-accumulate (ns).
    pub ns_per_mac: f64,
    /// Compute parallelism divisor (independent lanes/modules).
    pub parallel_lanes: f64,
    /// Fixed per-invocation overhead: kernel launch, MMIO doorbell… (ns).
    pub overhead_ns: f64,
}

impl DeviceProfile {
    /// Intel Xeon W-2255 (the paper's host CPU): 10 cores @ 3.7 GHz, but
    /// pre-processing codes run single-threaded; ~20 GB/s effective stream
    /// bandwidth from one core.
    pub fn xeon_w2255() -> DeviceProfile {
        DeviceProfile {
            name: "Xeon W-2255",
            ns_per_byte: 0.05,
            ns_per_access: 0.3,
            // Octree-Table walks on the CPU are dependent pointer chases
            // over a multi-MB table: mostly L2/L3 hits with DRAM misses.
            ns_per_lookup: 15.0,
            ns_per_distance: 0.8,
            ns_per_comparison: 0.5,
            // Scoreboard/voxel scoring is branchless and SIMD-friendly
            // (AVX processes ~16 u32 lanes per cycle).
            ns_per_hamming: 0.1,
            ns_per_mac: 0.25,
            parallel_lanes: 1.0,
            overhead_ns: 0.0,
        }
    }

    /// Nvidia Jetson Xavier NX (the paper's edge GPU): 384 Volta cores and
    /// ~51 GB/s LPDDR4x on paper, but point-cloud kernels on it are
    /// latency-bound at these batch sizes — the effective per-operation
    /// costs below reflect measured-style efficiency on small unbatched
    /// layers and divergent neighbor searches, not peak TOPS.
    pub fn jetson_nx() -> DeviceProfile {
        DeviceProfile {
            name: "Jetson Xavier NX",
            ns_per_byte: 0.02,
            ns_per_access: 0.02,
            ns_per_lookup: 3.0,
            ns_per_distance: 16.0,
            ns_per_comparison: 2.0,
            ns_per_hamming: 2.0,
            ns_per_mac: 0.06,
            parallel_lanes: 1.0,
            overhead_ns: 20_000.0,
        }
    }

    /// Nvidia RTX 4060 Ti (the paper's desktop GPU): 288 GB/s GDDR6,
    /// ~22 TFLOPS fp32.
    pub fn rtx_4060ti() -> DeviceProfile {
        DeviceProfile {
            name: "RTX 4060 Ti",
            ns_per_byte: 0.0035,
            ns_per_access: 0.004,
            ns_per_lookup: 1.5,
            ns_per_distance: 0.0012,
            ns_per_comparison: 0.0025,
            ns_per_hamming: 0.002,
            ns_per_mac: 0.00009,
            parallel_lanes: 1.0,
            overhead_ns: 10_000.0,
        }
    }

    /// The HgPCN Down-sampling Unit on the Arria 10 (§V-B): 200 MHz, eight
    /// parallel Sampling Modules, one Octree-Table lookup per cycle per
    /// module, Hamming distances in a single XOR. Host memory is reached
    /// over the PAC's shared-memory link (~16 GB/s).
    pub fn hgpcn_downsampling_unit() -> DeviceProfile {
        DeviceProfile {
            name: "HgPCN Down-sampling Unit (FPGA)",
            ns_per_byte: 0.0625,
            ns_per_access: 0.5,
            ns_per_lookup: 5.0,
            ns_per_distance: 5.0,
            ns_per_comparison: 0.7, // bitonic-sorter stage, amortized per key
            ns_per_hamming: 5.0,
            ns_per_mac: 5.0,
            parallel_lanes: 8.0,
            overhead_ns: 2_000.0, // MMIO table transfer doorbell
        }
    }

    /// The HgPCN Data Structuring Unit on the Arria 10 (§VI): 200 MHz,
    /// six-stage pipeline, parallel octree neighbor-search walkers and a
    /// bitonic sorter for the final shell.
    pub fn hgpcn_dsu() -> DeviceProfile {
        DeviceProfile {
            name: "HgPCN Data Structuring Unit (FPGA)",
            ns_per_byte: 0.0625,
            ns_per_access: 0.5,
            ns_per_lookup: 5.0,
            ns_per_distance: 5.0,
            ns_per_comparison: 0.7,
            ns_per_hamming: 5.0,
            ns_per_mac: 5.0,
            parallel_lanes: 8.0,
            overhead_ns: 0.0,
        }
    }

    /// A 16×16 weight-stationary systolic array at 200 MHz — the Feature
    /// Computation Unit shared (per the paper's methodology) by HgPCN,
    /// PointACC and Mesorasi.
    pub fn systolic_16x16() -> DeviceProfile {
        DeviceProfile {
            name: "16x16 systolic array (FPGA)",
            ns_per_byte: 0.0625,
            ns_per_access: 0.5,
            ns_per_lookup: 5.0,
            ns_per_distance: 5.0,
            ns_per_comparison: 5.0,
            ns_per_mac: 5.0 / 256.0, // 256 MACs per 5 ns cycle
            ns_per_hamming: 5.0,
            parallel_lanes: 1.0,
            overhead_ns: 0.0,
        }
    }

    /// Models one invocation: memory and compute overlap (roofline), plus
    /// the fixed invocation overhead.
    pub fn latency(&self, counts: &OpCounts) -> Latency {
        let mem_ns = counts.bytes_moved() as f64 * self.ns_per_byte
            + counts.memory_accesses() as f64 * self.ns_per_access;
        let compute_ns = (counts.table_lookups as f64 * self.ns_per_lookup
            + counts.distance_computations as f64 * self.ns_per_distance
            + counts.comparisons as f64 * self.ns_per_comparison
            + counts.hamming_ops as f64 * self.ns_per_hamming
            + counts.macs as f64 * self.ns_per_mac)
            / self.parallel_lanes;
        Latency::from_ns(mem_ns.max(compute_ns) + self.overhead_ns)
    }

    /// Latency of a pure data transfer of `bytes` over this device's
    /// memory link.
    pub fn transfer(&self, bytes: u64) -> Latency {
        Latency::from_ns(bytes as f64 * self.ns_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_takes_max_of_phases() {
        let dev = DeviceProfile {
            name: "test",
            ns_per_byte: 1.0,
            ns_per_access: 0.0,
            ns_per_lookup: 0.0,
            ns_per_distance: 10.0,
            ns_per_comparison: 0.0,
            ns_per_hamming: 0.0,
            ns_per_mac: 0.0,
            parallel_lanes: 1.0,
            overhead_ns: 5.0,
        };
        // Memory-bound case: 100 bytes (100 ns) vs 1 distance (10 ns).
        let mem_bound = OpCounts {
            bytes_read: 100,
            distance_computations: 1,
            ..OpCounts::default()
        };
        assert_eq!(dev.latency(&mem_bound).ns(), 105.0);
        // Compute-bound case.
        let compute_bound = OpCounts {
            bytes_read: 10,
            distance_computations: 5,
            ..OpCounts::default()
        };
        assert_eq!(dev.latency(&compute_bound).ns(), 55.0);
    }

    #[test]
    fn lanes_divide_compute() {
        let mut dev = DeviceProfile::hgpcn_downsampling_unit();
        dev.overhead_ns = 0.0;
        let counts = OpCounts {
            table_lookups: 800,
            ..OpCounts::default()
        };
        let eight = dev.latency(&counts);
        dev.parallel_lanes = 1.0;
        let one = dev.latency(&counts);
        assert!((one.ns() / eight.ns() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn presets_have_distinct_names() {
        let names = [
            DeviceProfile::xeon_w2255().name,
            DeviceProfile::jetson_nx().name,
            DeviceProfile::rtx_4060ti().name,
            DeviceProfile::hgpcn_downsampling_unit().name,
            DeviceProfile::hgpcn_dsu().name,
            DeviceProfile::systolic_16x16().name,
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn gpu_macs_are_cheaper_than_cpu() {
        let counts = OpCounts {
            macs: 1_000_000_000,
            ..OpCounts::default()
        };
        let cpu = DeviceProfile::xeon_w2255().latency(&counts);
        let gpu = DeviceProfile::rtx_4060ti().latency(&counts);
        assert!(gpu < cpu);
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let dev = DeviceProfile::xeon_w2255();
        assert_eq!(dev.transfer(2000).ns(), 2000.0 * dev.ns_per_byte);
    }
}
