use std::fmt;
use std::ops::{Add, AddAssign};

/// Operation tally — the common currency every algorithm in the workspace
/// reports and every [`crate::DeviceProfile`] prices.
///
/// Counting conventions:
///
/// * `mem_reads`/`mem_writes` are **host-memory** accesses in units of
///   records (a point or a scalar); `bytes_read`/`bytes_written` carry the
///   actual sizes for bandwidth modeling.
/// * `table_lookups` are Octree-Table row reads (on-chip when the table
///   lives in FPGA BRAM, cache-resident on a CPU).
/// * `distance_computations` are 3-D (squared-)distance evaluations,
///   `comparisons` are sort/rank comparisons, `hamming_ops` are the XOR +
///   popcount voxel-distance evaluations of the Sampling Modules, and
///   `macs` are multiply-accumulates in feature computation.
///
/// # Examples
///
/// ```
/// use hgpcn_memsim::OpCounts;
///
/// let mut total = OpCounts::default();
/// total.mem_reads += 100;
/// total += OpCounts { distance_computations: 5, ..OpCounts::default() };
/// assert_eq!(total.mem_reads, 100);
/// assert_eq!(total.distance_computations, 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Host-memory record reads.
    pub mem_reads: u64,
    /// Host-memory record writes.
    pub mem_writes: u64,
    /// Bytes read from host memory.
    pub bytes_read: u64,
    /// Bytes written to host memory.
    pub bytes_written: u64,
    /// Octree-Table row lookups.
    pub table_lookups: u64,
    /// 3-D distance computations.
    pub distance_computations: u64,
    /// Sort / rank comparisons.
    pub comparisons: u64,
    /// XOR + popcount voxel-distance evaluations.
    pub hamming_ops: u64,
    /// Multiply-accumulate operations (feature computation).
    pub macs: u64,
}

impl OpCounts {
    /// A zeroed tally.
    #[inline]
    pub fn new() -> OpCounts {
        OpCounts::default()
    }

    /// Total host-memory accesses (reads + writes), the Fig. 9 metric.
    #[inline]
    pub fn memory_accesses(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }

    /// Total bytes moved to/from host memory.
    #[inline]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Total compute operations (everything that is not a memory access).
    #[inline]
    pub fn compute_ops(&self) -> u64 {
        self.table_lookups
            + self.distance_computations
            + self.comparisons
            + self.hamming_ops
            + self.macs
    }

    /// Scales every field by `n` — e.g. to extrapolate one central point's
    /// gather cost to all central points.
    pub fn scaled(&self, n: u64) -> OpCounts {
        OpCounts {
            mem_reads: self.mem_reads * n,
            mem_writes: self.mem_writes * n,
            bytes_read: self.bytes_read * n,
            bytes_written: self.bytes_written * n,
            table_lookups: self.table_lookups * n,
            distance_computations: self.distance_computations * n,
            comparisons: self.comparisons * n,
            hamming_ops: self.hamming_ops * n,
            macs: self.macs * n,
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            mem_reads: self.mem_reads + rhs.mem_reads,
            mem_writes: self.mem_writes + rhs.mem_writes,
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
            table_lookups: self.table_lookups + rhs.table_lookups,
            distance_computations: self.distance_computations + rhs.distance_computations,
            comparisons: self.comparisons + rhs.comparisons,
            hamming_ops: self.hamming_ops + rhs.hamming_ops,
            macs: self.macs + rhs.macs,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mem {}r/{}w, {} lookups, {} dist, {} cmp, {} xor, {} mac",
            self.mem_reads,
            self.mem_writes,
            self.table_lookups,
            self.distance_computations,
            self.comparisons,
            self.hamming_ops,
            self.macs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum_helpers() {
        let a = OpCounts {
            mem_reads: 3,
            mem_writes: 2,
            comparisons: 5,
            ..OpCounts::default()
        };
        let b = OpCounts {
            mem_reads: 1,
            macs: 7,
            ..OpCounts::default()
        };
        let c = a + b;
        assert_eq!(c.mem_reads, 4);
        assert_eq!(c.memory_accesses(), 6);
        assert_eq!(c.compute_ops(), 12);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let a = OpCounts {
            mem_reads: 2,
            distance_computations: 3,
            ..OpCounts::default()
        };
        let s = a.scaled(10);
        assert_eq!(s.mem_reads, 20);
        assert_eq!(s.distance_computations, 30);
    }

    #[test]
    fn display_mentions_counts() {
        let a = OpCounts {
            mem_reads: 9,
            ..OpCounts::default()
        };
        assert!(a.to_string().contains("9r"));
    }
}
