//! Memory and cost simulation — the stand-in for the paper's Intel PAC
//! (Xeon + Arria 10 FPGA) platform and its baseline devices.
//!
//! The paper's headline results are ratios of *operation counts* mapped
//! through device characteristics: host-memory accesses saved by OIS
//! (Fig. 9/10), on-chip FPGA memory saved (Fig. 13), and data-structuring
//! workload saved by VEG (Fig. 15). This crate provides the instruments:
//!
//! * [`OpCounts`] — the common currency every algorithm in this workspace
//!   reports: memory accesses, distance computations, comparisons, table
//!   lookups, MACs;
//! * [`HostMemory`] — a shared host-memory model with read/write counters,
//!   through which the samplers actually fetch their points;
//! * [`OnChipMemory`] — a capacity-checked FPGA BRAM model (65 Mb on the
//!   paper's Arria 10 GX 1150);
//! * [`DeviceProfile`] — documented per-operation cost tables for the Xeon
//!   W-2255, Jetson Xavier NX, RTX 4060 Ti, and the HgPCN FPGA engines;
//! * [`Latency`] — a pretty-printing nanosecond newtype.
//!
//! Latency here is a deterministic cost-model output, **not** wall-clock
//! time: the same counts always produce the same latency, which keeps every
//! figure reproducible. (Criterion benches separately measure real
//! wall-clock of the Rust implementations.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counts;
mod device;
mod host;
mod latency;
mod onchip;

pub use counts::OpCounts;
pub use device::DeviceProfile;
pub use host::HostMemory;
pub use latency::Latency;
pub use onchip::{CapacityError, OnChipMemory};

/// Bytes occupied by one point coordinate record (3 × f32).
pub const POINT_BYTES: usize = 12;

/// Bytes occupied by one scalar intermediate (f32 distance).
pub const SCALAR_BYTES: usize = 4;
