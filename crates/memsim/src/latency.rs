use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

/// A modeled latency in nanoseconds.
///
/// All latencies in this workspace are deterministic cost-model outputs, so
/// they are exact `f64` nanosecond values rather than measured `Duration`s.
///
/// # Examples
///
/// ```
/// use hgpcn_memsim::Latency;
///
/// let a = Latency::from_ms(2.0);
/// let b = Latency::from_us(500.0);
/// assert_eq!((a + b).to_string(), "2.500 ms");
/// assert_eq!(a.speedup_over(b), 0.25);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Latency(f64);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(0.0);

    /// From nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or NaN.
    #[inline]
    pub fn from_ns(ns: f64) -> Latency {
        assert!(ns >= 0.0, "latency must be non-negative, got {ns}");
        Latency(ns)
    }

    /// From microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Latency {
        Latency::from_ns(us * 1e3)
    }

    /// From milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Latency {
        Latency::from_ns(ms * 1e6)
    }

    /// From seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Latency {
        Latency::from_ns(s * 1e9)
    }

    /// Nanoseconds.
    #[inline]
    pub fn ns(self) -> f64 {
        self.0
    }

    /// Milliseconds.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0 / 1e6
    }

    /// Seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0 / 1e9
    }

    /// Throughput in frames per second if one frame takes `self`.
    ///
    /// Returns `f64::INFINITY` for zero latency.
    #[inline]
    pub fn fps(self) -> f64 {
        1e9 / self.0
    }

    /// How many times faster `self` is than `other` (`other / self`).
    ///
    /// `speedup_over > 1` means `self` is faster.
    #[inline]
    pub fn speedup_over(self, other: Latency) -> f64 {
        other.0 / self.0
    }

    /// The larger of two latencies (e.g. the roofline of overlapped memory
    /// and compute phases).
    #[inline]
    pub fn max(self, other: Latency) -> Latency {
        Latency(self.0.max(other.0))
    }
}

impl Add for Latency {
    type Output = Latency;
    #[inline]
    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl AddAssign for Latency {
    #[inline]
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Latency {
    type Output = Latency;
    #[inline]
    fn mul(self, k: f64) -> Latency {
        Latency::from_ns(self.0 * k)
    }
}

impl Div<f64> for Latency {
    type Output = Latency;
    #[inline]
    fn div(self, k: f64) -> Latency {
        Latency::from_ns(self.0 / k)
    }
}

impl Sum for Latency {
    fn sum<I: Iterator<Item = Latency>>(iter: I) -> Latency {
        iter.fold(Latency::ZERO, Add::add)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1e9 {
            write!(f, "{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            write!(f, "{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            write!(f, "{:.3} us", ns / 1e3)
        } else {
            write!(f, "{:.1} ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Latency::from_secs(1.5).ns(), 1.5e9);
        assert_eq!(Latency::from_ms(2.0), Latency::from_us(2000.0));
        assert_eq!(Latency::from_us(1.0), Latency::from_ns(1000.0));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Latency::from_ns(12.0).to_string(), "12.0 ns");
        assert_eq!(Latency::from_us(3.5).to_string(), "3.500 us");
        assert_eq!(Latency::from_ms(7.25).to_string(), "7.250 ms");
        assert_eq!(Latency::from_secs(2.0).to_string(), "2.000 s");
    }

    #[test]
    fn speedup_and_fps() {
        let fast = Latency::from_ms(10.0);
        let slow = Latency::from_ms(40.0);
        assert_eq!(fast.speedup_over(slow), 4.0);
        assert!((fast.fps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Latency = [Latency::from_ms(1.0), Latency::from_ms(2.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Latency::from_ms(3.0));
        assert_eq!(total * 2.0, Latency::from_ms(6.0));
        assert_eq!(total / 3.0, Latency::from_ms(1.0));
        assert_eq!(
            Latency::from_ms(1.0).max(Latency::from_ms(2.0)),
            Latency::from_ms(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_panics() {
        let _ = Latency::from_ns(-1.0);
    }
}
