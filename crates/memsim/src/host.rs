use hgpcn_geometry::{Point3, PointCloud};

use crate::{OpCounts, POINT_BYTES, SCALAR_BYTES};

/// The shared host memory of the CPU–FPGA platform (§IV), instrumented with
/// access counters.
///
/// Samplers fetch their points *through* this model, so the Fig. 9
/// memory-access comparison between FPS and OIS is a measurement of what
/// the algorithms actually did, not an analytic estimate. Scalar methods
/// track the intermediate distance arrays FPS spills ("all of the computed
/// distances are written into the memory, and then read again", §III-A).
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::{Point3, PointCloud};
/// use hgpcn_memsim::HostMemory;
///
/// let cloud: PointCloud = (0..4).map(|i| Point3::splat(i as f32)).collect();
/// let mut mem = HostMemory::from_cloud(&cloud);
/// let p = mem.read_point(2);
/// assert_eq!(p, Point3::splat(2.0));
/// assert_eq!(mem.counts().mem_reads, 1);
/// ```
#[derive(Clone, Debug)]
pub struct HostMemory {
    points: Vec<Point3>,
    counts: OpCounts,
}

impl HostMemory {
    /// Loads the coordinates of `cloud` into host memory (uncounted — the
    /// sensor DMA writes the frame before either phase starts).
    pub fn from_cloud(cloud: &PointCloud) -> HostMemory {
        HostMemory {
            points: cloud.points().to_vec(),
            counts: OpCounts::default(),
        }
    }

    /// Loads raw coordinates into host memory (uncounted).
    pub fn from_points(points: Vec<Point3>) -> HostMemory {
        HostMemory {
            points,
            counts: OpCounts::default(),
        }
    }

    /// Reloads the coordinates of `cloud`, reusing this memory's buffer
    /// capacity and zeroing the access tally — equivalent to a fresh
    /// [`HostMemory::from_cloud`] without the allocation. Stream-scoped
    /// preprocessing contexts call this once per frame.
    pub fn reload_cloud(&mut self, cloud: &PointCloud) {
        self.points.clear();
        self.points.extend_from_slice(cloud.points());
        self.counts = OpCounts::default();
    }

    /// Number of resident points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Reads the point at `addr`, charging one record read of 12 bytes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn read_point(&mut self, addr: usize) -> Point3 {
        self.counts.mem_reads += 1;
        self.counts.bytes_read += POINT_BYTES as u64;
        self.points[addr]
    }

    /// Writes a point at `addr`, charging one record write of 12 bytes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write_point(&mut self, addr: usize, p: Point3) {
        self.counts.mem_writes += 1;
        self.counts.bytes_written += POINT_BYTES as u64;
        self.points[addr] = p;
    }

    /// Appends a point (e.g. building the reorganized SFC copy), charging
    /// one record write.
    #[inline]
    pub fn append_point(&mut self, p: Point3) -> usize {
        self.counts.mem_writes += 1;
        self.counts.bytes_written += POINT_BYTES as u64;
        self.points.push(p);
        self.points.len() - 1
    }

    /// Charges one scalar (f32) read of intermediate data.
    #[inline]
    pub fn read_scalar(&mut self) {
        self.counts.mem_reads += 1;
        self.counts.bytes_read += SCALAR_BYTES as u64;
    }

    /// Charges one scalar (f32) write of intermediate data.
    #[inline]
    pub fn write_scalar(&mut self) {
        self.counts.mem_writes += 1;
        self.counts.bytes_written += SCALAR_BYTES as u64;
    }

    /// The access tally so far.
    #[inline]
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Resets the tally (e.g. between the build pass and the sample pass).
    #[inline]
    pub fn reset_counts(&mut self) -> OpCounts {
        std::mem::take(&mut self.counts)
    }

    /// Uncounted view of the resident points, for verification only.
    #[inline]
    pub fn points_uncounted(&self) -> &[Point3] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> HostMemory {
        HostMemory::from_points((0..10).map(|i| Point3::splat(i as f32)).collect())
    }

    #[test]
    fn reads_and_writes_are_counted() {
        let mut mem = memory();
        let _ = mem.read_point(0);
        let _ = mem.read_point(5);
        mem.write_point(1, Point3::ORIGIN);
        let c = mem.counts();
        assert_eq!(c.mem_reads, 2);
        assert_eq!(c.mem_writes, 1);
        assert_eq!(c.bytes_read, 24);
        assert_eq!(c.bytes_written, 12);
        assert_eq!(mem.points_uncounted()[1], Point3::ORIGIN);
    }

    #[test]
    fn scalars_charge_four_bytes() {
        let mut mem = memory();
        mem.write_scalar();
        mem.read_scalar();
        assert_eq!(mem.counts().bytes_moved(), 8);
    }

    #[test]
    fn append_extends_and_counts() {
        let mut mem = memory();
        let addr = mem.append_point(Point3::splat(99.0));
        assert_eq!(addr, 10);
        assert_eq!(mem.len(), 11);
        assert_eq!(mem.counts().mem_writes, 1);
    }

    #[test]
    fn reset_returns_previous_tally() {
        let mut mem = memory();
        let _ = mem.read_point(0);
        let old = mem.reset_counts();
        assert_eq!(old.mem_reads, 1);
        assert_eq!(mem.counts(), OpCounts::default());
    }

    #[test]
    fn from_cloud_is_uncounted() {
        let cloud: PointCloud = (0..3).map(|i| Point3::splat(i as f32)).collect();
        let mem = HostMemory::from_cloud(&cloud);
        assert_eq!(mem.len(), 3);
        assert_eq!(mem.counts(), OpCounts::default());
        assert!(!mem.is_empty());
    }
}
