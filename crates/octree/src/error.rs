use std::error::Error;
use std::fmt;

use hgpcn_geometry::GeometryError;

/// Errors produced while building or querying an octree.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum OctreeError {
    /// The input frame was empty; an octree needs at least one point.
    EmptyCloud,
    /// The requested maximum depth exceeds what the 64-bit m-code supports.
    DepthTooLarge {
        /// Requested depth.
        requested: u8,
        /// Largest supported depth.
        max: u8,
    },
    /// The input cloud failed geometric validation (e.g. NaN coordinates).
    InvalidGeometry(GeometryError),
}

impl fmt::Display for OctreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OctreeError::EmptyCloud => write!(f, "cannot build an octree over an empty cloud"),
            OctreeError::DepthTooLarge { requested, max } => {
                write!(
                    f,
                    "octree depth {requested} exceeds supported maximum {max}"
                )
            }
            OctreeError::InvalidGeometry(e) => write!(f, "invalid input geometry: {e}"),
        }
    }
}

impl Error for OctreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OctreeError::InvalidGeometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for OctreeError {
    fn from(e: GeometryError) -> Self {
        OctreeError::InvalidGeometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_source() {
        let e = OctreeError::InvalidGeometry(GeometryError::EmptyCloud);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&OctreeError::EmptyCloud).is_none());
    }
}
