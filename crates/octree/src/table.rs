use hgpcn_geometry::{MortonCode, Octant};

use crate::{NodeId, Octree};

/// One row of the flattened [`OctreeTable`].
///
/// The hardware table does not store the full m-code — a voxel's code is
/// implicit in the lookup path — so an entry carries only what a Sampling
/// Module needs: which children exist, where they sit in the table, and the
/// host-memory address range of the voxel's points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// Index of the first child entry; children are stored contiguously.
    pub child_base: u32,
    /// Bitmask over octants (bit `i` set ⇔ child in octant `i` exists).
    pub child_mask: u8,
    /// Level of this voxel below the root.
    pub level: u8,
    /// First host-memory point address (in units of points, SFC order).
    pub point_start: u32,
    /// Number of points in the voxel.
    pub point_count: u32,
}

impl TableEntry {
    /// Returns `true` if the voxel has no children in the table.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.child_mask == 0
    }

    /// Table index of the child in `octant`, if present.
    ///
    /// Children are packed densely after `child_base` in octant order, so
    /// the offset is the popcount of the mask bits below `octant` — exactly
    /// the adder a hardware table walker uses.
    #[inline]
    pub fn child(&self, octant: Octant) -> Option<u32> {
        let bit = 1u8 << octant.index();
        if self.child_mask & bit == 0 {
            return None;
        }
        let below = self.child_mask & (bit - 1);
        Some(self.child_base + below.count_ones())
    }

    /// Octants of the children present, in SFC order.
    pub fn child_octants(&self) -> impl Iterator<Item = Octant> + '_ {
        Octant::ALL
            .into_iter()
            .filter(|o| self.child_mask & (1 << o.index()) != 0)
    }
}

/// The flattened Octree-Table transferred to the FPGA over MMIO (§IV, §V-B).
///
/// Rows are stored in breadth-first order with each node's children
/// contiguous, which is both how a hardware walker wants them and what makes
/// [`TableEntry::child`] a mask-popcount-add. [`OctreeTable::size_bits`]
/// models its on-chip footprint for the Fig. 13 comparison.
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::{Point3, PointCloud};
/// use hgpcn_octree::{Octree, OctreeConfig, OctreeTable};
///
/// let cloud: PointCloud = (0..32).map(|i| Point3::splat(i as f32)).collect();
/// let tree = Octree::build(&cloud, OctreeConfig::default())?;
/// let table = OctreeTable::from_octree(&tree);
/// assert_eq!(table.entry(table.root()).point_count as usize, cloud.len());
/// # Ok::<(), hgpcn_octree::OctreeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct OctreeTable {
    entries: Vec<TableEntry>,
    codes: Vec<MortonCode>,
    max_depth: u8,
}

impl OctreeTable {
    /// Bits per table entry in the hardware layout: 24 (child base, up to
    /// 16M nodes) + 8 (child mask) + 24 (point start, up to 16M points) +
    /// 16 (leaf point count; internal-node counts are derived by the
    /// walker, and the Sampling Modules' working counters are registers,
    /// not table state).
    pub const ENTRY_BITS: usize = 72;

    /// Flattens an [`Octree`] into table form.
    pub fn from_octree(tree: &Octree) -> OctreeTable {
        // Breadth-first placement so each node's children are contiguous.
        let mut order: Vec<NodeId> = Vec::with_capacity(tree.node_count());
        let mut table_index = vec![u32::MAX; tree.node_count()];
        order.push(tree.root());
        table_index[tree.root().index()] = 0;
        let mut head = 0;
        while head < order.len() {
            let id = order[head];
            head += 1;
            for child in tree.node(id).children() {
                table_index[child.index()] = order.len() as u32;
                order.push(child);
            }
        }

        let mut entries = Vec::with_capacity(order.len());
        let mut codes = Vec::with_capacity(order.len());
        let mut next_child_base = 1u32;
        for &id in &order {
            let node = tree.node(id);
            let mut mask = 0u8;
            for octant in Octant::ALL {
                if node.child(octant).is_some() {
                    mask |= 1 << octant.index();
                }
            }
            let child_base = if mask == 0 { 0 } else { next_child_base };
            next_child_base += mask.count_ones();
            let range = node.point_range();
            entries.push(TableEntry {
                child_base,
                child_mask: mask,
                level: node.level(),
                point_start: range.start as u32,
                point_count: range.len() as u32,
            });
            codes.push(node.code());
        }
        OctreeTable {
            entries,
            codes,
            max_depth: tree.config().max_depth_value(),
        }
    }

    /// Index of the root entry (always 0).
    #[inline]
    pub fn root(&self) -> u32 {
        0
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty (never the case for a built tree).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A row by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn entry(&self, index: u32) -> &TableEntry {
        &self.entries[index as usize]
    }

    /// The m-code of the voxel at `index` (kept for verification and
    /// display; the hardware table does not store it).
    #[inline]
    pub fn code(&self, index: u32) -> MortonCode {
        self.codes[index as usize]
    }

    /// The depth cap of the source octree.
    #[inline]
    pub fn max_depth(&self) -> u8 {
        self.max_depth
    }

    /// Modeled on-chip size of the table in bits (Fig. 13). This is the only
    /// pre-processing state the FPGA must hold under OIS, versus the whole
    /// frame plus intermediate distances under on-chip FPS.
    #[inline]
    pub fn size_bits(&self) -> usize {
        self.entries.len() * Self::ENTRY_BITS
    }

    /// Walks from the root along `code`'s octant path.
    ///
    /// Returns the table index reached and the number of lookups spent; the
    /// walk stops early (returning the deepest entry on the path) if the
    /// path runs past a leaf or into an absent child.
    pub fn walk(&self, code: MortonCode) -> (u32, u32) {
        let mut index = self.root();
        let mut lookups = 1; // reading the root row
        for level in 1..=code.level() {
            let octant = code
                .ancestor_at(level)
                .octant_in_parent()
                .expect("level >= 1");
            match self.entry(index).child(octant) {
                Some(next) => {
                    index = next;
                    lookups += 1;
                }
                None => break,
            }
        }
        (index, lookups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OctreeConfig;
    use hgpcn_geometry::{Point3, PointCloud};

    fn sample_tree() -> Octree {
        let mut cloud = PointCloud::new();
        for x in 0..8 {
            for y in 0..8 {
                cloud.push(Point3::new(x as f32, y as f32, ((x * y) % 3) as f32));
            }
        }
        Octree::build(&cloud, OctreeConfig::new().max_depth(5).leaf_capacity(2)).unwrap()
    }

    #[test]
    fn table_mirrors_tree() {
        let tree = sample_tree();
        let table = OctreeTable::from_octree(&tree);
        assert_eq!(table.len(), tree.node_count());
        let root = table.entry(table.root());
        assert_eq!(root.point_count as usize, tree.points().len());
        assert_eq!(root.point_start, 0);
    }

    #[test]
    fn child_lookup_matches_tree_children() {
        let tree = sample_tree();
        let table = OctreeTable::from_octree(&tree);
        // Walk to every node by its code and compare the point range.
        for node in tree.nodes() {
            let (idx, lookups) = table.walk(node.code());
            let entry = table.entry(idx);
            assert_eq!(entry.level, node.level());
            assert_eq!(entry.point_start as usize, node.point_range().start);
            assert_eq!(entry.point_count as usize, node.point_count());
            assert_eq!(lookups, u32::from(node.level()) + 1);
            assert_eq!(table.code(idx), node.code());
        }
    }

    #[test]
    fn children_are_contiguous() {
        let tree = sample_tree();
        let table = OctreeTable::from_octree(&tree);
        for i in 0..table.len() as u32 {
            let e = table.entry(i);
            let kids: Vec<u32> = e.child_octants().filter_map(|o| e.child(o)).collect();
            for (k, idx) in kids.iter().enumerate() {
                assert_eq!(*idx, e.child_base + k as u32);
            }
        }
    }

    #[test]
    fn size_bits_scales_with_entries() {
        let tree = sample_tree();
        let table = OctreeTable::from_octree(&tree);
        assert_eq!(table.size_bits(), table.len() * OctreeTable::ENTRY_BITS);
        assert!(!table.is_empty());
    }

    #[test]
    fn walk_stops_at_absent_child() {
        let tree = sample_tree();
        let table = OctreeTable::from_octree(&tree);
        // A code deeper than the tree: the walk must stop at some entry
        // without panicking and report the lookups it actually did.
        let deep = MortonCode::from_grid_coords(0, 0, 0, tree.config().max_depth_value());
        let (idx, lookups) = table.walk(deep);
        assert!(lookups >= 1);
        assert!((idx as usize) < table.len());
    }
}
