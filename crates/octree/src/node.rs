use std::fmt;
use std::ops::Range;

use hgpcn_geometry::{MortonCode, Octant};

/// Index of a node inside an [`crate::Octree`]'s node arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One voxel of the octree.
///
/// Every node — internal or leaf — records the half-open range of SFC
/// positions its points occupy. Because the frame is reorganized into SFC
/// order (§V-A), a voxel's points are always consecutive, which is the key
/// property that lets the Down-sampling Unit read sampled points straight
/// out of host memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    pub(crate) code: MortonCode,
    pub(crate) range: Range<u32>,
    pub(crate) children: [Option<NodeId>; 8],
    pub(crate) is_leaf: bool,
}

impl Node {
    /// The node's m-code (encodes both position and level).
    #[inline]
    pub fn code(&self) -> MortonCode {
        self.code
    }

    /// Depth of this voxel below the root.
    #[inline]
    pub fn level(&self) -> u8 {
        self.code.level()
    }

    /// Half-open range of SFC positions (host-memory addresses, in units of
    /// points) covered by this voxel.
    #[inline]
    pub fn point_range(&self) -> Range<usize> {
        self.range.start as usize..self.range.end as usize
    }

    /// Number of points inside this voxel.
    #[inline]
    pub fn point_count(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// Returns `true` for leaf voxels (no children were created).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.is_leaf
    }

    /// The child in `octant`, if that sub-voxel is non-empty.
    #[inline]
    pub fn child(&self, octant: Octant) -> Option<NodeId> {
        self.children[octant.index() as usize]
    }

    /// Iterates over the non-empty children in SFC order.
    #[inline]
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.iter().flatten().copied()
    }

    /// Number of non-empty children.
    #[inline]
    pub fn child_count(&self) -> usize {
        self.children.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(code: MortonCode, start: u32, end: u32) -> Node {
        Node {
            code,
            range: start..end,
            children: [None; 8],
            is_leaf: true,
        }
    }

    #[test]
    fn point_range_and_count() {
        let n = leaf(MortonCode::root(), 3, 9);
        assert_eq!(n.point_range(), 3..9);
        assert_eq!(n.point_count(), 6);
        assert!(n.is_leaf());
        assert_eq!(n.child_count(), 0);
    }

    #[test]
    fn children_iterates_in_sfc_order() {
        let mut n = leaf(MortonCode::root(), 0, 10);
        n.is_leaf = false;
        n.children[5] = Some(NodeId(2));
        n.children[1] = Some(NodeId(1));
        let kids: Vec<NodeId> = n.children().collect();
        assert_eq!(kids, vec![NodeId(1), NodeId(2)]);
        assert_eq!(n.child_count(), 2);
    }
}
