/// Operation counts recorded while building an octree.
///
/// The Octree-build Unit runs on the CPU and its cost is the dominant part
/// of OIS latency when everything runs in software (Fig. 11, 0.25–0.8 of
/// total). The memory simulator converts these counts into bytes and cycles;
/// this struct only records *what happened*, not how long it took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BuildStats {
    /// Number of points in the frame.
    pub points: usize,
    /// Point reads performed (one per point: the "single pass" of §V-A).
    pub point_reads: usize,
    /// Point writes performed (the reorganized SFC copy in host memory).
    pub point_writes: usize,
    /// Comparisons spent sorting points into SFC order.
    pub sort_comparisons: usize,
    /// Morton-code computations (one octant walk per point).
    pub code_computations: usize,
    /// Nodes created (internal + leaf).
    pub nodes_created: usize,
    /// Depth of the deepest leaf actually created. Depends on the frame's
    /// spatial non-uniformity (the MN.piano vs MN.plant effect in Fig. 11).
    pub achieved_depth: u8,
    /// `true` when this build ran the temporal-coherence warm path
    /// (adaptive merge over a cached near-sorted order) instead of a cold
    /// full sort. The arena is bit-identical either way; only the cost
    /// model differs.
    pub reused: bool,
    /// Points whose Morton code changed relative to the cached previous
    /// frame (warm path), or all points on a cold build. This is the "n"
    /// of the delta pass the warm cost model charges.
    pub dirty_points: usize,
    /// Octree-Table rows whose content (code, point range, or children)
    /// may have changed relative to the cached previous frame: nodes
    /// whose sorted-position range touches a changed position. Equals
    /// `nodes_created` on a cold build. A conservative (never
    /// undercounting) estimate — the quantity the §V-A incremental
    /// table update re-emits while clean rows persist in BRAM.
    pub nodes_dirty: usize,
}

impl BuildStats {
    /// Total host-memory accesses (reads + writes) in units of points.
    #[inline]
    pub fn memory_accesses(&self) -> usize {
        self.point_reads + self.point_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_accesses_sums_reads_and_writes() {
        let s = BuildStats {
            point_reads: 10,
            point_writes: 7,
            ..BuildStats::default()
        };
        assert_eq!(s.memory_accesses(), 17);
    }
}
