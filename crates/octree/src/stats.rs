/// Operation counts recorded while building an octree.
///
/// The Octree-build Unit runs on the CPU and its cost is the dominant part
/// of OIS latency when everything runs in software (Fig. 11, 0.25–0.8 of
/// total). The memory simulator converts these counts into bytes and cycles;
/// this struct only records *what happened*, not how long it took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BuildStats {
    /// Number of points in the frame.
    pub points: usize,
    /// Point reads performed (one per point: the "single pass" of §V-A).
    pub point_reads: usize,
    /// Point writes performed (the reorganized SFC copy in host memory).
    pub point_writes: usize,
    /// Comparisons spent sorting points into SFC order.
    pub sort_comparisons: usize,
    /// Morton-code computations (one octant walk per point).
    pub code_computations: usize,
    /// Nodes created (internal + leaf).
    pub nodes_created: usize,
    /// Depth of the deepest leaf actually created. Depends on the frame's
    /// spatial non-uniformity (the MN.piano vs MN.plant effect in Fig. 11).
    pub achieved_depth: u8,
}

impl BuildStats {
    /// Total host-memory accesses (reads + writes) in units of points.
    #[inline]
    pub fn memory_accesses(&self) -> usize {
        self.point_reads + self.point_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_accesses_sums_reads_and_writes() {
        let s = BuildStats {
            point_reads: 10,
            point_writes: 7,
            ..BuildStats::default()
        };
        assert_eq!(s.memory_accesses(), 17);
    }
}
