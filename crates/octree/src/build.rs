use hgpcn_geometry::morton::MAX_LEVEL;

/// Configuration for [`crate::Octree::build`].
///
/// The paper subdivides "each non-empty voxel … until it reaches a
/// pre-defined depth" (§V-A). `leaf_capacity` additionally stops subdividing
/// once a voxel holds few enough points, which keeps trees for uniform
/// frames shallow — reproducing the non-uniformity-dependent depth of
/// Fig. 11 — while `max_depth` caps the worst case.
///
/// # Examples
///
/// ```
/// use hgpcn_octree::OctreeConfig;
///
/// let cfg = OctreeConfig::new().max_depth(8).leaf_capacity(4);
/// assert_eq!(cfg.max_depth_value(), 8);
/// assert_eq!(cfg.leaf_capacity_value(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OctreeConfig {
    pub(crate) max_depth: u8,
    pub(crate) leaf_capacity: usize,
}

impl OctreeConfig {
    /// Default configuration: depth cap 10, leaf capacity 8.
    #[inline]
    pub fn new() -> OctreeConfig {
        OctreeConfig::default()
    }

    /// Sets the depth cap (number of subdivision levels below the root).
    ///
    /// Values above the Morton-code limit are clamped at build time and
    /// reported through [`crate::OctreeError::DepthTooLarge`].
    #[inline]
    pub fn max_depth(mut self, depth: u8) -> OctreeConfig {
        self.max_depth = depth;
        self
    }

    /// Sets the number of points below which a voxel is kept as a leaf.
    ///
    /// A capacity of 1 subdivides until every leaf holds a single point (or
    /// the depth cap stops it).
    #[inline]
    pub fn leaf_capacity(mut self, capacity: usize) -> OctreeConfig {
        self.leaf_capacity = capacity.max(1);
        self
    }

    /// The configured depth cap.
    #[inline]
    pub fn max_depth_value(&self) -> u8 {
        self.max_depth
    }

    /// The configured leaf capacity.
    #[inline]
    pub fn leaf_capacity_value(&self) -> usize {
        self.leaf_capacity
    }

    /// Whether the depth cap fits in the 64-bit m-code.
    #[inline]
    pub fn is_supported(&self) -> bool {
        self.max_depth <= MAX_LEVEL
    }
}

impl Default for OctreeConfig {
    fn default() -> Self {
        OctreeConfig {
            max_depth: 10,
            leaf_capacity: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = OctreeConfig::new().max_depth(12).leaf_capacity(2);
        assert_eq!(cfg.max_depth_value(), 12);
        assert_eq!(cfg.leaf_capacity_value(), 2);
        assert!(cfg.is_supported());
    }

    #[test]
    fn leaf_capacity_zero_clamped_to_one() {
        assert_eq!(
            OctreeConfig::new().leaf_capacity(0).leaf_capacity_value(),
            1
        );
    }

    #[test]
    fn unsupported_depth_detected() {
        assert!(!OctreeConfig::new().max_depth(MAX_LEVEL + 1).is_supported());
    }
}
