//! Voxel-shell enumeration for VEG's voxel expansion (§VI).
//!
//! VEG grows the search region around a central voxel in *shells*: shell 1
//! is every voxel touching the seed (the grey voxels in Fig. 8), shell 2 the
//! next ring of touching voxels (green), and so on. On a regular grid at a
//! fixed octree level, shell `s` is exactly the set of voxels at Chebyshev
//! grid distance `s` from the seed. This module enumerates those codes,
//! clipped to the grid bounds — the standard octree neighbor-search
//! operation of Frisken & Perry the paper cites.

use hgpcn_geometry::MortonCode;

/// Enumerates the m-codes of all voxels at Chebyshev grid distance exactly
/// `shell` from `center`, at `center`'s level, clipped to the grid.
///
/// `shell == 0` yields just the center. Codes come out in deterministic
/// x-major scan order.
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::MortonCode;
/// use hgpcn_octree::neighbor::shell_codes;
///
/// let center = MortonCode::from_grid_coords(2, 2, 2, 3);
/// assert_eq!(shell_codes(center, 0).len(), 1);
/// assert_eq!(shell_codes(center, 1).len(), 26); // 3^3 - 1 touching voxels
/// ```
pub fn shell_codes(center: MortonCode, shell: u32) -> Vec<MortonCode> {
    let level = center.level();
    if shell == 0 {
        return vec![center];
    }
    let side = 1i64 << level;
    let (cx, cy, cz) = center.grid_coords();
    let (cx, cy, cz) = (i64::from(cx), i64::from(cy), i64::from(cz));
    let s = i64::from(shell);
    let mut out = Vec::new();
    for dx in -s..=s {
        let x = cx + dx;
        if x < 0 || x >= side {
            continue;
        }
        for dy in -s..=s {
            let y = cy + dy;
            if y < 0 || y >= side {
                continue;
            }
            for dz in -s..=s {
                // Keep only the surface of the cube: at least one axis at
                // full offset `s`, otherwise the voxel belongs to an inner
                // shell already gathered.
                if dx.abs().max(dy.abs()).max(dz.abs()) != s {
                    continue;
                }
                let z = cz + dz;
                if z < 0 || z >= side {
                    continue;
                }
                out.push(MortonCode::from_grid_coords(
                    x as u32, y as u32, z as u32, level,
                ));
            }
        }
    }
    out
}

/// The voxels touching `center` (faces, edges and corners): shell 1.
#[inline]
pub fn touching_neighbors(center: MortonCode) -> Vec<MortonCode> {
    shell_codes(center, 1)
}

/// Enumerates all voxels with Chebyshev distance at most `max_shell`
/// (the union of shells `0..=max_shell`), clipped to the grid.
pub fn ball_codes(center: MortonCode, max_shell: u32) -> Vec<MortonCode> {
    (0..=max_shell)
        .flat_map(|s| shell_codes(center, s))
        .collect()
}

/// The largest shell index that can contain any voxel at `center`'s level
/// (after which expansion has swallowed the whole grid).
pub fn max_shell(center: MortonCode) -> u32 {
    let side = 1u32 << center.level();
    let (x, y, z) = center.grid_coords();
    let far = |c: u32| c.max(side - 1 - c);
    far(x).max(far(y)).max(far(z))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_shell_counts() {
        // An interior voxel far from all walls.
        let c = MortonCode::from_grid_coords(8, 8, 8, 5);
        assert_eq!(shell_codes(c, 0).len(), 1);
        assert_eq!(shell_codes(c, 1).len(), 26);
        assert_eq!(shell_codes(c, 2).len(), 98); // 5^3 - 3^3
        assert_eq!(shell_codes(c, 3).len(), 218); // 7^3 - 5^3
    }

    #[test]
    fn corner_voxel_is_clipped() {
        let c = MortonCode::from_grid_coords(0, 0, 0, 4);
        // Only the 7 neighbors inside the grid survive.
        assert_eq!(shell_codes(c, 1).len(), 7);
    }

    #[test]
    fn shells_have_right_distance() {
        let c = MortonCode::from_grid_coords(5, 6, 7, 4);
        for s in 0..4 {
            for v in shell_codes(c, s) {
                assert_eq!(c.chebyshev_distance(v), s);
            }
        }
    }

    #[test]
    fn shells_are_disjoint_and_cover_ball() {
        let c = MortonCode::from_grid_coords(4, 4, 4, 4);
        let ball = ball_codes(c, 3);
        let mut seen = std::collections::HashSet::new();
        for v in &ball {
            assert!(seen.insert(*v), "shells must not repeat voxels");
        }
        assert_eq!(ball.len(), 7 * 7 * 7); // full 7^3 cube fits in the grid
    }

    #[test]
    fn max_shell_reaches_whole_grid() {
        let c = MortonCode::from_grid_coords(0, 0, 0, 3);
        assert_eq!(max_shell(c), 7);
        let center = MortonCode::from_grid_coords(4, 4, 4, 3);
        assert_eq!(max_shell(center), 4);
        // Expanding to max_shell covers every voxel of the grid.
        let all = ball_codes(c, max_shell(c));
        assert_eq!(all.len(), 8 * 8 * 8);
    }

    #[test]
    fn level_zero_has_single_voxel() {
        let root = MortonCode::root();
        assert_eq!(shell_codes(root, 0), vec![root]);
        assert!(shell_codes(root, 1).is_empty());
        assert_eq!(max_shell(root), 0);
    }
}
