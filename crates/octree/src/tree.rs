use std::cell::Cell;
use std::ops::Range;

use hgpcn_geometry::morton::MAX_LEVEL;
use hgpcn_geometry::{Aabb, MortonCode, Octant, Point3, PointCloud};

use crate::{BuildStats, Node, NodeId, OctreeConfig, OctreeError};

/// An octree over one point-cloud frame, with its SFC-reorganized copy of
/// the points.
///
/// Building the tree performs exactly what the paper's Octree-build Unit
/// does in one pass (§V-A): per-point m-code computation, a stable SFC sort
/// (the host-memory *pre-configuration*), and node construction. The
/// reorganized cloud, the permutation back to raw indices, and the
/// [`BuildStats`] the memory simulator charges are all retained.
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::{Point3, PointCloud};
/// use hgpcn_octree::{Octree, OctreeConfig};
///
/// let cloud: PointCloud =
///     (0..64).map(|i| Point3::new((i % 4) as f32, ((i / 4) % 4) as f32, (i / 16) as f32)).collect();
/// let tree = Octree::build(&cloud, OctreeConfig::new().max_depth(4).leaf_capacity(1))?;
/// assert!(tree.depth() <= 4);
/// assert_eq!(tree.permutation().len(), 64);
/// # Ok::<(), hgpcn_octree::OctreeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Octree {
    root_bounds: Aabb,
    nodes: Vec<Node>,
    root: NodeId,
    points: PointCloud,
    permutation: Vec<usize>,
    codes: Vec<MortonCode>,
    config: OctreeConfig,
    stats: BuildStats,
}

impl Octree {
    /// Builds an octree over `cloud`.
    ///
    /// # Errors
    ///
    /// * [`OctreeError::EmptyCloud`] if the frame has no points;
    /// * [`OctreeError::DepthTooLarge`] if `config.max_depth` exceeds the
    ///   m-code limit;
    /// * [`OctreeError::InvalidGeometry`] if any coordinate is non-finite.
    pub fn build(cloud: &PointCloud, config: OctreeConfig) -> Result<Octree, OctreeError> {
        if cloud.is_empty() {
            return Err(OctreeError::EmptyCloud);
        }
        if !config.is_supported() {
            return Err(OctreeError::DepthTooLarge {
                requested: config.max_depth,
                max: MAX_LEVEL,
            });
        }
        cloud.validate_finite()?;

        let bounds = cloud.bounds().expect("non-empty cloud has bounds");
        // Inflate a hair so boundary points never fall outside after f32
        // rounding, then cubify so each level halves the voxel edge.
        let margin = (bounds.diagonal() * 1e-6).max(f32::MIN_POSITIVE);
        let root_bounds = bounds.inflate(margin).cubified();

        let mut stats = BuildStats {
            points: cloud.len(),
            ..BuildStats::default()
        };

        // Single pass: one m-code per point (the per-point octant walk).
        let raw_codes: Vec<MortonCode> = cloud
            .iter()
            .map(|p| MortonCode::encode(p, &root_bounds, config.max_depth))
            .collect();
        stats.code_computations = cloud.len();
        stats.point_reads = cloud.len();

        // Host-memory pre-configuration: stable SFC sort + reorganized copy.
        let comparisons = Cell::new(0usize);
        let mut permutation: Vec<usize> = (0..cloud.len()).collect();
        permutation.sort_by(|&a, &b| {
            comparisons.set(comparisons.get() + 1);
            raw_codes[a].cmp(&raw_codes[b])
        });
        stats.sort_comparisons = comparisons.get();
        stats.dirty_points = cloud.len();
        let points = cloud.permuted(&permutation);
        stats.point_writes = cloud.len();
        let codes: Vec<MortonCode> = permutation.iter().map(|&i| raw_codes[i]).collect();

        // Node construction over the sorted code array; each voxel's points
        // are a contiguous range, so children partition the parent range.
        let mut nodes = Vec::new();
        let mut max_level = 0u8;
        let root = Self::build_node(
            &codes,
            MortonCode::root(),
            0..cloud.len() as u32,
            &config,
            &mut nodes,
            &mut max_level,
        );
        stats.nodes_created = nodes.len();
        stats.nodes_dirty = nodes.len();
        stats.achieved_depth = max_level;

        Ok(Octree {
            root_bounds,
            nodes,
            root,
            points,
            permutation,
            codes,
            config,
            stats,
        })
    }

    /// Builds an octree over `cloud`, reusing `scratch`'s buffers and — when
    /// the frame lands on the cached grid — the previous frame's near-sorted
    /// Morton order.
    ///
    /// The result is **bit-identical** to [`Octree::build`] in every
    /// geometric respect (`root_bounds`, nodes, point codes, permutation,
    /// reorganized points); only [`BuildStats`] differs, because it records
    /// what the build actually did (`reused`, `dirty_points`, merge vs full
    /// sort comparisons). The warm path sorts by the strict key
    /// `(code, raw index)`, which is exactly the order the cold stable
    /// code-only sort realizes, so the permutation is identical no matter
    /// what order the cache supplies — a stale or even scrambled cache can
    /// cost time, never correctness.
    ///
    /// The warm path engages only when the computed root grid (cubified,
    /// inflated AABB) is bit-equal to the cached one and the config matches;
    /// any drift falls back to a cold full sort (still through the reused
    /// buffers) and refreshes the cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Octree::build`]; on error the scratch's cache is
    /// left untouched.
    pub fn build_with_scratch(
        cloud: &PointCloud,
        config: OctreeConfig,
        scratch: &mut OctreeScratch,
    ) -> Result<Octree, OctreeError> {
        if cloud.is_empty() {
            return Err(OctreeError::EmptyCloud);
        }
        if !config.is_supported() {
            return Err(OctreeError::DepthTooLarge {
                requested: config.max_depth,
                max: MAX_LEVEL,
            });
        }
        cloud.validate_finite()?;

        let n = cloud.len();
        let bounds = cloud.bounds().expect("non-empty cloud has bounds");
        let margin = (bounds.diagonal() * 1e-6).max(f32::MIN_POSITIVE);
        let root_bounds = bounds.inflate(margin).cubified();

        let mut stats = BuildStats {
            points: n,
            ..BuildStats::default()
        };

        // Single pass: one m-code per point, into the reused raw-order buffer.
        scratch.raw_codes.clear();
        scratch.raw_codes.extend(
            cloud
                .iter()
                .map(|p| MortonCode::encode(p, &root_bounds, config.max_depth)),
        );
        stats.code_computations = n;
        stats.point_reads = n;

        let warm = scratch.grid == Some((root_bounds, config));
        let mut permutation = std::mem::take(&mut scratch.spare_perm);
        permutation.clear();
        if warm {
            // Delta pass: count points whose code moved since the cached
            // frame (the quantity the §V-A warm cost model charges for).
            let prev = &scratch.prev_codes;
            let dirty = (0..n)
                .filter(|&i| i >= prev.len() || scratch.raw_codes[i] != prev[i])
                .count();
            // Seed with the cached order (dropping raw indices past this
            // frame's length, appending any new ones), then finish with an
            // adaptive natural merge on the strict (code, index) key.
            permutation.extend(scratch.prev_perm.iter().copied().filter(|&i| i < n));
            permutation.extend(scratch.prev_codes.len()..n);
            debug_assert_eq!(permutation.len(), n);
            let mut comparisons = 0usize;
            adaptive_merge_by_code(
                &mut permutation,
                &scratch.raw_codes,
                &mut scratch.merge_buf,
                &mut scratch.runs,
                &mut scratch.runs_next,
                &mut comparisons,
            );
            stats.sort_comparisons = comparisons;
            stats.dirty_points = dirty;
            stats.reused = true;
        } else {
            permutation.extend(0..n);
            let raw_codes = &scratch.raw_codes;
            let comparisons = Cell::new(0usize);
            permutation.sort_by(|&a, &b| {
                comparisons.set(comparisons.get() + 1);
                raw_codes[a].cmp(&raw_codes[b])
            });
            stats.sort_comparisons = comparisons.get();
            stats.dirty_points = n;
        }

        let mut points = std::mem::take(&mut scratch.spare_points);
        cloud.gather_into(&permutation, &mut points);
        stats.point_writes = n;

        let mut codes = std::mem::take(&mut scratch.spare_codes);
        codes.clear();
        codes.extend(permutation.iter().map(|&i| scratch.raw_codes[i]));

        let mut nodes = std::mem::take(&mut scratch.spare_nodes);
        nodes.clear();
        let mut max_level = 0u8;
        let root = Self::build_node(
            &codes,
            MortonCode::root(),
            0..n as u32,
            &config,
            &mut nodes,
            &mut max_level,
        );
        stats.nodes_created = nodes.len();
        stats.achieved_depth = max_level;
        stats.nodes_dirty = if warm {
            dirty_nodes(
                &nodes,
                &codes,
                &scratch.prev_codes,
                &scratch.prev_perm,
                &mut scratch.dirty_prefix,
            )
        } else {
            nodes.len()
        };

        // Refresh the cache: this frame's raw-order codes and final
        // permutation become the next frame's warm seed.
        scratch.grid = Some((root_bounds, config));
        std::mem::swap(&mut scratch.prev_codes, &mut scratch.raw_codes);
        scratch.prev_perm.clear();
        scratch.prev_perm.extend_from_slice(&permutation);

        Ok(Octree {
            root_bounds,
            nodes,
            root,
            points,
            permutation,
            codes,
            config,
            stats,
        })
    }

    fn build_node(
        codes: &[MortonCode],
        code: MortonCode,
        range: Range<u32>,
        config: &OctreeConfig,
        nodes: &mut Vec<Node>,
        max_level: &mut u8,
    ) -> NodeId {
        *max_level = (*max_level).max(code.level());
        let count = (range.end - range.start) as usize;
        let is_leaf = code.level() >= config.max_depth || count <= config.leaf_capacity;
        let id = NodeId(nodes.len() as u32);
        nodes.push(Node {
            code,
            range: range.clone(),
            children: [None; 8],
            is_leaf,
        });
        if is_leaf {
            return id;
        }
        let mut children = [None; 8];
        let mut start = range.start;
        for octant in Octant::ALL {
            let child_code = code.child(octant);
            // Points of this child are the prefix-matching run beginning at
            // `start`; binary search for its end within the parent range.
            let end = range.start + partition_end(codes, range.clone(), child_code) as u32;
            if end > start {
                let child_id =
                    Self::build_node(codes, child_code, start..end, config, nodes, max_level);
                children[octant.index() as usize] = Some(child_id);
            }
            start = end;
            if start >= range.end {
                break;
            }
        }
        nodes[id.index()].children = children;
        nodes[id.index()].is_leaf = false;
        id
    }

    /// The cubified root voxel.
    #[inline]
    pub fn root_bounds(&self) -> Aabb {
        self.root_bounds
    }

    /// Id of the root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Looks up a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in creation (pre)order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the deepest leaf.
    #[inline]
    pub fn depth(&self) -> u8 {
        self.stats.achieved_depth
    }

    /// The SFC-reorganized copy of the frame (the paper's pre-configured
    /// host-memory layout).
    #[inline]
    pub fn points(&self) -> &PointCloud {
        &self.points
    }

    /// Maps each SFC position to the index of that point in the raw frame.
    #[inline]
    pub fn permutation(&self) -> &[usize] {
        &self.permutation
    }

    /// The per-point m-codes at `config.max_depth`, in SFC order.
    #[inline]
    pub fn point_codes(&self) -> &[MortonCode] {
        &self.codes
    }

    /// The configuration the tree was built with.
    #[inline]
    pub fn config(&self) -> OctreeConfig {
        self.config
    }

    /// Operation counts of the build (charged to the CPU by the simulator).
    #[inline]
    pub fn build_stats(&self) -> BuildStats {
        self.stats
    }

    /// Descends from the root to the leaf voxel containing `p`.
    ///
    /// Returns `None` if `p` lies outside the root voxel or in an empty
    /// sub-voxel (no point of the frame shares its leaf).
    pub fn leaf_for(&self, p: Point3) -> Option<NodeId> {
        if !self.root_bounds.contains(p) {
            return None;
        }
        let mut id = self.root;
        let mut bounds = self.root_bounds;
        loop {
            let node = self.node(id);
            if node.is_leaf() {
                return Some(id);
            }
            let octant = bounds.octant_of(p);
            bounds = bounds.octant_bounds(octant);
            id = node.child(octant)?;
        }
    }

    /// Finds the node with exactly this m-code, descending by octant path.
    ///
    /// Returns `None` if the path leads through an empty sub-voxel or stops
    /// at a shallower leaf.
    pub fn node_at(&self, code: MortonCode) -> Option<NodeId> {
        let mut id = self.root;
        for level in 1..=code.level() {
            let step = code
                .ancestor_at(level)
                .octant_in_parent()
                .expect("level >= 1");
            let node = self.node(id);
            if node.is_leaf() {
                return None;
            }
            id = node.child(step)?;
        }
        Some(id)
    }

    /// The SFC-position range of all points inside the voxel `code`, whether
    /// or not the tree has a node at that exact level.
    ///
    /// Implemented as two binary searches over the sorted point codes — this
    /// is the Octree-Table lookup primitive the VEG point-count step uses.
    pub fn voxel_range(&self, code: MortonCode) -> Range<usize> {
        debug_assert!(code.level() <= self.config.max_depth);
        // Walk the node arena along the code's octant path instead of
        // binary-searching the full code array: the (very common) query
        // for an *empty* voxel — VEG probes every voxel of a shell —
        // exits at the first missing child, and a populated voxel
        // narrows to at most one leaf's few points. Results are
        // identical to a two-sided search of the sorted code array.
        let mut node = self.node(self.root);
        for level in 1..=code.level() {
            if node.is_leaf {
                break;
            }
            let octant = code
                .ancestor_at(level)
                .octant_in_parent()
                .expect("level >= 1");
            match node.children[octant.index() as usize] {
                Some(child) => node = self.node(child),
                None => return 0..0,
            }
        }
        if node.code.level() >= code.level() {
            // Found the voxel's own node (or a deeper ancestor chain
            // ended exactly here): its recorded range is the answer.
            let r = node.range.clone();
            return r.start as usize..r.end as usize;
        }
        // A shallower leaf covers the queried voxel: narrow its small
        // contiguous range by code prefix.
        let shift = 3 * (self.config.max_depth - code.level()) as u32;
        let lo = code.bits() << shift;
        let hi = lo + (1u64 << shift);
        let within = &self.codes[node.range.start as usize..node.range.end as usize];
        let start = node.range.start as usize + within.partition_point(|c| c.bits() < lo);
        let end = node.range.start as usize + within.partition_point(|c| c.bits() < hi);
        start..end
    }

    /// Number of points inside the voxel `code`.
    #[inline]
    pub fn voxel_point_count(&self, code: MortonCode) -> usize {
        self.voxel_range(code).len()
    }

    /// SFC addresses of all points inside `query`, found by pruned tree
    /// traversal — the spatial-database range query the paper's §VIII
    /// generality claim builds on (its \[25\] indexes point clouds in an
    /// Oracle Spatial octree the same way).
    pub fn points_in_aabb(&self, query: &Aabb) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, self.root_bounds)];
        while let Some((id, bounds)) = stack.pop() {
            if !bounds.intersects(query) {
                continue;
            }
            let node = self.node(id);
            // Fully covered voxel: take the whole contiguous range.
            if query.contains(bounds.min()) && query.contains(bounds.max()) {
                out.extend(node.point_range());
                continue;
            }
            if node.is_leaf() {
                for i in node.point_range() {
                    if query.contains(self.points.point(i)) {
                        out.push(i);
                    }
                }
                continue;
            }
            for octant in hgpcn_geometry::Octant::ALL {
                if let Some(child) = node.child(octant) {
                    stack.push((child, bounds.octant_bounds(octant)));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Index (relative to `range.start`) of the first code in `range` that does
/// not belong to the voxel `child_code`.
fn partition_end(codes: &[MortonCode], range: Range<u32>, child_code: MortonCode) -> usize {
    let slice = &codes[range.start as usize..range.end as usize];
    let max_depth = codes[0].level();
    let shift = 3 * (max_depth - child_code.level()) as u32;
    let hi = (child_code.bits() + 1) << shift;
    slice.partition_point(|c| c.bits() < hi)
}

/// Reusable per-stream build state (the octree half of a stream-scoped
/// preprocessing context).
///
/// Carries two kinds of state across the frames of one stream:
///
/// * **scratch capacity** — every buffer [`Octree::build`] would otherwise
///   allocate per frame (raw/sorted code arrays, permutation, merge
///   workspace, and — via [`OctreeScratch::recycle`] — the node arena and
///   reorganized cloud of a consumed tree);
/// * **the warm cache** — the previous frame's root grid, raw-order Morton
///   codes, and permutation, which lets
///   [`Octree::build_with_scratch`] replace the full SFC sort with an
///   adaptive merge over a near-sorted order when consecutive frames share
///   a grid (§V-A temporal coherence).
///
/// The cache is a pure accelerator: build results are bit-identical whether
/// it is fresh, stale, or absent. Sharing one scratch across *unrelated*
/// streams is therefore safe but defeats the warm path; give each stream
/// its own.
#[derive(Clone, Debug, Default)]
pub struct OctreeScratch {
    /// Root grid of the cached frame; `None` until the first successful
    /// build or after [`OctreeScratch::invalidate`].
    grid: Option<(Aabb, OctreeConfig)>,
    /// Cached permutation (SFC position → raw index) of the previous frame.
    prev_perm: Vec<usize>,
    /// Cached Morton codes of the previous frame, in raw point order.
    prev_codes: Vec<MortonCode>,
    /// Working buffer: this frame's codes in raw point order.
    raw_codes: Vec<MortonCode>,
    merge_buf: Vec<usize>,
    runs: Vec<(usize, usize)>,
    runs_next: Vec<(usize, usize)>,
    /// Working buffer: prefix counts of changed sorted positions (for the
    /// warm path's dirty-node estimate).
    dirty_prefix: Vec<u32>,
    spare_nodes: Vec<Node>,
    spare_codes: Vec<MortonCode>,
    spare_perm: Vec<usize>,
    spare_points: PointCloud,
}

impl OctreeScratch {
    /// Creates an empty scratch (no cache, no capacity).
    pub fn new() -> OctreeScratch {
        OctreeScratch::default()
    }

    /// `true` if a build over `cloud` with `config` would take the warm
    /// path: the cloud's computed root grid is bit-equal to the cached one.
    /// Exposed so callers can price the build before running it.
    pub fn is_warm_for(&self, cloud: &PointCloud, config: OctreeConfig) -> bool {
        let Some((cached_bounds, cached_config)) = self.grid else {
            return false;
        };
        if cached_config != config {
            return false;
        }
        let Some(bounds) = cloud.bounds() else {
            return false;
        };
        let margin = (bounds.diagonal() * 1e-6).max(f32::MIN_POSITIVE);
        bounds.inflate(margin).cubified() == cached_bounds
    }

    /// Root grid of the cached frame, if any.
    #[inline]
    pub fn cached_grid(&self) -> Option<(Aabb, OctreeConfig)> {
        self.grid
    }

    /// Drops the warm cache (e.g. on a stream discontinuity) while keeping
    /// all buffer capacity. The next build runs cold.
    pub fn invalidate(&mut self) {
        self.grid = None;
        self.prev_perm.clear();
        self.prev_codes.clear();
    }

    /// Reclaims the heap buffers of a tree this scratch (or a cold build)
    /// produced, once the caller is done with it. Purely a capacity
    /// optimization — skipping it never affects results, it just makes the
    /// next build allocate.
    pub fn recycle(&mut self, tree: Octree) {
        let Octree {
            nodes,
            points,
            permutation,
            codes,
            ..
        } = tree;
        self.spare_nodes = nodes;
        self.spare_nodes.clear();
        self.spare_codes = codes;
        self.spare_codes.clear();
        self.spare_perm = permutation;
        self.spare_perm.clear();
        self.spare_points = points;
    }
}

/// Counts nodes whose Octree-Table row may differ from the cached previous
/// frame's — the rows the §V-A incremental table update must re-emit while
/// clean rows persist in BRAM.
///
/// The test is positional: sorted position `i` is *changed* when this
/// frame's code there differs from what the previous frame's sorted order
/// held at `i` (positions past the shorter frame are always changed), and a
/// node is dirty when any position inside **or immediately adjacent to**
/// its range changed, or when the frame length changed and its range
/// touches the tail. The adjacency slack makes the estimate conservative:
/// a node's row can only differ from its previous incarnation if its code
/// run grew, shrank, or moved, and every such shift puts a changed code at
/// or next to one of its boundaries. Clean nodes are therefore guaranteed
/// unchanged rows; the count can only err high (e.g. a boundary-adjacent
/// change in a sibling flags this node too).
fn dirty_nodes(
    nodes: &[Node],
    codes: &[MortonCode],
    prev_codes: &[MortonCode],
    prev_perm: &[usize],
    prefix: &mut Vec<u32>,
) -> usize {
    let n = codes.len();
    let prev_n = prev_perm.len();
    prefix.clear();
    prefix.reserve(n + 1);
    prefix.push(0);
    let mut acc = 0u32;
    for (i, &code) in codes.iter().enumerate() {
        let changed = i >= prev_n || prev_codes[prev_perm[i]] != code;
        acc += changed as u32;
        prefix.push(acc);
    }
    let tail_changed = n != prev_n;
    nodes
        .iter()
        .filter(|node| {
            let hi = node.range.end as usize;
            if tail_changed && hi >= n {
                return true;
            }
            let lo = (node.range.start as usize).saturating_sub(1);
            prefix[(hi + 1).min(n)] > prefix[lo]
        })
        .count()
}

/// Sorts `perm` by the strict key `(codes[i], i)` with a bottom-up natural
/// merge: detect the maximal ascending runs already present, then merge
/// adjacent runs pairwise until one remains. On an already-sorted seed this
/// is a single `n - 1`-comparison verification pass; on a near-sorted seed
/// the run count — and so the merge work — scales with the disorder, not
/// with `n log n`. `comparisons` is incremented once per key comparison.
fn adaptive_merge_by_code(
    perm: &mut [usize],
    codes: &[MortonCode],
    buf: &mut Vec<usize>,
    runs: &mut Vec<(usize, usize)>,
    runs_next: &mut Vec<(usize, usize)>,
    comparisons: &mut usize,
) {
    let n = perm.len();
    if n < 2 {
        return;
    }
    let key = |i: usize| (codes[i], i);

    runs.clear();
    let mut start = 0;
    for i in 1..n {
        *comparisons += 1;
        if key(perm[i - 1]) > key(perm[i]) {
            runs.push((start, i));
            start = i;
        }
    }
    runs.push((start, n));

    while runs.len() > 1 {
        runs_next.clear();
        let mut k = 0;
        while k + 1 < runs.len() {
            let (a0, a1) = runs[k];
            let (b0, b1) = runs[k + 1];
            debug_assert_eq!(a1, b0);
            buf.clear();
            let (mut i, mut j) = (a0, b0);
            while i < a1 && j < b1 {
                *comparisons += 1;
                if key(perm[i]) <= key(perm[j]) {
                    buf.push(perm[i]);
                    i += 1;
                } else {
                    buf.push(perm[j]);
                    j += 1;
                }
            }
            buf.extend_from_slice(&perm[i..a1]);
            buf.extend_from_slice(&perm[j..b1]);
            perm[a0..b1].copy_from_slice(buf);
            runs_next.push((a0, b1));
            k += 2;
        }
        if k < runs.len() {
            runs_next.push(runs[k]);
        }
        std::mem::swap(runs, runs_next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cloud(n_per_axis: usize) -> PointCloud {
        let mut cloud = PointCloud::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    cloud.push(Point3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        cloud
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(
            Octree::build(&PointCloud::new(), OctreeConfig::default()).unwrap_err(),
            OctreeError::EmptyCloud
        );
    }

    #[test]
    fn build_rejects_huge_depth() {
        let cloud = grid_cloud(2);
        let err = Octree::build(&cloud, OctreeConfig::new().max_depth(40)).unwrap_err();
        assert!(matches!(err, OctreeError::DepthTooLarge { .. }));
    }

    #[test]
    fn build_rejects_nan() {
        let mut cloud = grid_cloud(2);
        cloud.push(Point3::new(f32::NAN, 0.0, 0.0));
        assert!(matches!(
            Octree::build(&cloud, OctreeConfig::default()).unwrap_err(),
            OctreeError::InvalidGeometry(_)
        ));
    }

    #[test]
    fn nodes_partition_points() {
        let cloud = grid_cloud(4);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(5).leaf_capacity(1)).unwrap();
        // Root covers everything.
        assert_eq!(tree.node(tree.root()).point_count(), cloud.len());
        // Children of every internal node partition its range exactly.
        for node in tree.nodes() {
            if node.is_leaf() {
                continue;
            }
            let total: usize = node.children().map(|c| tree.node(c).point_count()).sum();
            assert_eq!(total, node.point_count());
            // Child ranges are consecutive and ordered.
            let mut cursor = node.point_range().start;
            for child in node.children() {
                let r = tree.node(child).point_range();
                assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            assert_eq!(cursor, node.point_range().end);
        }
    }

    #[test]
    fn leaf_for_contains_the_point() {
        let cloud = grid_cloud(5);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(6).leaf_capacity(2)).unwrap();
        for i in 0..cloud.len() {
            let p = cloud.point(i);
            let leaf = tree.leaf_for(p).expect("point inside root");
            let node = tree.node(leaf);
            let bounds = node.code().decode_bounds(&tree.root_bounds());
            assert!(bounds.contains(p), "leaf voxel must contain its point");
        }
        assert!(tree.leaf_for(Point3::splat(1e6)).is_none());
    }

    #[test]
    fn voxel_range_matches_nodes() {
        let cloud = grid_cloud(4);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(4).leaf_capacity(1)).unwrap();
        for node in tree.nodes() {
            assert_eq!(tree.voxel_range(node.code()), node.point_range());
        }
    }

    #[test]
    fn node_at_finds_every_node() {
        let cloud = grid_cloud(3);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(4).leaf_capacity(1)).unwrap();
        for (i, node) in tree.nodes().iter().enumerate() {
            assert_eq!(tree.node_at(node.code()), Some(NodeId(i as u32)));
        }
    }

    #[test]
    fn permutation_is_valid_and_points_sorted() {
        let cloud = grid_cloud(4);
        let tree = Octree::build(&cloud, OctreeConfig::default()).unwrap();
        let mut perm = tree.permutation().to_vec();
        perm.sort_unstable();
        assert_eq!(perm, (0..cloud.len()).collect::<Vec<_>>());
        // Codes must be non-decreasing after reorganization.
        assert!(tree.point_codes().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stats_record_single_pass() {
        let cloud = grid_cloud(4);
        let tree = Octree::build(&cloud, OctreeConfig::default()).unwrap();
        let s = tree.build_stats();
        assert_eq!(s.points, 64);
        assert_eq!(s.point_reads, 64);
        assert_eq!(s.point_writes, 64);
        assert!(s.sort_comparisons > 0);
        assert!(s.nodes_created >= 1);
    }

    #[test]
    fn leaf_capacity_limits_leaf_sizes() {
        let cloud = grid_cloud(4);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(8).leaf_capacity(3)).unwrap();
        for node in tree.nodes() {
            if node.is_leaf() && node.level() < 8 {
                assert!(node.point_count() <= 3);
            }
        }
    }

    #[test]
    fn depth_cap_respected() {
        let cloud = grid_cloud(6);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(2).leaf_capacity(1)).unwrap();
        assert!(tree.depth() <= 2);
        assert!(tree.nodes().iter().all(|n| n.level() <= 2));
    }

    #[test]
    fn points_in_aabb_matches_brute_filter() {
        let cloud = grid_cloud(5);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(5).leaf_capacity(2)).unwrap();
        let query = Aabb::new(Point3::new(0.5, 0.5, 0.5), Point3::new(3.2, 2.7, 4.0));
        let got = tree.points_in_aabb(&query);
        let expect: Vec<usize> = (0..tree.points().len())
            .filter(|&i| query.contains(tree.points().point(i)))
            .collect();
        assert_eq!(got, expect);
        // Empty query region.
        let nothing = Aabb::new(Point3::splat(100.0), Point3::splat(101.0));
        assert!(tree.points_in_aabb(&nothing).is_empty());
        // Whole-root query returns everything.
        let all = tree.points_in_aabb(&tree.root_bounds());
        assert_eq!(all.len(), cloud.len());
    }

    fn assert_trees_bit_identical(a: &Octree, b: &Octree) {
        assert_eq!(a.root_bounds(), b.root_bounds());
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.root(), b.root());
        assert_eq!(a.point_codes(), b.point_codes());
        assert_eq!(a.permutation(), b.permutation());
        assert_eq!(a.points(), b.points());
        assert_eq!(a.depth(), b.depth());
    }

    #[test]
    fn scratch_identical_frame_reuses_and_matches_cold() {
        let cloud = grid_cloud(4);
        let cfg = OctreeConfig::new().max_depth(5).leaf_capacity(2);
        let mut scratch = OctreeScratch::new();

        let first = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();
        assert!(!first.build_stats().reused, "no cache on the first frame");
        assert_trees_bit_identical(&first, &Octree::build(&cloud, cfg).unwrap());

        assert!(scratch.is_warm_for(&cloud, cfg));
        let second = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();
        let stats = second.build_stats();
        assert!(stats.reused, "identical frame must take the warm path");
        assert_eq!(stats.dirty_points, 0, "no code moved");
        // Already-sorted seed: one verification pass, no merges.
        assert_eq!(stats.sort_comparisons, cloud.len() - 1);
        assert_trees_bit_identical(&second, &Octree::build(&cloud, cfg).unwrap());
    }

    #[test]
    fn scratch_drifted_frame_stays_bit_identical() {
        // Translate interior points while two anchor corners pin the AABB.
        let mut frame_a = PointCloud::new();
        frame_a.push(Point3::ORIGIN);
        frame_a.push(Point3::splat(10.0));
        for i in 0..200 {
            let t = i as f32;
            frame_a.push(Point3::new(
                1.0 + (t * 0.037) % 8.0,
                1.0 + (t * 0.091) % 8.0,
                1.0 + (t * 0.053) % 8.0,
            ));
        }
        let mut frame_b = PointCloud::new();
        frame_b.push(Point3::ORIGIN);
        frame_b.push(Point3::splat(10.0));
        for i in 0..200 {
            let t = i as f32;
            frame_b.push(Point3::new(
                1.0 + (t * 0.037 + 0.4) % 8.0,
                1.0 + (t * 0.091 + 0.2) % 8.0,
                1.0 + (t * 0.053 + 0.6) % 8.0,
            ));
        }
        let cfg = OctreeConfig::new().max_depth(6).leaf_capacity(2);
        let mut scratch = OctreeScratch::new();
        let a = Octree::build_with_scratch(&frame_a, cfg, &mut scratch).unwrap();
        scratch.recycle(a);
        let b = Octree::build_with_scratch(&frame_b, cfg, &mut scratch).unwrap();
        let stats = b.build_stats();
        assert!(stats.reused, "same AABB frame must take the warm path");
        assert!(stats.dirty_points > 0, "drift must dirty some codes");
        assert_trees_bit_identical(&b, &Octree::build(&frame_b, cfg).unwrap());
    }

    #[test]
    fn scratch_aabb_drift_falls_back_to_cold() {
        let cloud = grid_cloud(3);
        let cfg = OctreeConfig::default();
        let mut scratch = OctreeScratch::new();
        let _ = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();

        let mut grown = grid_cloud(3);
        grown.push(Point3::splat(50.0));
        assert!(!scratch.is_warm_for(&grown, cfg));
        let tree = Octree::build_with_scratch(&grown, cfg, &mut scratch).unwrap();
        assert!(!tree.build_stats().reused, "AABB growth must rebuild cold");
        assert_eq!(tree.build_stats().dirty_points, grown.len());
        assert_trees_bit_identical(&tree, &Octree::build(&grown, cfg).unwrap());
        // The fallback refreshed the cache: the grown frame is now warm.
        assert!(scratch.is_warm_for(&grown, cfg));
    }

    #[test]
    fn scratch_config_change_falls_back_to_cold() {
        let cloud = grid_cloud(3);
        let mut scratch = OctreeScratch::new();
        let _ = Octree::build_with_scratch(&cloud, OctreeConfig::default(), &mut scratch).unwrap();
        let cfg2 = OctreeConfig::new().max_depth(3).leaf_capacity(1);
        let tree = Octree::build_with_scratch(&cloud, cfg2, &mut scratch).unwrap();
        assert!(!tree.build_stats().reused);
        assert_trees_bit_identical(&tree, &Octree::build(&cloud, cfg2).unwrap());
    }

    #[test]
    fn scratch_invalidate_forces_cold() {
        let cloud = grid_cloud(3);
        let cfg = OctreeConfig::default();
        let mut scratch = OctreeScratch::new();
        let _ = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();
        scratch.invalidate();
        assert!(!scratch.is_warm_for(&cloud, cfg));
        let tree = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();
        assert!(!tree.build_stats().reused);
        assert_trees_bit_identical(&tree, &Octree::build(&cloud, cfg).unwrap());
    }

    #[test]
    fn scratch_point_count_changes_stay_identical() {
        // Same AABB, different point counts: warm seeding must handle both
        // shrink (drop stale indices) and growth (append fresh ones).
        let cfg = OctreeConfig::new().max_depth(5).leaf_capacity(2);
        let mut scratch = OctreeScratch::new();
        let counts = [40usize, 64, 12, 1, 64];
        for &n in &counts {
            let mut cloud = PointCloud::new();
            cloud.push(Point3::ORIGIN);
            if n > 1 {
                cloud.push(Point3::splat(9.0));
            }
            for i in 2..n {
                let t = i as f32;
                cloud.push(Point3::new(t % 9.0, (t * 3.0) % 9.0, (t * 7.0) % 9.0));
            }
            let got = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();
            assert_trees_bit_identical(&got, &Octree::build(&cloud, cfg).unwrap());
        }
    }

    #[test]
    fn scratch_errors_leave_cache_untouched() {
        let cloud = grid_cloud(3);
        let cfg = OctreeConfig::default();
        let mut scratch = OctreeScratch::new();
        let _ = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();
        let cached = scratch.cached_grid();

        assert_eq!(
            Octree::build_with_scratch(&PointCloud::new(), cfg, &mut scratch).unwrap_err(),
            OctreeError::EmptyCloud
        );
        let mut bad = grid_cloud(2);
        bad.push(Point3::new(f32::NAN, 0.0, 0.0));
        assert!(Octree::build_with_scratch(&bad, cfg, &mut scratch).is_err());

        assert_eq!(scratch.cached_grid(), cached);
        let tree = Octree::build_with_scratch(&cloud, cfg, &mut scratch).unwrap();
        assert!(
            tree.build_stats().reused,
            "cache survived the failed frames"
        );
        assert_trees_bit_identical(&tree, &Octree::build(&cloud, cfg).unwrap());
    }

    #[test]
    fn duplicate_points_share_leaf() {
        let mut cloud = PointCloud::new();
        for _ in 0..10 {
            cloud.push(Point3::splat(0.5));
        }
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(4).leaf_capacity(1)).unwrap();
        // All duplicates collapse into one deep leaf of 10 points.
        let leaf = tree.leaf_for(Point3::splat(0.5)).unwrap();
        assert_eq!(tree.node(leaf).point_count(), 10);
    }
}
