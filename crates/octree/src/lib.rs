//! Octree spatial index — the substrate both HgPCN methods are built on.
//!
//! The paper's Octree-build Unit (§V-A, running on the CPU) makes a single
//! pass over the raw frame to
//!
//! 1. assign every point an **m-code** (Morton code) by recursive octant
//!    subdivision,
//! 2. **reorganize** the frame in host memory into space-filling-curve (SFC)
//!    order, so every voxel's points occupy consecutive addresses, and
//! 3. emit a compact **Octree-Table** that maps voxels to those address
//!    ranges, transferred to the FPGA over MMIO.
//!
//! This crate reproduces all three:
//!
//! * [`Octree`] — the pointer-style tree with per-node point ranges;
//! * [`OctreeTable`] — the flattened table with an explicit bit-size model
//!   (used for the Fig. 13 on-chip memory comparison);
//! * [`neighbor`] — voxel-shell enumeration for VEG's voxel expansion (§VI);
//! * [`BuildStats`] — operation counts charged by the memory simulator.
//!
//! # Examples
//!
//! ```
//! use hgpcn_geometry::{Point3, PointCloud};
//! use hgpcn_octree::{Octree, OctreeConfig};
//!
//! let cloud: PointCloud = (0..100)
//!     .map(|i| Point3::new((i % 10) as f32, (i / 10) as f32, 0.0))
//!     .collect();
//! let octree = Octree::build(&cloud, OctreeConfig::default())?;
//! assert_eq!(octree.points().len(), 100);
//! # Ok::<(), hgpcn_octree::OctreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod error;
pub mod neighbor;
mod node;
mod stats;
mod table;
mod tree;

pub use build::OctreeConfig;
pub use error::OctreeError;
pub use node::{Node, NodeId};
pub use stats::BuildStats;
pub use table::{OctreeTable, TableEntry};
pub use tree::{Octree, OctreeScratch};
