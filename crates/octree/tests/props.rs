//! Property tests for the octree: structural invariants over arbitrary
//! clouds.

use proptest::prelude::*;

use hgpcn_geometry::{MortonCode, Point3, PointCloud};
use hgpcn_octree::{neighbor, Octree, OctreeConfig, OctreeTable};

fn arb_cloud() -> impl Strategy<Value = PointCloud> {
    prop::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0), 1..250).prop_map(
        |pts| {
            pts.into_iter()
                .map(|(x, y, z)| Point3::new(x, y, z))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Children's ranges tile their parent's range in order, at every node.
    #[test]
    fn ranges_are_nested_and_ordered(cloud in arb_cloud(), cap in 1usize..6) {
        let tree = Octree::build(&cloud, OctreeConfig::new().max_depth(7).leaf_capacity(cap)).unwrap();
        for node in tree.nodes() {
            if node.is_leaf() {
                continue;
            }
            let mut cursor = node.point_range().start;
            for child in node.children() {
                let r = tree.node(child).point_range();
                prop_assert_eq!(r.start, cursor);
                prop_assert!(r.end <= node.point_range().end);
                cursor = r.end;
            }
            prop_assert_eq!(cursor, node.point_range().end);
        }
    }

    /// voxel_range at any level equals the brute-force prefix filter.
    #[test]
    fn voxel_range_matches_brute_filter(cloud in arb_cloud(), level in 0u8..5) {
        let tree = Octree::build(&cloud, OctreeConfig::new().max_depth(6)).unwrap();
        let codes = tree.point_codes();
        // Probe the voxel of the first point at the given level.
        let voxel = codes[0].ancestor_at(level);
        let range = tree.voxel_range(voxel);
        for (i, code) in codes.iter().enumerate() {
            let inside = code.ancestor_at(level) == voxel;
            prop_assert_eq!(range.contains(&i), inside, "point {}", i);
        }
    }

    /// Every point's voxel at max depth contains exactly the points that
    /// share its code.
    #[test]
    fn leaf_voxels_group_equal_codes(cloud in arb_cloud()) {
        let tree = Octree::build(&cloud, OctreeConfig::new().max_depth(5).leaf_capacity(1)).unwrap();
        let codes = tree.point_codes();
        for (i, code) in codes.iter().enumerate() {
            let range = tree.voxel_range(*code);
            prop_assert!(range.contains(&i));
            for j in range {
                prop_assert_eq!(codes[j], *code);
            }
        }
    }

    /// The flattened table and the tree agree on every node, and the table
    /// size model is exact.
    #[test]
    fn table_is_a_faithful_flattening(cloud in arb_cloud()) {
        let tree = Octree::build(&cloud, OctreeConfig::new().max_depth(6).leaf_capacity(3)).unwrap();
        let table = OctreeTable::from_octree(&tree);
        prop_assert_eq!(table.len(), tree.node_count());
        prop_assert_eq!(table.size_bits(), table.len() * OctreeTable::ENTRY_BITS);
        for node in tree.nodes() {
            let (idx, lookups) = table.walk(node.code());
            prop_assert_eq!(u64::from(lookups), u64::from(node.level()) + 1);
            prop_assert_eq!(table.entry(idx).point_count as usize, node.point_count());
        }
    }

    /// Shell enumeration: shells are disjoint, distance-correct, and their
    /// union over 0..=s is the clipped Chebyshev ball.
    #[test]
    fn shells_partition_the_ball(x in 0u32..16, y in 0u32..16, z in 0u32..16, s in 0u32..4) {
        let center = MortonCode::from_grid_coords(x, y, z, 4);
        let mut seen = std::collections::HashSet::new();
        for shell in 0..=s {
            for v in neighbor::shell_codes(center, shell) {
                prop_assert_eq!(center.chebyshev_distance(v), shell);
                prop_assert!(seen.insert(v), "duplicate voxel across shells");
            }
        }
        let ball = neighbor::ball_codes(center, s);
        prop_assert_eq!(ball.len(), seen.len());
    }

    /// Depth never exceeds the cap and the build is deterministic.
    #[test]
    fn build_is_deterministic_and_bounded(cloud in arb_cloud(), depth in 1u8..8) {
        let cfg = OctreeConfig::new().max_depth(depth).leaf_capacity(2);
        let a = Octree::build(&cloud, cfg).unwrap();
        let b = Octree::build(&cloud, cfg).unwrap();
        prop_assert!(a.depth() <= depth);
        prop_assert_eq!(a.permutation(), b.permutation());
        prop_assert_eq!(a.node_count(), b.node_count());
    }
}
