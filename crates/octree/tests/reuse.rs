//! Property tests for the stream-scoped warm build path: across arbitrary
//! drift sequences — including empty frames, single-point frames, point-count
//! changes and AABB drift — `Octree::build_with_scratch` must be
//! bit-identical to a cold `Octree::build` on every frame, taking the warm
//! path exactly when consecutive frames share a root grid.

use proptest::prelude::*;

use hgpcn_geometry::{Aabb, Point3, PointCloud};
use hgpcn_octree::{Octree, OctreeConfig, OctreeScratch, OctreeTable};

/// One frame of a synthetic stream.
#[derive(Clone, Debug)]
enum Frame {
    /// Anchored drift: two fixed corner points pin the AABB while `n`
    /// interior points translate by `shift` — the warm-path case.
    Drift { n: usize, shift: f32 },
    /// Single anchored point only (degenerate AABB → cold rebuild).
    Single,
    /// No points at all (both build paths must error identically).
    Empty,
    /// Drift plus an outlier that grows the AABB → cold fall-back.
    Grown { n: usize, shift: f32 },
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    // (selector, n, shift) → Frame, weighted toward the drift case.
    (0u32..10, 1usize..120, 0.0f32..4.0).prop_map(|(kind, n, shift)| match kind {
        0..=5 => Frame::Drift { n, shift },
        6 => Frame::Single,
        7 => Frame::Empty,
        _ => Frame::Grown { n, shift },
    })
}

fn materialize(frame: &Frame) -> PointCloud {
    let mut cloud = PointCloud::new();
    match *frame {
        Frame::Drift { n, shift } | Frame::Grown { n, shift } => {
            cloud.push(Point3::ORIGIN);
            cloud.push(Point3::splat(16.0));
            for i in 0..n {
                let t = i as f32;
                cloud.push(Point3::new(
                    1.0 + (t * 0.613 + shift) % 13.0,
                    1.0 + (t * 1.371 + shift * 0.5) % 13.0,
                    1.0 + (t * 0.257 + shift * 2.0) % 13.0,
                ));
            }
            if matches!(*frame, Frame::Grown { .. }) {
                cloud.push(Point3::splat(40.0));
            }
        }
        Frame::Single => cloud.push(Point3::splat(3.0)),
        Frame::Empty => {}
    }
    cloud
}

fn assert_bit_identical(warm: &Octree, cold: &Octree) {
    assert_eq!(warm.root_bounds(), cold.root_bounds(), "root grid");
    assert_eq!(warm.nodes(), cold.nodes(), "node arena");
    assert_eq!(warm.root(), cold.root(), "root id");
    assert_eq!(warm.point_codes(), cold.point_codes(), "sorted codes");
    assert_eq!(warm.permutation(), cold.permutation(), "permutation");
    assert_eq!(warm.points(), cold.points(), "reorganized cloud");
    let wt = OctreeTable::from_octree(warm);
    let ct = OctreeTable::from_octree(cold);
    assert_eq!(wt.len(), ct.len(), "table length");
    for i in 0..wt.len() as u32 {
        assert_eq!(wt.entry(i), ct.entry(i), "table entry {i}");
    }
}

fn root_grid(cloud: &PointCloud) -> Option<Aabb> {
    let bounds = cloud.bounds()?;
    let margin = (bounds.diagonal() * 1e-6).max(f32::MIN_POSITIVE);
    Some(bounds.inflate(margin).cubified())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Across a random frame sequence, every scratch build is bit-identical
    /// to a cold build of the same frame, and the warm path engages exactly
    /// when the previous successful frame shared the root grid.
    #[test]
    fn drift_sequences_are_bit_identical_to_cold(
        frames in prop::collection::vec(arb_frame(), 1..10),
        depth in 3u8..7,
        cap in 1usize..4,
    ) {
        let cfg = OctreeConfig::new().max_depth(depth).leaf_capacity(cap);
        let mut scratch = OctreeScratch::new();
        let mut prev_grid: Option<Aabb> = None;
        for (k, frame) in frames.iter().enumerate() {
            let cloud = materialize(frame);
            let cold = Octree::build(&cloud, cfg);
            let warm = Octree::build_with_scratch(&cloud, cfg, &mut scratch);
            match (cold, warm) {
                (Err(ce), Err(we)) => {
                    prop_assert_eq!(ce, we, "frame {}: paths must fail alike", k);
                    // A failed frame must not perturb the cache.
                    continue;
                }
                (Ok(cold), Ok(warm)) => {
                    let expect_warm = prev_grid.is_some() && prev_grid == root_grid(&cloud);
                    prop_assert_eq!(
                        warm.build_stats().reused, expect_warm,
                        "frame {}: warm-path engagement", k
                    );
                    prop_assert!(warm.build_stats().dirty_points <= cloud.len());
                    assert_bit_identical(&warm, &cold);
                    prev_grid = Some(warm.root_bounds());
                    // Recycle every other tree so both the recycled and the
                    // fresh-allocation paths are exercised.
                    if k % 2 == 0 {
                        scratch.recycle(warm);
                    }
                }
                (cold, warm) => {
                    prop_assert!(false, "frame {}: paths disagree on success: cold={:?} warm={:?}",
                        k, cold.map(|_| ()), warm.map(|_| ()));
                }
            }
        }
    }

    /// A scrambled (adversarial) cache still yields bit-identical results:
    /// the warm merge's strict (code, index) key makes the cached order a
    /// pure accelerator, never a correctness input.
    #[test]
    fn warm_path_is_immune_to_cache_staleness(
        n in 2usize..150,
        shift_a in 0.0f32..4.0,
        shift_b in 0.0f32..4.0,
    ) {
        let cfg = OctreeConfig::new().max_depth(6).leaf_capacity(2);
        let mut scratch = OctreeScratch::new();
        let a = materialize(&Frame::Drift { n, shift: shift_a });
        let b = materialize(&Frame::Drift { n, shift: shift_b });
        let _ = Octree::build_with_scratch(&a, cfg, &mut scratch).unwrap();
        // `b` drifted arbitrarily far from `a`, yet shares its AABB: the
        // warm path must engage and still match cold exactly.
        let warm = Octree::build_with_scratch(&b, cfg, &mut scratch).unwrap();
        prop_assert!(warm.build_stats().reused);
        assert_bit_identical(&warm, &Octree::build(&b, cfg).unwrap());
    }
}
