//! Morton codes ("m-codes") and the space-filling-curve order.
//!
//! The paper's octree labels every voxel with an m-code: 3 new bits per
//! subdivision level (2 in the quadtree illustration of Fig. 5), where the
//! first bit is the X half, the second the Y half and the third the Z half
//! of the parent voxel. The concatenated code of a voxel at level `L` is the
//! `3·L`-bit path from the root; sorting leaf codes lexicographically yields
//! the SFC traversal order used to linearize the frame in host memory.
//!
//! The Down-sampling Unit measures "distance" between two voxels as the
//! **Hamming distance of their m-codes** ([`MortonCode::hamming_distance`]) —
//! an XOR + popcount that the paper's Sampling Modules evaluate in one cycle
//! (§V-B, Fig. 7).

use std::cmp::Ordering;
use std::fmt;

use crate::{Aabb, Octant, Point3};

/// Maximum supported octree depth (21 levels × 3 bits = 63 bits ≤ u64).
pub const MAX_LEVEL: u8 = 21;

/// A variable-level Morton code: the path of [`Octant`] choices from the
/// octree root down to a voxel.
///
/// `level == 0` is the root voxel (empty code). Codes at different levels
/// are *different voxels* even when one prefixes the other.
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::{MortonCode, Octant};
///
/// let root = MortonCode::root();
/// let v = root.child(Octant::new(0b110).unwrap());
/// assert_eq!(v.level(), 1);
/// assert_eq!(v.to_string(), "110");
/// assert_eq!(v.parent(), Some(root));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MortonCode {
    bits: u64,
    level: u8,
}

impl MortonCode {
    /// The root voxel's (empty) code.
    #[inline]
    pub const fn root() -> MortonCode {
        MortonCode { bits: 0, level: 0 }
    }

    /// Builds a code from raw bits and a level.
    ///
    /// # Panics
    ///
    /// Panics if `level > MAX_LEVEL` or if `bits` has set bits above
    /// `3 * level`.
    #[inline]
    pub fn from_bits(bits: u64, level: u8) -> MortonCode {
        assert!(
            level <= MAX_LEVEL,
            "level {level} exceeds MAX_LEVEL {MAX_LEVEL}"
        );
        assert!(
            level == MAX_LEVEL || bits >> (3 * level) == 0,
            "bits 0x{bits:x} wider than 3*{level}"
        );
        MortonCode { bits, level }
    }

    /// Raw code bits (the low `3 * level()` bits).
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Depth of the voxel below the root.
    #[inline]
    pub fn level(self) -> u8 {
        self.level
    }

    /// The code of the child voxel in the given octant.
    ///
    /// # Panics
    ///
    /// Panics if the code is already at [`MAX_LEVEL`].
    #[inline]
    pub fn child(self, octant: Octant) -> MortonCode {
        assert!(self.level < MAX_LEVEL, "cannot descend below MAX_LEVEL");
        MortonCode {
            bits: (self.bits << 3) | u64::from(octant.index()),
            level: self.level + 1,
        }
    }

    /// The parent voxel's code, or `None` for the root.
    #[inline]
    pub fn parent(self) -> Option<MortonCode> {
        (self.level > 0).then(|| MortonCode {
            bits: self.bits >> 3,
            level: self.level - 1,
        })
    }

    /// The octant this voxel occupies inside its parent, or `None` for the
    /// root.
    #[inline]
    pub fn octant_in_parent(self) -> Option<Octant> {
        (self.level > 0).then(|| Octant::new((self.bits & 0b111) as u8).expect("3-bit value"))
    }

    /// The ancestor voxel at `level` (`ancestor_at(level()) == self`).
    ///
    /// # Panics
    ///
    /// Panics if `level > self.level()`.
    #[inline]
    pub fn ancestor_at(self, level: u8) -> MortonCode {
        assert!(
            level <= self.level,
            "ancestor level {level} below own level {}",
            self.level
        );
        MortonCode {
            bits: self.bits >> (3 * (self.level - level)),
            level,
        }
    }

    /// Hamming distance between two codes **at the same level**: the popcount
    /// of their XOR. This is the voxel-distance proxy evaluated by each
    /// Sampling Module (one XOR, Fig. 7(a)).
    ///
    /// # Panics
    ///
    /// Panics if the levels differ.
    #[inline]
    pub fn hamming_distance(self, other: MortonCode) -> u32 {
        assert_eq!(
            self.level, other.level,
            "Hamming distance requires equal levels"
        );
        (self.bits ^ other.bits).count_ones()
    }

    /// The code of the voxel at `level` containing point `p` inside `root`.
    ///
    /// Descends `level` subdivisions, picking the octant of `p` each time —
    /// the same per-point walk the Octree-build Unit performs in its single
    /// pass over the frame (§V-A).
    ///
    /// # Panics
    ///
    /// Panics if `level > MAX_LEVEL`.
    pub fn encode(p: Point3, root: &Aabb, level: u8) -> MortonCode {
        assert!(
            level <= MAX_LEVEL,
            "level {level} exceeds MAX_LEVEL {MAX_LEVEL}"
        );
        let mut code = MortonCode::root();
        let mut voxel = *root;
        for _ in 0..level {
            let oct = voxel.octant_of(p);
            voxel = voxel.octant_bounds(oct);
            code = code.child(oct);
        }
        code
    }

    /// The bounds of this voxel inside `root`.
    pub fn decode_bounds(self, root: &Aabb) -> Aabb {
        let mut voxel = *root;
        for lvl in 1..=self.level {
            let shift = 3 * (self.level - lvl);
            let oct = Octant::new(((self.bits >> shift) & 0b111) as u8).expect("3-bit value");
            voxel = voxel.octant_bounds(oct);
        }
        voxel
    }

    /// Integer grid coordinates `(x, y, z)` of this voxel at its own level
    /// (each in `0..2^level`), de-interleaved from the code bits with the
    /// standard parallel-bit (magic-mask) Morton decode — equivalent to
    /// the per-level loop it replaced, but constant-time; this runs once
    /// per scoreboard voxel per OIS pick and once per shell voxel in VEG,
    /// which made the bit-loop a measurable share of the serving floor.
    pub fn grid_coords(self) -> (u32, u32, u32) {
        (
            compact_every_third_bit(self.bits >> 2),
            compact_every_third_bit(self.bits >> 1),
            compact_every_third_bit(self.bits),
        )
    }

    /// Builds the code at `level` from integer grid coordinates by bit
    /// interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `level > MAX_LEVEL` or any coordinate is `>= 2^level`.
    pub fn from_grid_coords(x: u32, y: u32, z: u32, level: u8) -> MortonCode {
        assert!(
            level <= MAX_LEVEL,
            "level {level} exceeds MAX_LEVEL {MAX_LEVEL}"
        );
        let limit = 1u64 << level;
        assert!(
            u64::from(x) < limit && u64::from(y) < limit && u64::from(z) < limit,
            "grid coords ({x},{y},{z}) out of range for level {level}"
        );
        let bits = (spread_every_third_bit(x) << 2)
            | (spread_every_third_bit(y) << 1)
            | spread_every_third_bit(z);
        MortonCode { bits, level }
    }

    /// Chebyshev (max-axis) grid distance to `other` at the same level —
    /// the shell index used by VEG voxel expansion (§VI): shell 1 contains
    /// all voxels *touching* the seed voxel.
    ///
    /// # Panics
    ///
    /// Panics if the levels differ.
    pub fn chebyshev_distance(self, other: MortonCode) -> u32 {
        assert_eq!(
            self.level, other.level,
            "Chebyshev distance requires equal levels"
        );
        let (ax, ay, az) = self.grid_coords();
        let (bx, by, bz) = other.grid_coords();
        let d = |a: u32, b: u32| a.abs_diff(b);
        d(ax, bx).max(d(ay, by)).max(d(az, bz))
    }
}

/// Gathers every third bit of `v` (positions 0, 3, 6, …) into a dense
/// low-order integer — the Morton de-interleave for one axis, done with
/// the classic magic-mask reduction instead of a per-bit loop. Inverse
/// of [`spread_every_third_bit`].
#[inline]
fn compact_every_third_bit(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x001f_ffff;
    x as u32
}

/// Spreads the low 21 bits of `v` so bit `i` lands at position `3 i` —
/// the Morton interleave for one axis. Inverse of
/// [`compact_every_third_bit`].
#[inline]
fn spread_every_third_bit(v: u32) -> u64 {
    let mut x = u64::from(v) & 0x001f_ffff;
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

impl PartialOrd for MortonCode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MortonCode {
    /// SFC order: compares the shared-depth prefixes first, then lets the
    /// shallower (ancestor) code come first. Restricted to codes of a single
    /// level this is plain lexicographic order of the octant paths.
    fn cmp(&self, other: &Self) -> Ordering {
        let common = self.level.min(other.level);
        let a = self.bits >> (3 * (self.level - common));
        let b = other.bits >> (3 * (other.level - common));
        a.cmp(&b).then(self.level.cmp(&other.level))
    }
}

impl fmt::Debug for MortonCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MortonCode({self})")
    }
}

impl fmt::Display for MortonCode {
    /// Renders the code as the concatenated 3-bit octant labels, e.g.
    /// `"110101"` for a level-2 voxel; the root renders as `"ε"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.level == 0 {
            return write!(f, "ε");
        }
        for lvl in 1..=self.level {
            let shift = 3 * (self.level - lvl);
            write!(f, "{:03b}", (self.bits >> shift) & 0b111)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_parent_round_trip() {
        let mut code = MortonCode::root();
        for oct in [3u8, 7, 0, 5] {
            code = code.child(Octant::new(oct).unwrap());
        }
        assert_eq!(code.level(), 4);
        assert_eq!(code.octant_in_parent().unwrap().index(), 5);
        let back = code
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        assert_eq!(back, MortonCode::root());
        assert!(MortonCode::root().parent().is_none());
    }

    #[test]
    fn encode_decode_bounds_contains_point() {
        let root = Aabb::unit();
        let p = Point3::new(0.3, 0.7, 0.1);
        for level in 0..8 {
            let code = MortonCode::encode(p, &root, level);
            assert!(code.decode_bounds(&root).contains(p), "level {level}");
        }
    }

    #[test]
    fn grid_coords_round_trip() {
        for level in 1..6u8 {
            let n = 1u32 << level;
            for (x, y, z) in [(0, 0, 0), (n - 1, n - 1, n - 1), (1 % n, n / 2, n - 1)] {
                let code = MortonCode::from_grid_coords(x, y, z, level);
                assert_eq!(code.grid_coords(), (x, y, z));
            }
        }
    }

    #[test]
    fn hamming_distance_is_xor_popcount() {
        let a = MortonCode::from_bits(0b000_000, 2);
        let b = MortonCode::from_bits(0b110_101, 2);
        assert_eq!(a.hamming_distance(b), 4);
        assert_eq!(a.hamming_distance(a), 0);
    }

    #[test]
    #[should_panic(expected = "equal levels")]
    fn hamming_distance_level_mismatch_panics() {
        let a = MortonCode::from_bits(0b000, 1);
        let b = MortonCode::from_bits(0b000_000, 2);
        let _ = a.hamming_distance(b);
    }

    #[test]
    fn chebyshev_shell_of_touching_voxels_is_one() {
        let level = 3;
        let seed = MortonCode::from_grid_coords(3, 3, 3, level);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let n = MortonCode::from_grid_coords(
                        (3 + dx) as u32,
                        (3 + dy) as u32,
                        (3 + dz) as u32,
                        level,
                    );
                    assert_eq!(seed.chebyshev_distance(n), 1);
                }
            }
        }
    }

    #[test]
    fn sfc_order_matches_octant_paths() {
        let root = MortonCode::root();
        let a = root
            .child(Octant::new(0).unwrap())
            .child(Octant::new(7).unwrap());
        let b = root
            .child(Octant::new(1).unwrap())
            .child(Octant::new(0).unwrap());
        assert!(a < b);
        // An ancestor precedes its descendants.
        let anc = root.child(Octant::new(1).unwrap());
        assert!(anc < b);
        assert!(a < anc);
    }

    #[test]
    fn ancestor_at_prefix() {
        let root = Aabb::unit();
        let code = MortonCode::encode(Point3::new(0.9, 0.2, 0.6), &root, 6);
        let anc = code.ancestor_at(2);
        assert_eq!(anc.level(), 2);
        assert_eq!(code.ancestor_at(6), code);
        assert!(anc
            .decode_bounds(&root)
            .contains(Point3::new(0.9, 0.2, 0.6)));
    }

    #[test]
    fn display_renders_bit_path() {
        let code = MortonCode::root()
            .child(Octant::new(0b110).unwrap())
            .child(Octant::new(0b011).unwrap());
        assert_eq!(code.to_string(), "110011");
        assert_eq!(MortonCode::root().to_string(), "ε");
    }

    #[test]
    fn encode_matches_manual_octants() {
        let root = Aabb::unit();
        // Point in the high-x/high-y/high-z corner: every level picks 0b111.
        let code = MortonCode::encode(Point3::splat(0.99), &root, 3);
        assert_eq!(code.bits(), 0b111_111_111);
    }
}
