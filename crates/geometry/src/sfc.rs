//! Space-filling-curve (SFC) ordering of point clouds.
//!
//! The Octree-build Unit reorganizes the raw frame in host memory into SFC
//! (Morton) order so that every leaf voxel's points sit at consecutive
//! addresses (§V-A, Fig. 5(b)). These helpers compute that permutation.

use crate::{Aabb, MortonCode, Point3, PointCloud};

/// Returns the permutation that sorts `points` into SFC order at `level`
/// inside `root`: element `k` of the result is the original index of the
/// `k`-th point in SFC order. The sort is stable, so points sharing a leaf
/// voxel keep their relative order (the paper's "intra-node point
/// arrangement also follows the SFC traversal").
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::{Aabb, Point3, sfc};
///
/// let pts = [Point3::new(0.9, 0.9, 0.9), Point3::new(0.1, 0.1, 0.1)];
/// let order = sfc::sort_order(&pts, &Aabb::unit(), 4);
/// assert_eq!(order, vec![1, 0]);
/// ```
pub fn sort_order(points: &[Point3], root: &Aabb, level: u8) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    let codes: Vec<MortonCode> = points
        .iter()
        .map(|&p| MortonCode::encode(p, root, level))
        .collect();
    order.sort_by_key(|&i| codes[i]);
    order
}

/// Reorders `cloud` into SFC order at `level`, returning the reordered cloud
/// together with the permutation used (original index of each output point).
///
/// The permutation is what the Octree-Table stores: it maps SFC positions
/// (1-D addresses) back to raw-frame indices.
pub fn reorder(cloud: &PointCloud, root: &Aabb, level: u8) -> (PointCloud, Vec<usize>) {
    let order = sort_order(cloud.points(), root, level);
    (cloud.permuted(&order), order)
}

/// Checks whether `points` are already in SFC order at `level`.
pub fn is_sorted(points: &[Point3], root: &Aabb, level: u8) -> bool {
    points
        .windows(2)
        .all(|w| MortonCode::encode(w[0], root, level) <= MortonCode::encode(w[1], root, level))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_cloud() -> (PointCloud, Aabb) {
        let pts = vec![
            Point3::new(0.9, 0.1, 0.1),
            Point3::new(0.1, 0.9, 0.1),
            Point3::new(0.1, 0.1, 0.9),
            Point3::new(0.05, 0.05, 0.05),
            Point3::new(0.95, 0.95, 0.95),
        ];
        (PointCloud::from_points(pts), Aabb::unit())
    }

    #[test]
    fn reorder_produces_sorted_cloud() {
        let (cloud, root) = cross_cloud();
        let (sorted, perm) = reorder(&cloud, &root, 6);
        assert!(is_sorted(sorted.points(), &root, 6));
        assert_eq!(perm.len(), cloud.len());
        // Permutation maps back to the originals.
        for (k, &orig) in perm.iter().enumerate() {
            assert_eq!(sorted.point(k), cloud.point(orig));
        }
    }

    #[test]
    fn order_is_permutation() {
        let (cloud, root) = cross_cloud();
        let mut order = sort_order(cloud.points(), &root, 5);
        order.sort_unstable();
        assert_eq!(order, (0..cloud.len()).collect::<Vec<_>>());
    }

    #[test]
    fn stable_within_leaf() {
        // Two identical points must keep their input order.
        let pts = vec![Point3::splat(0.5), Point3::splat(0.5), Point3::splat(0.1)];
        let order = sort_order(&pts, &Aabb::unit(), 3);
        let pos0 = order.iter().position(|&i| i == 0).unwrap();
        let pos1 = order.iter().position(|&i| i == 1).unwrap();
        assert!(pos0 < pos1, "stable sort must preserve duplicate order");
    }

    #[test]
    fn level_zero_is_identity() {
        let (cloud, root) = cross_cloud();
        let order = sort_order(cloud.points(), &root, 0);
        assert_eq!(order, (0..cloud.len()).collect::<Vec<_>>());
    }
}
