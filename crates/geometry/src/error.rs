use std::error::Error;
use std::fmt;

/// Errors produced by geometric constructions.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// An operation that needs at least one point was given an empty cloud.
    EmptyCloud,
    /// A feature buffer's length is not a multiple of the declared dimension,
    /// or does not match the number of points.
    FeatureShape {
        /// Number of points in the cloud.
        points: usize,
        /// Declared per-point feature dimension.
        feature_dim: usize,
        /// Actual flat feature buffer length.
        buffer_len: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFinitePoint {
        /// Index of the offending point.
        index: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyCloud => write!(f, "point cloud is empty"),
            GeometryError::FeatureShape { points, feature_dim, buffer_len } => write!(
                f,
                "feature buffer of length {buffer_len} does not equal {points} points x {feature_dim} dims"
            ),
            GeometryError::NonFinitePoint { index } => {
                write!(f, "point {index} has a non-finite coordinate")
            }
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            GeometryError::EmptyCloud,
            GeometryError::FeatureShape {
                points: 2,
                feature_dim: 3,
                buffer_len: 5,
            },
            GeometryError::NonFinitePoint { index: 7 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
