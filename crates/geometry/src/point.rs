use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub};

/// A point (or vector) in 3-D space, stored as `f32` like the FPGA fixed/
/// floating-point datapath in the paper's prototype.
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::Point3;
///
/// let a = Point3::new(1.0, 2.0, 3.0);
/// let b = Point3::new(1.0, 2.0, 5.0);
/// assert_eq!(a.distance(b), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point3 {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
    /// Z coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin `(0, 0, 0)`.
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its three coordinates.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Point3 { x, y, z }
    }

    /// Creates a point with all three coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Point3::new(v, v, v)
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// The samplers and gatherers compare distances, so they use the squared
    /// form to avoid the square root — exactly what the hardware datapath in
    /// §V-B does.
    #[inline]
    pub fn distance_sq(self, other: Point3) -> f32 {
        let d = self - other;
        d.x * d.x + d.y * d.y + d.z * d.z
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point3) -> f32 {
        self.distance_sq(other).sqrt()
    }

    /// Euclidean norm of the vector from the origin to this point.
    #[inline]
    pub fn norm(self) -> f32 {
        self.distance(Point3::ORIGIN)
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other`.
    #[inline]
    pub fn cross(self, other: Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Returns `true` if all coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other` (at `t = 1`).
    #[inline]
    pub fn lerp(self, other: Point3, t: f32) -> Point3 {
        self + (other - self) * t
    }

    /// Coordinates as a `[x, y, z]` array.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Point3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Point3::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f32; 3] {
    #[inline]
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

impl From<(f32, f32, f32)> for Point3 {
    #[inline]
    fn from((x, y, z): (f32, f32, f32)) -> Self {
        Point3::new(x, y, z)
    }
}

impl Index<usize> for Point3 {
    type Output = f32;

    /// Accesses a coordinate by axis index (`0 => x`, `1 => y`, `2 => z`).
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    #[inline]
    fn index(&self, axis: usize) -> &f32 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis index {axis} out of range 0..3"),
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, s: f32) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, s: f32) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point3::new(1.0, -2.0, 0.5);
        let b = Point3::new(-3.0, 4.0, 2.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point3::new(0.0, 3.0, 4.0);
        assert_eq!(a.distance_sq(Point3::ORIGIN), 25.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Point3::splat(3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Point3::new(1.0, 0.0, 0.0);
        let b = Point3::new(0.0, 1.0, 0.0);
        let c = a.cross(b);
        assert_eq!(c, Point3::new(0.0, 0.0, 1.0));
        assert_eq!(c.dot(a), 0.0);
        assert_eq!(c.dot(b), 0.0);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(2.0, 3.0, -1.0);
        assert_eq!(a.min(b), Point3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Point3::new(2.0, 5.0, -1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point3::ORIGIN;
        let b = Point3::splat(2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point3::splat(1.0));
    }

    #[test]
    fn index_by_axis() {
        let a = Point3::new(7.0, 8.0, 9.0);
        assert_eq!(a[0], 7.0);
        assert_eq!(a[1], 8.0);
        assert_eq!(a[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "axis index")]
    fn index_out_of_range_panics() {
        let _ = Point3::ORIGIN[3];
    }

    #[test]
    fn conversions_round_trip() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let arr: [f32; 3] = a.into();
        assert_eq!(Point3::from(arr), a);
        assert_eq!(Point3::from((1.0, 2.0, 3.0)), a);
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
