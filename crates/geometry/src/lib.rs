//! Geometric primitives shared by every crate in the HgPCN reproduction.
//!
//! A *point cloud* is a set `{(p_k, f_k)}` where `p_k = (x_k, y_k, z_k)` is a
//! 3-D coordinate and `f_k` an optional per-point feature vector (§II-A of
//! the paper). This crate provides:
//!
//! * [`Point3`] — a 3-D point with the vector operations the samplers need;
//! * [`Aabb`] — axis-aligned bounding boxes with octant subdivision, the
//!   voxel primitive behind the octree;
//! * [`PointCloud`] — an owned cloud with optional flat feature storage;
//! * [`morton`] — Morton ("m-code") encoding used by the Octree-Table, the
//!   space-filling-curve (SFC) linear order, and the Hamming-distance voxel
//!   metric used by the Down-sampling Unit (§V-B);
//! * [`sfc`] — helpers to sort points into SFC order.
//!
//! # Examples
//!
//! ```
//! use hgpcn_geometry::{Point3, PointCloud};
//!
//! let cloud = PointCloud::from_points(vec![
//!     Point3::new(0.0, 0.0, 0.0),
//!     Point3::new(1.0, 1.0, 1.0),
//! ]);
//! assert_eq!(cloud.len(), 2);
//! let bounds = cloud.bounds().expect("non-empty cloud");
//! assert_eq!(bounds.diagonal(), 3f32.sqrt());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod cloud;
mod error;
pub mod morton;
mod point;
pub mod sfc;

pub use aabb::{Aabb, Octant};
pub use cloud::PointCloud;
pub use error::GeometryError;
pub use morton::MortonCode;
pub use point::Point3;
