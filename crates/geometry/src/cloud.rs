use crate::{Aabb, GeometryError, Point3};

/// An owned point cloud `{(p_k, f_k)}` with optional per-point features.
///
/// Coordinates are stored as a dense `Vec<Point3>`; features as one flat
/// `Vec<f32>` of `len() * feature_dim()` values, matching how a frame sits
/// in the paper's host memory (§IV) so that the memory simulator can charge
/// realistic byte counts.
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::{Point3, PointCloud};
///
/// let mut cloud = PointCloud::new();
/// cloud.push(Point3::new(0.5, 0.5, 0.5));
/// cloud.push(Point3::new(0.25, 0.75, 0.1));
/// let normalized = cloud.normalized_unit_cube().unwrap();
/// assert!(normalized.iter().all(|p| hgpcn_geometry::Aabb::unit().contains(p)));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointCloud {
    points: Vec<Point3>,
    features: Vec<f32>,
    feature_dim: usize,
}

impl PointCloud {
    /// Creates an empty cloud with no features.
    #[inline]
    pub fn new() -> PointCloud {
        PointCloud::default()
    }

    /// Creates an empty cloud that will carry `feature_dim` features per point.
    #[inline]
    pub fn with_feature_dim(feature_dim: usize) -> PointCloud {
        PointCloud {
            points: Vec::new(),
            features: Vec::new(),
            feature_dim,
        }
    }

    /// Creates a cloud from bare coordinates (no features).
    #[inline]
    pub fn from_points(points: Vec<Point3>) -> PointCloud {
        PointCloud {
            points,
            features: Vec::new(),
            feature_dim: 0,
        }
    }

    /// Creates a cloud from coordinates plus a flat feature buffer.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::FeatureShape`] unless
    /// `features.len() == points.len() * feature_dim`.
    pub fn from_parts(
        points: Vec<Point3>,
        features: Vec<f32>,
        feature_dim: usize,
    ) -> Result<PointCloud, GeometryError> {
        if features.len() != points.len() * feature_dim {
            return Err(GeometryError::FeatureShape {
                points: points.len(),
                feature_dim,
                buffer_len: features.len(),
            });
        }
        Ok(PointCloud {
            points,
            features,
            feature_dim,
        })
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the cloud has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Per-point feature dimension (0 when the cloud carries no features).
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The coordinates as a slice.
    #[inline]
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The flat feature buffer (`len() * feature_dim()` values).
    #[inline]
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Coordinate of the `index`-th point.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn point(&self, index: usize) -> Point3 {
        self.points[index]
    }

    /// Feature vector of the `index`-th point (empty slice if no features).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn feature(&self, index: usize) -> &[f32] {
        if self.feature_dim == 0 {
            &[]
        } else {
            &self.features[index * self.feature_dim..(index + 1) * self.feature_dim]
        }
    }

    /// Appends a point without features.
    ///
    /// # Panics
    ///
    /// Panics if the cloud carries features (`feature_dim() > 0`); use
    /// [`PointCloud::push_with_feature`] there instead.
    #[inline]
    pub fn push(&mut self, p: Point3) {
        assert_eq!(
            self.feature_dim, 0,
            "cloud carries features; use push_with_feature"
        );
        self.points.push(p);
    }

    /// Appends a point together with its feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `feature.len() != feature_dim()`.
    #[inline]
    pub fn push_with_feature(&mut self, p: Point3, feature: &[f32]) {
        assert_eq!(
            feature.len(),
            self.feature_dim,
            "feature dimension mismatch"
        );
        self.points.push(p);
        self.features.extend_from_slice(feature);
    }

    /// Iterates over the coordinates.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Point3> + '_ {
        self.points.iter().copied()
    }

    /// Tightest bounding box, or `None` for an empty cloud.
    #[inline]
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::from_points(self.iter())
    }

    /// Builds a new cloud containing the points at `indices`, carrying
    /// features along. This is exactly the "gather by Sampled-Point-Table"
    /// read-out of §V-B.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> PointCloud {
        let mut out = PointCloud::with_feature_dim(self.feature_dim);
        self.gather_into(indices, &mut out);
        out
    }

    /// Like [`PointCloud::gather`], but writes into `out`, reusing its
    /// buffers. `out` is cleared first and adopts this cloud's feature
    /// dimension; its previous contents only contribute spare capacity.
    /// Stream-scoped preprocessing contexts use this to gather every frame
    /// of a stream without a fresh allocation.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_into(&self, indices: &[usize], out: &mut PointCloud) {
        out.points.clear();
        out.features.clear();
        out.feature_dim = self.feature_dim;
        out.points.reserve(indices.len());
        out.features.reserve(indices.len() * self.feature_dim);
        for &i in indices {
            out.points.push(self.points[i]);
            if self.feature_dim > 0 {
                out.features.extend_from_slice(self.feature(i));
            }
        }
    }

    /// Reorders the cloud by `permutation`, returning a new cloud where the
    /// `k`-th point is `self.point(permutation[k])`. Used by the octree
    /// host-memory pre-configuration step (§V-A).
    ///
    /// # Panics
    ///
    /// Panics if `permutation.len() != len()` or any index is out of range.
    pub fn permuted(&self, permutation: &[usize]) -> PointCloud {
        assert_eq!(permutation.len(), self.len(), "permutation length mismatch");
        self.gather(permutation)
    }

    /// Returns a copy translated and uniformly scaled into the unit cube
    /// `[0, 1]^3` (longest frame edge maps to 1). Down-sampling methods in
    /// the paper normalize frames before sampling (§V).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyCloud`] for an empty cloud.
    pub fn normalized_unit_cube(&self) -> Result<PointCloud, GeometryError> {
        let bounds = self.bounds().ok_or(GeometryError::EmptyCloud)?;
        let cube = bounds.cubified();
        let edge = cube.extent().x;
        let scale = if edge > 0.0 { 1.0 / edge } else { 1.0 };
        let min = cube.min();
        // Clamp to absorb f32 rounding at the cube faces so callers can rely
        // on every output lying inside [0, 1]^3 exactly.
        let points = self
            .points
            .iter()
            .map(|&p| {
                ((p - min) * scale)
                    .max(Point3::ORIGIN)
                    .min(Point3::splat(1.0))
            })
            .collect();
        Ok(PointCloud {
            points,
            features: self.features.clone(),
            feature_dim: self.feature_dim,
        })
    }

    /// Validates that every coordinate is finite.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonFinitePoint`] with the index of the first
    /// offending point.
    pub fn validate_finite(&self) -> Result<(), GeometryError> {
        match self.points.iter().position(|p| !p.is_finite()) {
            Some(index) => Err(GeometryError::NonFinitePoint { index }),
            None => Ok(()),
        }
    }

    /// Centroid of the cloud (the `||S||2` "virtual summary point" used as
    /// the FPS reference in §V-B), or `None` for an empty cloud.
    pub fn centroid(&self) -> Option<Point3> {
        if self.is_empty() {
            return None;
        }
        let sum = self.iter().fold(Point3::ORIGIN, |acc, p| acc + p);
        Some(sum / self.len() as f32)
    }

    /// Bytes this cloud occupies in host memory (coordinates + features),
    /// used by the memory simulator to size transfers.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.points.len() * 3 * 4 + self.features.len() * 4
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Point3>>(iter: I) -> Self {
        PointCloud::from_points(iter.into_iter().collect())
    }
}

impl Extend<Point3> for PointCloud {
    /// Extends the cloud with bare points.
    ///
    /// # Panics
    ///
    /// Panics if the cloud carries features.
    fn extend<I: IntoIterator<Item = Point3>>(&mut self, iter: I) {
        assert_eq!(
            self.feature_dim, 0,
            "cloud carries features; use push_with_feature"
        );
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cloud() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(0.0, 4.0, 0.0),
            Point3::new(0.0, 0.0, 8.0),
        ])
    }

    #[test]
    fn from_parts_validates_shape() {
        let pts = vec![Point3::ORIGIN; 3];
        assert!(PointCloud::from_parts(pts.clone(), vec![0.0; 6], 2).is_ok());
        let err = PointCloud::from_parts(pts, vec![0.0; 5], 2).unwrap_err();
        assert!(matches!(err, GeometryError::FeatureShape { .. }));
    }

    #[test]
    fn feature_access() {
        let pts = vec![Point3::ORIGIN, Point3::splat(1.0)];
        let cloud = PointCloud::from_parts(pts, vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(cloud.feature(0), &[1.0, 2.0]);
        assert_eq!(cloud.feature(1), &[3.0, 4.0]);
        assert_eq!(cloud.feature_dim(), 2);
    }

    #[test]
    fn gather_carries_features() {
        let pts = vec![Point3::ORIGIN, Point3::splat(1.0), Point3::splat(2.0)];
        let cloud = PointCloud::from_parts(pts, vec![0.0, 1.0, 2.0], 1).unwrap();
        let g = cloud.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.point(0), Point3::splat(2.0));
        assert_eq!(g.feature(0), &[2.0]);
        assert_eq!(g.feature(1), &[0.0]);
    }

    #[test]
    fn permuted_round_trip() {
        let cloud = sample_cloud();
        let perm = vec![3, 2, 1, 0];
        let p = cloud.permuted(&perm);
        assert_eq!(p.point(0), cloud.point(3));
        assert_eq!(p.point(3), cloud.point(0));
    }

    #[test]
    fn normalized_fits_unit_cube() {
        let norm = sample_cloud().normalized_unit_cube().unwrap();
        let unit = Aabb::unit();
        assert!(norm.iter().all(|p| unit.contains(p)));
        // Longest axis (z, length 8) must span the full unit interval.
        let b = norm.bounds().unwrap();
        assert!((b.extent().z - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_empty_errors() {
        assert_eq!(
            PointCloud::new().normalized_unit_cube().unwrap_err(),
            GeometryError::EmptyCloud
        );
    }

    #[test]
    fn centroid_average() {
        let c = sample_cloud().centroid().unwrap();
        assert_eq!(c, Point3::new(0.5, 1.0, 2.0));
        assert!(PointCloud::new().centroid().is_none());
    }

    #[test]
    fn validate_finite_catches_nan() {
        let mut cloud = sample_cloud();
        cloud.push(Point3::new(f32::NAN, 0.0, 0.0));
        assert_eq!(
            cloud.validate_finite().unwrap_err(),
            GeometryError::NonFinitePoint { index: 4 }
        );
    }

    #[test]
    fn byte_size_counts_coords_and_features() {
        let pts = vec![Point3::ORIGIN; 10];
        let cloud = PointCloud::from_parts(pts, vec![0.0; 20], 2).unwrap();
        assert_eq!(cloud.byte_size(), 10 * 12 + 20 * 4);
    }

    #[test]
    fn collect_from_iterator() {
        let cloud: PointCloud = (0..5).map(|i| Point3::splat(i as f32)).collect();
        assert_eq!(cloud.len(), 5);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn push_with_wrong_dim_panics() {
        let mut cloud = PointCloud::with_feature_dim(3);
        cloud.push_with_feature(Point3::ORIGIN, &[1.0]);
    }
}
