use std::fmt;

use crate::Point3;

/// One of the eight children of a subdivided axis-aligned box.
///
/// The index encodes the child's relative position inside its parent exactly
/// like the paper's m-code bits (§V-A): bit 2 is the X half, bit 1 the Y
/// half, bit 0 the Z half (`0` = low/"bottom-left", `1` = high). This is the
/// space-filling-curve traversal order illustrated in Fig. 5(a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Octant(u8);

impl Octant {
    /// All eight octants in SFC order.
    pub const ALL: [Octant; 8] = [
        Octant(0),
        Octant(1),
        Octant(2),
        Octant(3),
        Octant(4),
        Octant(5),
        Octant(6),
        Octant(7),
    ];

    /// Creates an octant from its 3-bit index.
    ///
    /// Returns `None` if `index > 7`.
    #[inline]
    pub fn new(index: u8) -> Option<Octant> {
        (index < 8).then_some(Octant(index))
    }

    /// The 3-bit index (`0..8`) of this octant.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this octant is in the high X half of its parent.
    #[inline]
    pub fn high_x(self) -> bool {
        self.0 & 0b100 != 0
    }

    /// Whether this octant is in the high Y half of its parent.
    #[inline]
    pub fn high_y(self) -> bool {
        self.0 & 0b010 != 0
    }

    /// Whether this octant is in the high Z half of its parent.
    #[inline]
    pub fn high_z(self) -> bool {
        self.0 & 0b001 != 0
    }
}

impl fmt::Display for Octant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03b}", self.0)
    }
}

/// An axis-aligned bounding box: the "voxel" primitive of the paper.
///
/// The octree's root voxel is the bounding box of a whole frame; each
/// subdivision splits a voxel into its eight [`Octant`]s.
///
/// # Examples
///
/// ```
/// use hgpcn_geometry::{Aabb, Point3};
///
/// let root = Aabb::new(Point3::ORIGIN, Point3::splat(2.0));
/// let child = root.octant_bounds(hgpcn_geometry::Octant::new(7).unwrap());
/// assert_eq!(child.min(), Point3::splat(1.0));
/// assert_eq!(child.max(), Point3::splat(2.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    min: Point3,
    max: Point3,
}

impl Aabb {
    /// Creates a box from its minimum and maximum corners.
    ///
    /// # Panics
    ///
    /// Panics if any component of `min` exceeds the matching component of
    /// `max`, or if either corner is non-finite.
    #[inline]
    pub fn new(min: Point3, max: Point3) -> Aabb {
        assert!(
            min.is_finite() && max.is_finite(),
            "AABB corners must be finite"
        );
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "AABB min {min} must not exceed max {max}"
        );
        Aabb { min, max }
    }

    /// The tightest box containing every point of `points`, or `None` for an
    /// empty iterator.
    pub fn from_points<I>(points: I) -> Option<Aabb>
    where
        I: IntoIterator<Item = Point3>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let (min, max) = iter.fold((first, first), |(lo, hi), p| (lo.min(p), hi.max(p)));
        Some(Aabb { min, max })
    }

    /// A cube centered at `center` with the given half-extent.
    #[inline]
    pub fn cube(center: Point3, half_extent: f32) -> Aabb {
        let h = Point3::splat(half_extent);
        Aabb::new(center - h, center + h)
    }

    /// The canonical unit cube `[0, 1]^3` that normalized clouds live in.
    #[inline]
    pub fn unit() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(1.0))
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Point3 {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Point3 {
        self.max
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths along each axis.
    #[inline]
    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// Length of the main diagonal.
    #[inline]
    pub fn diagonal(&self) -> f32 {
        self.extent().norm()
    }

    /// Returns `true` if `p` lies inside the box (inclusive on every face).
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if `self` and `other` overlap (touching counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The smallest box containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// Grows the box by `margin` on every face.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative enough to invert the box.
    #[inline]
    pub fn inflate(&self, margin: f32) -> Aabb {
        Aabb::new(
            self.min - Point3::splat(margin),
            self.max + Point3::splat(margin),
        )
    }

    /// The cube with the same center whose edge is the box's longest edge.
    ///
    /// The octree roots frames in a cube so that every subdivision level
    /// halves the voxel edge uniformly.
    pub fn cubified(&self) -> Aabb {
        let e = self.extent();
        let edge = e.x.max(e.y).max(e.z);
        Aabb::cube(self.center(), edge * 0.5)
    }

    /// Which octant of this box the point falls into.
    ///
    /// Points exactly on a splitting plane go to the high side, matching the
    /// m-code assignment in Fig. 5(a).
    #[inline]
    pub fn octant_of(&self, p: Point3) -> Octant {
        let c = self.center();
        let mut idx = 0u8;
        if p.x >= c.x {
            idx |= 0b100;
        }
        if p.y >= c.y {
            idx |= 0b010;
        }
        if p.z >= c.z {
            idx |= 0b001;
        }
        Octant(idx)
    }

    /// The bounds of one octant child of this box.
    #[inline]
    pub fn octant_bounds(&self, octant: Octant) -> Aabb {
        let c = self.center();
        let (min_x, max_x) = if octant.high_x() {
            (c.x, self.max.x)
        } else {
            (self.min.x, c.x)
        };
        let (min_y, max_y) = if octant.high_y() {
            (c.y, self.max.y)
        } else {
            (self.min.y, c.y)
        };
        let (min_z, max_z) = if octant.high_z() {
            (c.z, self.max.z)
        } else {
            (self.min.z, c.z)
        };
        Aabb::new(
            Point3::new(min_x, min_y, min_z),
            Point3::new(max_x, max_y, max_z),
        )
    }

    /// Squared distance from `p` to the closest point of the box (0 inside).
    pub fn distance_sq_to(&self, p: Point3) -> f32 {
        let clamped = p.max(self.min).min(self.max);
        p.distance_sq(clamped)
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_is_tight() {
        let pts = vec![
            Point3::new(1.0, 5.0, -1.0),
            Point3::new(-2.0, 0.0, 3.0),
            Point3::new(0.0, 2.0, 0.0),
        ];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min(), Point3::new(-2.0, 0.0, -1.0));
        assert_eq!(b.max(), Point3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn octants_tile_the_parent() {
        let root = Aabb::new(Point3::ORIGIN, Point3::splat(4.0));
        let mut volume = 0.0;
        for oct in Octant::ALL {
            let child = root.octant_bounds(oct);
            let e = child.extent();
            volume += e.x * e.y * e.z;
            assert!(root.contains(child.center()));
        }
        assert_eq!(volume, 64.0);
    }

    #[test]
    fn octant_of_matches_octant_bounds() {
        let root = Aabb::new(Point3::splat(-1.0), Point3::splat(1.0));
        for oct in Octant::ALL {
            let child = root.octant_bounds(oct);
            assert_eq!(root.octant_of(child.center()), oct);
        }
    }

    #[test]
    fn octant_flags_follow_bits() {
        let o = Octant::new(0b101).unwrap();
        assert!(o.high_x());
        assert!(!o.high_y());
        assert!(o.high_z());
        assert!(Octant::new(8).is_none());
    }

    #[test]
    fn contains_is_inclusive() {
        let b = Aabb::unit();
        assert!(b.contains(Point3::ORIGIN));
        assert!(b.contains(Point3::splat(1.0)));
        assert!(!b.contains(Point3::splat(1.0001)));
    }

    #[test]
    fn intersects_touching_boxes() {
        let a = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let b = Aabb::new(Point3::splat(1.0), Point3::splat(2.0));
        let c = Aabb::new(Point3::splat(1.5), Point3::splat(2.5));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn cubified_has_equal_edges() {
        let b = Aabb::new(Point3::ORIGIN, Point3::new(4.0, 2.0, 1.0));
        let c = b.cubified();
        let e = c.extent();
        assert_eq!(e.x, 4.0);
        assert_eq!(e.y, 4.0);
        assert_eq!(e.z, 4.0);
        assert_eq!(c.center(), b.center());
    }

    #[test]
    fn distance_sq_inside_is_zero() {
        let b = Aabb::unit();
        assert_eq!(b.distance_sq_to(Point3::splat(0.5)), 0.0);
        assert_eq!(b.distance_sq_to(Point3::new(2.0, 0.5, 0.5)), 1.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_bounds_panic() {
        let _ = Aabb::new(Point3::splat(1.0), Point3::ORIGIN);
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let b = Aabb::new(Point3::splat(2.0), Point3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Point3::ORIGIN));
        assert!(u.contains(Point3::splat(3.0)));
    }
}
