//! Property tests for the geometric primitives.

use proptest::prelude::*;

use hgpcn_geometry::{sfc, Aabb, MortonCode, Point3, PointCloud};

fn arb_point() -> impl Strategy<Value = Point3> {
    (-1000.0f32..1000.0, -1000.0f32..1000.0, -1000.0f32..1000.0)
        .prop_map(|(x, y, z)| Point3::new(x, y, z))
}

fn arb_unit_point() -> impl Strategy<Value = Point3> {
    (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

proptest! {
    /// Triangle inequality and symmetry of the distance.
    #[test]
    fn distance_metric_properties(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() <= 1e-3);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-2);
        prop_assert_eq!(a.distance(a), 0.0);
    }

    /// distance_sq is the square of distance.
    #[test]
    fn distance_sq_consistent(a in arb_point(), b in arb_point()) {
        let d = a.distance(b);
        prop_assert!((d * d - a.distance_sq(b)).abs() <= a.distance_sq(b).max(1.0) * 1e-4);
    }

    /// The bounding box of any point set contains every point, and
    /// cubifying preserves containment.
    #[test]
    fn aabb_contains_its_points(pts in prop::collection::vec(arb_point(), 1..50)) {
        let bounds = Aabb::from_points(pts.iter().copied()).unwrap();
        for &p in &pts {
            prop_assert!(bounds.contains(p));
            prop_assert!(bounds.cubified().inflate(1e-3).contains(p));
        }
    }

    /// Every point belongs to exactly the octant octant_of names.
    #[test]
    fn octant_of_is_consistent(p in arb_unit_point()) {
        let root = Aabb::unit();
        let oct = root.octant_of(p);
        prop_assert!(root.octant_bounds(oct).contains(p));
    }

    /// Morton encode/decode: the decoded voxel contains the point, and the
    /// voxel shrinks by half each level.
    #[test]
    fn morton_encode_decode(p in arb_unit_point(), level in 0u8..12) {
        let root = Aabb::unit();
        let code = MortonCode::encode(p, &root, level);
        let bounds = code.decode_bounds(&root);
        prop_assert!(bounds.inflate(1e-6).contains(p));
        let expected_edge = 1.0 / (1u64 << level) as f32;
        prop_assert!((bounds.extent().x - expected_edge).abs() < 1e-5);
    }

    /// Grid-coordinate round trip at every level.
    #[test]
    fn grid_coords_round_trip(x in 0u32..256, y in 0u32..256, z in 0u32..256) {
        let code = MortonCode::from_grid_coords(x % 256, y % 256, z % 256, 8);
        prop_assert_eq!(code.grid_coords(), (x % 256, y % 256, z % 256));
    }

    /// Morton order restricted to one level is total and antisymmetric,
    /// and ancestors sort before descendants.
    #[test]
    fn morton_order_properties(a in 0u64..4096, b in 0u64..4096) {
        let ca = MortonCode::from_bits(a, 4);
        let cb = MortonCode::from_bits(b, 4);
        prop_assert_eq!(ca.cmp(&cb), cb.cmp(&ca).reverse());
        let parent = ca.parent().unwrap();
        prop_assert!(parent < ca);
    }

    /// SFC sorting produces a permutation under which codes are monotone.
    #[test]
    fn sfc_sort_is_monotone_permutation(pts in prop::collection::vec(arb_unit_point(), 1..100)) {
        let cloud = PointCloud::from_points(pts);
        let root = Aabb::unit();
        let (sorted, perm) = sfc::reorder(&cloud, &root, 8);
        prop_assert!(sfc::is_sorted(sorted.points(), &root, 8));
        let mut check = perm.clone();
        check.sort_unstable();
        prop_assert_eq!(check, (0..cloud.len()).collect::<Vec<_>>());
    }

    /// Normalization maps every cloud into the unit cube and preserves
    /// relative distances up to the uniform scale.
    #[test]
    fn normalization_preserves_shape(pts in prop::collection::vec(arb_point(), 2..40)) {
        let cloud = PointCloud::from_points(pts);
        let norm = cloud.normalized_unit_cube().unwrap();
        let unit = Aabb::unit();
        for p in norm.iter() {
            prop_assert!(unit.contains(p));
        }
        // Ratios of pairwise distances are preserved (scale-invariant).
        let d01 = cloud.point(0).distance(cloud.point(1));
        let n01 = norm.point(0).distance(norm.point(1));
        if d01 > 1.0 {
            for i in 2..cloud.len() {
                let di = cloud.point(0).distance(cloud.point(i));
                let ni = norm.point(0).distance(norm.point(i));
                if di > 1.0 {
                    prop_assert!(((di / d01) - (ni / n01)).abs() < 0.05,
                        "ratio drift: {} vs {}", di / d01, ni / n01);
                }
            }
        }
    }

    /// Hamming distance on equal-level codes is a metric.
    #[test]
    fn hamming_is_a_metric(a in 0u64..512, b in 0u64..512, c in 0u64..512) {
        let (ca, cb, cc) = (
            MortonCode::from_bits(a, 3),
            MortonCode::from_bits(b, 3),
            MortonCode::from_bits(c, 3),
        );
        prop_assert_eq!(ca.hamming_distance(cb), cb.hamming_distance(ca));
        prop_assert_eq!(ca.hamming_distance(ca), 0);
        prop_assert!(ca.hamming_distance(cc) <= ca.hamming_distance(cb) + cb.hamming_distance(cc));
    }
}
