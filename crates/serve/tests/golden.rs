//! Golden request/response fixtures for every endpoint, driven through
//! the in-process router ([`App::handle`]) — byte-exact where the
//! response is deterministic (the JSON serializer renders object keys
//! in sorted order), structural where it carries wall-clock timing.

use hgpcn_runtime::{RuntimeConfig, SyntheticSource};
use hgpcn_serve::{config_text, default_net, App};
use minihttp::http::{Request, Response};
use minihttp::json::{self, Json};

const TARGET: usize = 512;
const SEED: u64 = 11;

fn app() -> App {
    let config = RuntimeConfig::default()
        .preproc_workers(1)
        .inference_workers(1)
        .target_points(TARGET)
        .seed(SEED);
    App::new(config, default_net(SEED)).unwrap()
}

fn get(app: &App, path: &str) -> Response {
    app.handle(&Request {
        method: "GET".to_string(),
        path: path.to_string(),
        query: String::new(),
        headers: Vec::new(),
        body: Vec::new(),
    })
}

fn post_rpc(app: &App, body: &str) -> Response {
    app.handle(&Request {
        method: "POST".to_string(),
        path: "/rpc".to_string(),
        query: String::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    })
}

fn body_text(resp: &Response) -> String {
    String::from_utf8(resp.body.clone()).unwrap()
}

fn cloud_json(points: usize) -> String {
    let cloud = SyntheticSource::new(points, 10.0, 1, 1).frame_cloud(0);
    let triples: Vec<Json> = cloud
        .points()
        .iter()
        .map(|p| {
            Json::Arr(vec![
                Json::Num(f64::from(p.x)),
                Json::Num(f64::from(p.y)),
                Json::Num(f64::from(p.z)),
            ])
        })
        .collect();
    Json::Arr(triples).to_string()
}

#[test]
fn health_is_golden_and_routes_are_strict() {
    let app = app();
    let health = get(&app, "/health");
    assert_eq!(health.status, 200);
    assert_eq!(body_text(&health), "{\"status\":\"ok\"}");

    assert_eq!(get(&app, "/nope").status, 404);
    // Known path, wrong method: 405, not 404.
    assert_eq!(get(&app, "/rpc").status, 405);
}

#[test]
fn metrics_serves_prometheus_text() {
    let app = app();
    let resp = get(&app, "/metrics");
    assert_eq!(resp.status, 200);
    assert!(resp.content_type.starts_with("text/plain"));
    let text = body_text(&resp);
    // Fresh session, no streams yet: aggregate gauges are still there
    // (per-stream counters appear once a stream serves; asserted in
    // `full_serving_flow_over_the_wire_format`).
    assert!(
        text.contains("# TYPE hgpcn_modeled_fps gauge"),
        "metrics output missing typed gauge:\n{text}"
    );
}

#[test]
fn transport_errors_are_golden_400s() {
    let app = app();
    // Unparseable body: -32700 with the parser's position.
    let resp = post_rpc(&app, "{");
    assert_eq!(resp.status, 400);
    assert_eq!(
        body_text(&resp),
        "{\"error\":{\"code\":-32700,\"message\":\"JSON parse error at byte 1: \
         unexpected character\"},\"id\":null,\"jsonrpc\":\"2.0\"}"
    );

    // Batch arrays are not supported: -32600.
    let resp = post_rpc(&app, "[]");
    assert_eq!(resp.status, 400);
    assert_eq!(
        body_text(&resp),
        "{\"error\":{\"code\":-32600,\"message\":\"request must be a single \
         JSON-RPC object\"},\"id\":null,\"jsonrpc\":\"2.0\"}"
    );

    // Wrong protocol version: -32600, echoing the id.
    let resp = post_rpc(&app, r#"{"jsonrpc":"1.0","id":9,"method":"x"}"#);
    assert_eq!(resp.status, 400);
    assert_eq!(
        body_text(&resp),
        "{\"error\":{\"code\":-32600,\"message\":\"jsonrpc must be the string \
         \\\"2.0\\\"\"},\"id\":9,\"jsonrpc\":\"2.0\"}"
    );
}

#[test]
fn method_level_errors_are_200_with_error_objects() {
    let app = app();
    let resp = post_rpc(&app, r#"{"jsonrpc":"2.0","id":1,"method":"no_such"}"#);
    assert_eq!(resp.status, 200);
    assert_eq!(
        body_text(&resp),
        "{\"error\":{\"code\":-32601,\"message\":\"unknown method \
         \\\"no_such\\\"\"},\"id\":1,\"jsonrpc\":\"2.0\"}"
    );

    let resp = post_rpc(
        &app,
        r#"{"jsonrpc":"2.0","id":2,"method":"open_stream","params":[1]}"#,
    );
    assert_eq!(resp.status, 200);
    assert_eq!(
        body_text(&resp),
        "{\"error\":{\"code\":-32602,\"message\":\"params must be an \
         object\"},\"id\":2,\"jsonrpc\":\"2.0\"}"
    );
}

#[test]
fn runtime_errors_carry_the_stable_code_contract() {
    let app = app();
    // Submitting to a stream that was never opened: the runtime's
    // `unknown_stream` code (-32005), with the snake_case form in data.
    let resp = post_rpc(
        &app,
        &format!(
            r#"{{"jsonrpc":"2.0","id":3,"method":"submit_cloud",
               "params":{{"stream_id":7,"points":{}}}}}"#,
            cloud_json(TARGET + 8)
        ),
    );
    assert_eq!(resp.status, 200);
    let doc = json::parse(&body_text(&resp)).unwrap();
    assert_eq!(doc.num("error.code"), Some(-32005.0));
    assert_eq!(doc.str_at("error.data.code"), Some("unknown_stream"));

    // Polling a ticket that was never issued: unknown_ticket (-32006).
    let resp = post_rpc(
        &app,
        r#"{"jsonrpc":"2.0","id":4,"method":"poll_result",
           "params":{"stream_id":0,"frame_index":0}}"#,
    );
    let doc = json::parse(&body_text(&resp)).unwrap();
    assert_eq!(doc.num("error.code"), Some(-32006.0));
    assert_eq!(doc.str_at("error.data.code"), Some("unknown_ticket"));
}

#[test]
fn full_serving_flow_over_the_wire_format() {
    let app = app();
    // open_stream is fully deterministic: golden body.
    let resp = post_rpc(
        &app,
        r#"{"jsonrpc":"2.0","id":1,"method":"open_stream",
           "params":{"name":"lidar","nominal_fps":10}}"#,
    );
    assert_eq!(resp.status, 200);
    assert_eq!(
        body_text(&resp),
        "{\"id\":1,\"jsonrpc\":\"2.0\",\"result\":{\"stream_id\":0}}"
    );

    // submit_cloud: deterministic ticket, golden body.
    let resp = post_rpc(
        &app,
        &format!(
            r#"{{"jsonrpc":"2.0","id":2,"method":"submit_cloud",
               "params":{{"stream_id":0,"sensor_ts_s":0,"points":{}}}}}"#,
            cloud_json(1000)
        ),
    );
    assert_eq!(
        body_text(&resp),
        "{\"id\":2,\"jsonrpc\":\"2.0\",\"result\":{\"frame_index\":0,\"stream_id\":0}}"
    );

    // poll_result carries wall-clock timing, so assert structurally.
    let resp = post_rpc(
        &app,
        r#"{"jsonrpc":"2.0","id":3,"method":"poll_result",
           "params":{"stream_id":0,"frame_index":0,"wait":true}}"#,
    );
    let doc = json::parse(&body_text(&resp)).unwrap();
    assert_eq!(doc.str_at("result.status"), Some("done"));
    assert_eq!(doc.str_at("result.output.precision"), Some("f32"));
    assert_eq!(doc.num("result.output.classes"), Some(40.0));
    let class = doc.usize_at("result.output.predicted_class").unwrap();
    assert!(class < 40);
    assert!(doc.num("result.timing.virtual_done_s").unwrap() > 0.0);
    assert!(
        doc.num("result.timing.virtual_done_s").unwrap()
            >= doc.num("result.timing.virtual_arrival_s").unwrap()
    );

    // Per-stream stats reflect the one served frame.
    let resp = post_rpc(
        &app,
        r#"{"jsonrpc":"2.0","id":4,"method":"stream_stats",
           "params":{"stream_id":0}}"#,
    );
    let doc = json::parse(&body_text(&resp)).unwrap();
    assert_eq!(doc.str_at("result.name"), Some("lidar"));
    assert_eq!(doc.num("result.offered"), Some(1.0));
    assert_eq!(doc.num("result.completed"), Some(1.0));
    assert!(doc.num("result.service_ms.p50").unwrap() > 0.0);
    assert!(doc.str_at("result.preproc_reuse").is_some());
    assert!(doc.num("result.preproc_reuse_hits").is_some());
    assert!(doc.num("result.preproc_reuse_misses").is_some());

    // Aggregate stats (no stream_id) list every stream.
    let resp = post_rpc(&app, r#"{"jsonrpc":"2.0","id":5,"method":"stream_stats"}"#);
    let doc = json::parse(&body_text(&resp)).unwrap();
    assert_eq!(doc.num("result.total_frames"), Some(1.0));
    assert_eq!(doc.arr("result.streams").map(<[Json]>::len), Some(1));
    assert_eq!(doc.str_at("result.precision"), Some("f32"));
    // The preprocessing state policy is surfaced, never hidden: the
    // resolved policy name plus the warm/cold tally for this run.
    let policy = doc.str_at("result.preproc_reuse.policy").unwrap();
    assert!(policy == "on" || policy == "off", "policy {policy:?}");
    let hits = doc.num("result.preproc_reuse.hits").unwrap();
    let misses = doc.num("result.preproc_reuse.misses").unwrap();
    assert_eq!(hits + misses, 1.0, "one preprocessed frame");
    assert!(doc.num("result.preproc_reuse.warm_ratio").is_some());

    // With a frame served, /metrics now carries the frame counters.
    let metrics = body_text(&get(&app, "/metrics"));
    assert!(metrics.contains("# TYPE hgpcn_frames_completed_total counter"));
    assert!(metrics.contains("hgpcn_frames_completed_total{stream=\"lidar\"} 1"));
}

#[test]
fn failed_frames_resolve_as_results_not_rpc_errors() {
    let app = app();
    post_rpc(
        &app,
        r#"{"jsonrpc":"2.0","id":1,"method":"open_stream","params":{"name":"s"}}"#,
    );
    // A 4-point cloud cannot be sampled up to 512: the frame fails, the
    // poll succeeds, the server stays up.
    let resp = post_rpc(
        &app,
        &format!(
            r#"{{"jsonrpc":"2.0","id":2,"method":"submit_cloud",
               "params":{{"stream_id":0,"points":{}}}}}"#,
            cloud_json(4)
        ),
    );
    let doc = json::parse(&body_text(&resp)).unwrap();
    assert!(doc.path("result").is_some(), "submission itself succeeds");

    let resp = post_rpc(
        &app,
        r#"{"jsonrpc":"2.0","id":3,"method":"poll_result",
           "params":{"stream_id":0,"frame_index":0,"wait":true}}"#,
    );
    assert_eq!(resp.status, 200);
    let doc = json::parse(&body_text(&resp)).unwrap();
    assert_eq!(doc.str_at("result.status"), Some("failed"));
    assert_eq!(doc.num("result.error.code"), Some(-32003.0));
    assert_eq!(doc.str_at("result.error.data.code"), Some("frame_failed"));
    assert!(doc.str_at("result.error.data.stage").is_some());

    // And the session still serves: health stays green.
    assert_eq!(get(&app, "/health").status, 200);
}

#[test]
fn config_subcommand_output_is_deterministic_and_parseable() {
    let a = config_text("127.0.0.1:7870");
    assert_eq!(a, config_text("127.0.0.1:7870"), "must be reproducible");
    for method in ["open_stream", "submit_cloud", "poll_result", "stream_stats"] {
        assert!(a.contains(method), "examples must cover {method}");
    }
    // Every curl example body must be valid JSON our own parser accepts.
    for line in a.lines().filter(|l| l.contains("/rpc -d '")) {
        let body = line.split("-d '").nth(1).unwrap().trim_end_matches('\'');
        let doc = json::parse(body).unwrap_or_else(|e| panic!("bad example {body}: {e}"));
        assert_eq!(doc.str_at("jsonrpc"), Some("2.0"));
    }
}
