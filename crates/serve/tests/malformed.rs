//! Hostile-input properties for the RPC surface: arbitrary bytes,
//! truncated bodies, corrupted envelopes and oversized clouds must all
//! produce well-formed JSON-RPC error responses — never a panic, a
//! hang, or an unparseable reply.

use std::sync::OnceLock;

use hgpcn_runtime::RuntimeConfig;
use hgpcn_serve::rpc::{self, MAX_CLOUD_POINTS};
use hgpcn_serve::{default_net, App};
use minihttp::json::{self, Json};
use proptest::prelude::*;

/// One shared serving session for every property case: booting worker
/// pools per case would dominate the run, and the properties only
/// exercise the parse/dispatch layer (no frame ever gets admitted).
fn app() -> &'static App {
    static APP: OnceLock<App> = OnceLock::new();
    APP.get_or_init(|| {
        let config = RuntimeConfig::default()
            .preproc_workers(1)
            .inference_workers(1)
            .target_points(512)
            .seed(1);
        App::new(config, default_net(1)).unwrap()
    })
}

/// Dispatches a raw body and asserts the universal response invariants:
/// a 200 or 400 status, a parseable JSON body, a `"2.0"` envelope, and
/// exactly one of `result`/`error`. Returns the parsed body.
fn well_formed(body: &[u8]) -> Result<(u16, Json), TestCaseError> {
    let resp = rpc::handle(app().runtime(), body);
    prop_assert!(
        resp.status == 200 || resp.status == 400,
        "unexpected status {}",
        resp.status
    );
    let text = String::from_utf8(resp.body.clone());
    prop_assert!(text.is_ok(), "response body is not UTF-8");
    let doc = json::parse(&text.unwrap());
    prop_assert!(doc.is_ok(), "response body is not JSON: {doc:?}");
    let doc = doc.unwrap();
    prop_assert_eq!(doc.str_at("jsonrpc"), Some("2.0"));
    prop_assert!(
        doc.path("result").is_some() ^ doc.path("error").is_some(),
        "response must carry exactly one of result/error: {}",
        doc
    );
    Ok((resp.status, doc))
}

/// A syntactically valid submit_cloud request to mutilate.
fn valid_submit_body() -> String {
    r#"{"jsonrpc":"2.0","id":42,"method":"submit_cloud","params":{"stream_id":0,"sensor_ts_s":1.5,"points":[[0.1,0.2,0.3],[0.4,0.5,0.6]]}}"#
        .to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte garbage (including invalid UTF-8) never crashes
    /// the dispatcher and always yields a well-formed reply.
    #[test]
    fn random_bytes_yield_wellformed_errors(
        body in prop::collection::vec(0u8..=255, 0..512),
    ) {
        well_formed(&body)?;
    }

    /// Every proper prefix of a valid request is invalid JSON, so it
    /// must be a 400 carrying the standard parse-error code.
    #[test]
    fn truncated_bodies_are_parse_errors(cut in 0usize..137) {
        let full = valid_submit_body();
        prop_assume!(cut < full.len());
        let (status, doc) = well_formed(&full.as_bytes()[..cut])?;
        prop_assert_eq!(status, 400);
        prop_assert_eq!(doc.num("error.code"), Some(-32700.0));
    }

    /// Corrupted envelopes (wrong version, missing/non-string method,
    /// structured id) are invalid requests, and the error is
    /// distinguishable from a parse error.
    #[test]
    fn bad_envelopes_are_invalid_requests(variant in 0usize..5) {
        let body = match variant {
            0 => r#"{"id":1,"method":"stream_stats"}"#,                  // no version
            1 => r#"{"jsonrpc":2,"id":1,"method":"stream_stats"}"#,      // numeric version
            2 => r#"{"jsonrpc":"2.1","id":1,"method":"stream_stats"}"#,  // wrong version
            3 => r#"{"jsonrpc":"2.0","id":1}"#,                          // no method
            _ => r#"{"jsonrpc":"2.0","id":{},"method":"stream_stats"}"#, // object id
        };
        let (status, doc) = well_formed(body.as_bytes())?;
        prop_assert_eq!(status, 400);
        prop_assert_eq!(doc.num("error.code"), Some(-32600.0));
    }

    /// Structurally broken params (wrong types, malformed points) are
    /// invalid-params errors, never admitted frames.
    #[test]
    fn broken_params_are_invalid_params(variant in 0usize..6) {
        let params = match variant {
            0 => r#"{"points":[[0,0,0]]}"#,                          // no stream_id
            1 => r#"{"stream_id":-1,"points":[[0,0,0]]}"#,           // negative id
            2 => r#"{"stream_id":0,"points":[[0,0]]}"#,              // 2-tuple point
            3 => r#"{"stream_id":0,"points":[[0,0,0,0]]}"#,          // 4-tuple point
            4 => r#"{"stream_id":0,"points":[0]}"#,                  // scalar point
            _ => r#"{"stream_id":0,"points":[]}"#,                   // empty cloud
        };
        let body = format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"submit_cloud","params":{params}}}"#
        );
        let (status, doc) = well_formed(body.as_bytes())?;
        prop_assert_eq!(status, 200, "method-level failure");
        prop_assert_eq!(doc.num("error.code"), Some(-32602.0));
    }
}

/// A cloud one point over the cap is refused with invalid-params before
/// any geometry is built. (Plain test: the ~6 MB body is too expensive
/// to generate hundreds of times.)
#[test]
fn oversized_clouds_are_refused() {
    let mut body = String::with_capacity(MAX_CLOUD_POINTS * 9 + 128);
    body.push_str(
        r#"{"jsonrpc":"2.0","id":1,"method":"submit_cloud","params":{"stream_id":0,"points":["#,
    );
    for i in 0..=MAX_CLOUD_POINTS {
        if i > 0 {
            body.push(',');
        }
        body.push_str("[0,0,0]");
    }
    body.push_str("]}}");
    let resp = rpc::handle(app().runtime(), body.as_bytes());
    assert_eq!(resp.status, 200);
    let doc = json::parse(&String::from_utf8(resp.body).unwrap()).unwrap();
    assert_eq!(doc.num("error.code"), Some(-32602.0));
    let message = doc.str_at("error.message").unwrap();
    assert!(message.contains("at most"), "unhelpful message: {message}");
}
