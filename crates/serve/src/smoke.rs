//! Open-loop HTTP load smoke: the std-only client the `smoke`
//! subcommand and the `serve-smoke` CI job run against a live server.
//!
//! Open-loop means submission does not wait for results: every frame is
//! submitted up front at its sensor timestamp, then every ticket is
//! drained with blocking polls — the same offered-load discipline the
//! batch runner's timed sources model. The smoke exercises every
//! endpoint (`open_stream`, `submit_cloud`, `poll_result`,
//! `stream_stats`, `/health`, `/metrics`) and fails loudly on any
//! contract violation.

use std::io::Write as _;

use minihttp::http::{request, ClientResponse};
use minihttp::json::{self, Json};

/// Smoke-run parameters.
#[derive(Clone, Debug)]
pub struct SmokeConfig {
    /// Server address, e.g. `127.0.0.1:7870`.
    pub addr: String,
    /// Frames to submit.
    pub frames: usize,
    /// Points per frame (must be at least the server's target points).
    pub points: usize,
    /// Offered rate used for the synthetic sensor timestamps.
    pub fps: f64,
    /// Where to write the final `/metrics` text (for
    /// `trace_check --prom` validation), if anywhere.
    pub metrics_out: Option<String>,
}

impl Default for SmokeConfig {
    fn default() -> SmokeConfig {
        SmokeConfig {
            addr: "127.0.0.1:7870".to_string(),
            frames: 16,
            points: 1024,
            fps: 10.0,
            metrics_out: None,
        }
    }
}

fn rpc(addr: &str, id: usize, method: &str, params: Json) -> Result<Json, String> {
    let body = Json::obj([
        ("jsonrpc", Json::str("2.0")),
        ("id", Json::from(id)),
        ("method", Json::str(method)),
        ("params", params),
    ])
    .to_string();
    let resp = request(addr, "POST", "/rpc", body.as_bytes())
        .map_err(|e| format!("{method}: transport error: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "{method}: HTTP {} — {}",
            resp.status,
            resp.body_text()
        ));
    }
    let doc = json::parse(&resp.body_text())
        .map_err(|e| format!("{method}: unparseable response: {e}"))?;
    if doc.num("id") != Some(id as f64) {
        return Err(format!("{method}: response id mismatch: {doc}"));
    }
    if let Some(err) = doc.path("error") {
        return Err(format!("{method}: JSON-RPC error: {err}"));
    }
    doc.path("result")
        .cloned()
        .ok_or_else(|| format!("{method}: response has neither result nor error"))
}

/// The deterministic synthetic cloud frame `i` submits: a low-discrepancy
/// point pattern, varied per frame so frames are distinguishable.
fn cloud_json(frame: usize, points: usize) -> Json {
    let pts: Vec<Json> = (0..points)
        .map(|p| {
            let f = (frame * points + p) as f64;
            Json::Arr(vec![
                Json::Num((f * 0.618_033_988).fract()),
                Json::Num((f * 0.414_213_562).fract()),
                Json::Num((f * 0.732_050_808).fract()),
            ])
        })
        .collect();
    Json::Arr(pts)
}

/// Waits until `GET /health` answers, retrying for a few seconds.
///
/// # Errors
///
/// A description of the last failure when the server never comes up.
pub fn wait_healthy(addr: &str) -> Result<(), String> {
    let mut last = String::from("no attempt made");
    for _ in 0..100 {
        match request(addr, "GET", "/health", b"") {
            Ok(ClientResponse { status: 200, .. }) => return Ok(()),
            Ok(resp) => last = format!("HTTP {}", resp.status),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    Err(format!("server at {addr} never became healthy: {last}"))
}

/// Runs the full smoke against a live server. Returns a human-readable
/// summary on success.
///
/// # Errors
///
/// A description of the first endpoint contract violation.
pub fn run(config: &SmokeConfig) -> Result<String, String> {
    let addr = config.addr.as_str();
    wait_healthy(addr)?;

    let opened = rpc(
        addr,
        1,
        "open_stream",
        Json::obj([
            ("name", Json::str("smoke")),
            ("nominal_fps", Json::from(config.fps)),
        ]),
    )?;
    let stream_id = opened
        .usize_at("stream_id")
        .ok_or_else(|| format!("open_stream: no stream_id in {opened}"))?;

    // Open loop: submit everything first, at nominal-rate timestamps.
    let mut tickets = Vec::with_capacity(config.frames);
    for i in 0..config.frames {
        let result = rpc(
            addr,
            2 + i,
            "submit_cloud",
            Json::obj([
                ("stream_id", Json::from(stream_id)),
                ("sensor_ts_s", Json::from(i as f64 / config.fps.max(1e-9))),
                ("points", cloud_json(i, config.points)),
            ]),
        )?;
        let frame_index = result
            .usize_at("frame_index")
            .ok_or_else(|| format!("submit_cloud: no frame_index in {result}"))?;
        if frame_index != i {
            return Err(format!(
                "submit_cloud: expected deterministic frame_index {i}, got {frame_index}"
            ));
        }
        tickets.push(frame_index);
    }

    // Drain: blocking poll per ticket; every frame must come back done.
    let mut classes = Vec::with_capacity(tickets.len());
    for (i, frame_index) in tickets.iter().enumerate() {
        let result = rpc(
            addr,
            1000 + i,
            "poll_result",
            Json::obj([
                ("stream_id", Json::from(stream_id)),
                ("frame_index", Json::from(*frame_index)),
                ("wait", Json::from(true)),
            ]),
        )?;
        match result.str_at("status") {
            Some("done") => {}
            other => {
                return Err(format!(
                    "poll_result: frame {frame_index} resolved {other:?}: {result}"
                ))
            }
        }
        classes.push(
            result
                .usize_at("output.predicted_class")
                .ok_or_else(|| format!("poll_result: no predicted_class in {result}"))?,
        );
    }

    // A consumed ticket must be gone: at-most-once delivery.
    let replay = rpc(
        addr,
        5000,
        "poll_result",
        Json::obj([
            ("stream_id", Json::from(stream_id)),
            ("frame_index", Json::from(tickets[0])),
        ]),
    );
    match replay {
        Err(why) if why.contains("unknown_ticket") => {}
        other => {
            return Err(format!(
            "poll_result: replaying a consumed ticket must fail with unknown_ticket, got {other:?}"
        ))
        }
    }

    let stats = rpc(
        addr,
        5001,
        "stream_stats",
        Json::obj([("stream_id", Json::from(stream_id))]),
    )?;
    let completed = stats
        .usize_at("completed")
        .ok_or_else(|| format!("stream_stats: no completed count in {stats}"))?;
    if completed != config.frames {
        return Err(format!(
            "stream_stats: completed {completed} != submitted {}",
            config.frames
        ));
    }

    let metrics = request(addr, "GET", "/metrics", b"")
        .map_err(|e| format!("/metrics: transport error: {e}"))?;
    if metrics.status != 200 {
        return Err(format!("/metrics: HTTP {}", metrics.status));
    }
    let metrics_text = metrics.body_text();
    if !metrics_text.contains("hgpcn_frames_completed_total") {
        return Err("/metrics: missing hgpcn_frames_completed_total".to_string());
    }
    if let Some(path) = &config.metrics_out {
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
        file.write_all(metrics_text.as_bytes())
            .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
    }

    Ok(format!(
        "smoke ok: {} frames served on stream {stream_id} ({} distinct predicted classes); \
         stream_stats and /metrics consistent",
        config.frames,
        {
            let mut unique = classes.clone();
            unique.sort_unstable();
            unique.dedup();
            unique.len()
        },
    ))
}
