//! JSON-RPC 2.0 dispatch for `POST /rpc`.
//!
//! Methods: `open_stream`, `submit_cloud`, `poll_result`,
//! `stream_stats`, `shard_stats`. Dispatch is generic over
//! [`StreamService`], so one handler serves both the single-runtime and
//! the sharded deployment. Error objects carry the runtime's stable
//! [`ErrorCode`](hgpcn_runtime::ErrorCode) contract: `error.code` is
//! [`ErrorCode::json_rpc`](hgpcn_runtime::ErrorCode::json_rpc),
//! `error.data.code` is
//! [`ErrorCode::as_str`](hgpcn_runtime::ErrorCode::as_str), and frame
//! failures add `error.data.stage` ([`RuntimeError::frame_stage`]).

use hgpcn_geometry::{Point3, PointCloud};
use hgpcn_pcn::Precision;
use hgpcn_runtime::{
    FrameResult, FrameStatus, LatencySummary, RuntimeError, RuntimeReport, StageBackendNames,
    StreamProfile, StreamReport, StreamService,
};
use minihttp::http::Response;
use minihttp::json::{self, Json};

/// Maximum points accepted in one `submit_cloud` frame. Guards the
/// preproc stage against a single hostile frame monopolising memory;
/// real spins are ~1e5 points, so this is ample headroom. (The HTTP
/// layer's body limit rejects most oversized payloads even earlier.)
pub const MAX_CLOUD_POINTS: usize = 1 << 18;

/// JSON-RPC 2.0 standard error codes (the runtime-specific codes live
/// in [`hgpcn_runtime::ErrorCode`]).
const PARSE_ERROR: i64 = -32700;
const INVALID_REQUEST: i64 = -32600;
const METHOD_NOT_FOUND: i64 = -32601;
const INVALID_PARAMS: i64 = -32602;

fn envelope(id: Json, key: &str, value: Json) -> Response {
    let body = Json::obj([("jsonrpc", Json::str("2.0")), ("id", id), (key, value)]);
    Response::json(body.to_string())
}

fn ok(id: Json, result: Json) -> Response {
    envelope(id, "result", result)
}

fn error_body(id: Json, code: i64, message: String, data: Option<Json>) -> Json {
    let mut err = vec![
        ("code".to_string(), Json::Num(code as f64)),
        ("message".to_string(), Json::Str(message)),
    ];
    if let Some(data) = data {
        err.push(("data".to_string(), data));
    }
    Json::obj([
        ("jsonrpc".to_string(), Json::str("2.0")),
        ("id".to_string(), id),
        ("error".to_string(), Json::obj(err)),
    ])
}

/// A method-level failure: HTTP 200, JSON-RPC error object.
fn fail(id: Json, code: i64, message: impl Into<String>) -> Response {
    Response::json(error_body(id, code, message.into(), None).to_string())
}

/// A transport-level failure (unparseable / invalid envelope): the
/// request never reached a method, so the HTTP status is 400.
fn reject(id: Json, code: i64, message: impl Into<String>) -> Response {
    Response::json_status(400, error_body(id, code, message.into(), None).to_string())
}

/// Maps a [`RuntimeError`] onto its stable wire form.
fn runtime_fail(id: Json, err: &RuntimeError) -> Response {
    Response::json(runtime_error_json(id, err).to_string())
}

fn runtime_error_json(id: Json, err: &RuntimeError) -> Json {
    error_body(
        id,
        err.code().json_rpc(),
        err.to_string(),
        Some(error_data(err)),
    )
}

/// The `error.data` payload: the snake_case code, plus the failing
/// engine stage for frame errors.
fn error_data(err: &RuntimeError) -> Json {
    let mut data = vec![("code".to_string(), Json::str(err.code().as_str()))];
    if let Some(stage) = err.frame_stage() {
        data.push(("stage".to_string(), Json::str(stage)));
    }
    Json::obj(data)
}

/// Handles one `POST /rpc` body end to end.
pub fn handle<S: StreamService>(runtime: &S, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return reject(Json::Null, PARSE_ERROR, "body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return reject(Json::Null, PARSE_ERROR, e.to_string()),
    };
    let Json::Obj(_) = doc else {
        // Batch arrays are deliberately unsupported: one request, one
        // response keeps the server and its error attribution simple.
        return reject(
            Json::Null,
            INVALID_REQUEST,
            "request must be a single JSON-RPC object",
        );
    };
    let id = match doc.path("id") {
        None | Some(Json::Null) => Json::Null,
        Some(v @ (Json::Num(_) | Json::Str(_))) => v.clone(),
        Some(_) => {
            return reject(
                Json::Null,
                INVALID_REQUEST,
                "id must be a number, string, or null",
            )
        }
    };
    if doc.str_at("jsonrpc") != Some("2.0") {
        return reject(id, INVALID_REQUEST, "jsonrpc must be the string \"2.0\"");
    }
    let Some(method) = doc.str_at("method") else {
        return reject(id, INVALID_REQUEST, "method must be a string");
    };
    let params = match doc.path("params") {
        None => Json::Obj(Default::default()),
        Some(p @ Json::Obj(_)) => p.clone(),
        Some(_) => return fail(id, INVALID_PARAMS, "params must be an object"),
    };
    match method {
        "open_stream" => open_stream(runtime, id, &params),
        "submit_cloud" => submit_cloud(runtime, id, &params),
        "poll_result" => poll_result(runtime, id, &params),
        "stream_stats" => stream_stats(runtime, id, &params),
        "shard_stats" => shard_stats(runtime, id, &params),
        other => fail(id, METHOD_NOT_FOUND, format!("unknown method {other:?}")),
    }
}

fn open_stream<S: StreamService>(runtime: &S, id: Json, params: &Json) -> Response {
    let Some(name) = params.str_at("name") else {
        return fail(id, INVALID_PARAMS, "name must be a string");
    };
    let mut profile = StreamProfile::new(name);
    match params.path("nominal_fps") {
        None => {}
        Some(Json::Num(fps)) if fps.is_finite() && *fps >= 0.0 => {
            profile = profile.nominal_fps(*fps);
        }
        Some(_) => {
            return fail(
                id,
                INVALID_PARAMS,
                "nominal_fps must be a non-negative number",
            );
        }
    }
    match params.path("precision") {
        None => {}
        Some(Json::Str(s)) if s == "f32" => profile = profile.precision(Precision::F32),
        Some(Json::Str(s)) if s == "int8" => profile = profile.precision(Precision::Int8),
        Some(_) => {
            return fail(id, INVALID_PARAMS, "precision must be \"f32\" or \"int8\"");
        }
    }
    match runtime.open_stream(profile) {
        Ok(stream_id) => ok(id, Json::obj([("stream_id", Json::from(stream_id))])),
        Err(err) => runtime_fail(id, &err),
    }
}

fn submit_cloud<S: StreamService>(runtime: &S, id: Json, params: &Json) -> Response {
    let Some(stream_id) = params.usize_at("stream_id") else {
        return fail(
            id,
            INVALID_PARAMS,
            "stream_id must be a non-negative integer",
        );
    };
    let sensor_ts_s = match params.path("sensor_ts_s") {
        None => 0.0,
        Some(Json::Num(ts)) if ts.is_finite() && *ts >= 0.0 => *ts,
        Some(_) => {
            return fail(
                id,
                INVALID_PARAMS,
                "sensor_ts_s must be a non-negative number",
            );
        }
    };
    let Some(points) = params.arr("points") else {
        return fail(
            id,
            INVALID_PARAMS,
            "points must be an array of [x, y, z] triples",
        );
    };
    if points.is_empty() {
        return fail(id, INVALID_PARAMS, "points must not be empty");
    }
    if points.len() > MAX_CLOUD_POINTS {
        return fail(
            id,
            INVALID_PARAMS,
            format!(
                "cloud has {} points; the server accepts at most {MAX_CLOUD_POINTS}",
                points.len()
            ),
        );
    }
    let mut cloud = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        let Json::Arr(coords) = p else {
            return fail(id, INVALID_PARAMS, format!("points[{i}] is not an array"));
        };
        let [Json::Num(x), Json::Num(y), Json::Num(z)] = coords.as_slice() else {
            return fail(
                id,
                INVALID_PARAMS,
                format!("points[{i}] must be exactly [x, y, z] numbers"),
            );
        };
        if !(x.is_finite() && y.is_finite() && z.is_finite()) {
            return fail(
                id,
                INVALID_PARAMS,
                format!("points[{i}] has a non-finite coordinate"),
            );
        }
        cloud.push(Point3::new(*x as f32, *y as f32, *z as f32));
    }
    match runtime.submit(stream_id, sensor_ts_s, PointCloud::from_points(cloud)) {
        Ok(ticket) => ok(
            id,
            Json::obj([
                ("stream_id", Json::from(ticket.stream_id)),
                ("frame_index", Json::from(ticket.frame_index)),
            ]),
        ),
        Err(err) => runtime_fail(id, &err),
    }
}

fn poll_result<S: StreamService>(runtime: &S, id: Json, params: &Json) -> Response {
    let (Some(stream_id), Some(frame_index)) =
        (params.usize_at("stream_id"), params.usize_at("frame_index"))
    else {
        return fail(
            id,
            INVALID_PARAMS,
            "stream_id and frame_index must be non-negative integers",
        );
    };
    let wait = match params.path("wait") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return fail(id, INVALID_PARAMS, "wait must be a boolean"),
    };
    let ticket = hgpcn_runtime::FrameTicket {
        stream_id,
        frame_index,
    };
    let status = if wait {
        runtime.wait(ticket)
    } else {
        runtime.poll(ticket)
    };
    match status {
        Ok(FrameStatus::Pending) => ok(id, Json::obj([("status", Json::str("pending"))])),
        Ok(FrameStatus::Done(result)) => ok(id, done_json(&result)),
        Ok(FrameStatus::Failed(err)) => {
            // The poll itself succeeded; the *frame* failed. That is a
            // result (the server keeps serving), not an RPC error.
            ok(
                id,
                Json::obj([
                    ("status", Json::str("failed")),
                    (
                        "error",
                        Json::obj([
                            ("code", Json::Num(err.code().json_rpc() as f64)),
                            ("message", Json::str(err.to_string())),
                            ("data", error_data(&err)),
                        ]),
                    ),
                ]),
            )
        }
        Err(err) => runtime_fail(id, &err),
    }
}

fn done_json(result: &FrameResult) -> Json {
    let out = &result.output;
    let rec = &result.record;
    Json::obj([
        ("status", Json::str("done")),
        ("stream_id", Json::from(rec.stream_id)),
        ("frame_index", Json::from(rec.frame_index)),
        (
            "output",
            Json::obj([
                ("predicted_class", Json::from(out.predicted_class(0))),
                ("rows", Json::from(out.logits.rows())),
                ("classes", Json::from(out.logits.cols())),
                ("macs", Json::Num(out.macs as f64)),
                ("precision", Json::str(out.precision.name())),
            ]),
        ),
        (
            "timing",
            Json::obj([
                ("virtual_arrival_s", Json::from(rec.virtual_arrival_s)),
                (
                    "virtual_preproc_start_s",
                    Json::from(rec.virtual_preproc_start_s),
                ),
                (
                    "virtual_preproc_done_s",
                    Json::from(rec.virtual_preproc_done_s),
                ),
                (
                    "virtual_infer_start_s",
                    Json::from(rec.virtual_infer_start_s),
                ),
                ("virtual_done_s", Json::from(rec.virtual_done_s)),
                ("wall_done_s", Json::from(rec.wall_done.as_secs_f64())),
            ]),
        ),
    ])
}

fn stream_stats<S: StreamService>(runtime: &S, id: Json, params: &Json) -> Response {
    match params.path("stream_id") {
        Some(_) => {
            let Some(stream_id) = params.usize_at("stream_id") else {
                return fail(
                    id,
                    INVALID_PARAMS,
                    "stream_id must be a non-negative integer",
                );
            };
            match runtime.stream_stats(stream_id) {
                Ok(report) => ok(id, stream_json(&report)),
                Err(err) => runtime_fail(id, &err),
            }
        }
        None => {
            let report = runtime.stats();
            let streams: Vec<Json> = report.streams.iter().map(stream_json).collect();
            ok(
                id,
                Json::obj([
                    ("total_frames", Json::from(report.total_frames)),
                    ("total_dropped", Json::from(report.total_dropped)),
                    ("virtual_makespan_s", Json::from(report.virtual_makespan_s)),
                    (
                        "modeled_pipelined_fps",
                        Json::from(report.modeled_pipelined_fps),
                    ),
                    ("wall_fps", Json::from(report.wall_fps())),
                    ("precision", Json::str(report.precision)),
                    ("kernel_backend", Json::str(report.kernel_backend)),
                    (
                        "stage_backends",
                        stage_backends_json(&report.stage_backends),
                    ),
                    ("preproc_reuse", preproc_reuse_json(&report)),
                    ("streams", Json::Arr(streams)),
                ]),
            )
        }
    }
}

/// `shard_stats`: one shard's serving summary (`{"shard": k}` params),
/// or — with no params — the shard count plus every shard's summary.
/// On a single-runtime server this degenerates to one shard, `0`, whose
/// summary equals the aggregate `stream_stats` view.
fn shard_stats<S: StreamService>(runtime: &S, id: Json, params: &Json) -> Response {
    match params.path("shard") {
        Some(_) => {
            let Some(shard) = params.usize_at("shard") else {
                return fail(id, INVALID_PARAMS, "shard must be a non-negative integer");
            };
            match runtime.shard_stats(shard) {
                Ok(report) => ok(id, shard_json(shard, &report)),
                Err(err) => runtime_fail(id, &err),
            }
        }
        None => {
            let count = runtime.shard_count();
            let mut shards = Vec::with_capacity(count);
            for shard in 0..count {
                match runtime.shard_stats(shard) {
                    Ok(report) => shards.push(shard_json(shard, &report)),
                    Err(err) => return runtime_fail(id, &err),
                }
            }
            ok(
                id,
                Json::obj([
                    ("shard_count", Json::from(count)),
                    ("shards", Json::Arr(shards)),
                ]),
            )
        }
    }
}

fn shard_json(shard: usize, report: &RuntimeReport) -> Json {
    let streams: Vec<Json> = report.streams.iter().map(stream_json).collect();
    Json::obj([
        ("shard", Json::from(shard)),
        ("total_frames", Json::from(report.total_frames)),
        ("total_dropped", Json::from(report.total_dropped)),
        ("virtual_makespan_s", Json::from(report.virtual_makespan_s)),
        (
            "modeled_pipelined_fps",
            Json::from(report.modeled_pipelined_fps),
        ),
        ("wall_fps", Json::from(report.wall_fps())),
        ("precision", Json::str(report.precision)),
        ("kernel_backend", Json::str(report.kernel_backend)),
        (
            "stage_backends",
            stage_backends_json(&report.stage_backends),
        ),
        ("preproc_reuse", preproc_reuse_json(report)),
        ("streams", Json::Arr(streams)),
    ])
}

/// The preprocessing-state-policy identity both report views expose:
/// the resolved policy plus the warm-hit/cold-miss tally and the warm
/// ratio (`hits / (hits + misses)`). Identity provenance like
/// `stage_backends` — warm and cold frames are bit-identical — but a
/// ratio pinned near 0.0 under policy `on` is the silent-fallback
/// diagnostic (the AABB drifts every frame, so reuse never engages).
fn preproc_reuse_json(report: &RuntimeReport) -> Json {
    Json::obj([
        ("policy", Json::str(report.preproc_reuse)),
        ("hits", Json::Num(report.preproc_reuse_hits as f64)),
        ("misses", Json::Num(report.preproc_reuse_misses as f64)),
        ("warm_ratio", Json::from(report.preproc_warm_ratio())),
    ])
}

/// The `{stage: backend}` map both report views expose — the JSON face
/// of [`StageBackendNames`] (host-speed provenance; every backend is
/// bit-identical to its anchor).
fn stage_backends_json(stages: &StageBackendNames) -> Json {
    Json::obj(
        stages
            .as_pairs()
            .map(|(stage, backend)| (stage, Json::str(backend))),
    )
}

fn latency_ms_json(summary: &LatencySummary) -> Json {
    Json::obj([
        ("p50", Json::from(summary.p50.ms())),
        ("p95", Json::from(summary.p95.ms())),
        ("p99", Json::from(summary.p99.ms())),
        ("max", Json::from(summary.max.ms())),
        ("mean", Json::from(summary.mean.ms())),
    ])
}

fn stream_json(s: &StreamReport) -> Json {
    Json::obj([
        ("stream_id", Json::from(s.stream_id)),
        ("shard", Json::from(s.shard)),
        ("name", Json::str(s.name.clone())),
        ("offered", Json::from(s.offered)),
        ("completed", Json::from(s.completed)),
        ("dropped", Json::from(s.dropped)),
        ("sensor_fps", Json::from(s.sensor_fps)),
        ("precision", Json::str(s.precision)),
        ("preproc_reuse", Json::str(s.preproc_reuse)),
        ("preproc_reuse_hits", Json::Num(s.preproc_reuse_hits as f64)),
        (
            "preproc_reuse_misses",
            Json::Num(s.preproc_reuse_misses as f64),
        ),
        ("achieved_fps", Json::from(s.achieved_fps)),
        ("service_ms", latency_ms_json(&s.service)),
        ("sojourn_ms", latency_ms_json(&s.sojourn)),
    ])
}
