//! `hgpcn-serve` — serve the HgPCN runtime over HTTP/JSON-RPC.
//!
//! ```text
//! hgpcn-serve serve  [--addr A] [--preproc N] [--infer N] [--queue N]
//!                    [--max-batch N] [--target-points N] [--seed N]
//!                    [--shards N] [--placement hash|least-loaded]
//! hgpcn-serve config [--addr A]      # print ready-to-paste client JSON
//! hgpcn-serve smoke  [--addr A] [--frames N] [--points N] [--fps F]
//!                    [--metrics-out FILE]
//! ```

use std::process::ExitCode;

use hgpcn_runtime::{PlacementPolicy, RuntimeConfig};
use hgpcn_serve::smoke::{self, SmokeConfig};
use hgpcn_serve::{config_text, default_net, App};

const USAGE: &str = "\
usage: hgpcn-serve <subcommand> [options]

subcommands:
  serve   boot the HTTP/JSON-RPC server (default)
            --addr HOST:PORT    bind address   [127.0.0.1:7870]
            --preproc N         preprocessing workers  [2]
            --infer N           inference workers      [2]
            --queue N           inter-stage queue capacity [64]
            --max-batch N       inference micro-batch cap  [4]
            --target-points N   points sampled per frame   [512]
            --seed N            deterministic base seed    [7]
            --shards N          runtime replicas sharing one net [1]
            --placement P       stream placement: hash | least-loaded [hash]
  config  print ready-to-paste client JSON for every endpoint
            --addr HOST:PORT    address to template into the examples
  smoke   run the open-loop HTTP load smoke against a live server
            --addr HOST:PORT    server to exercise  [127.0.0.1:7870]
            --frames N          frames to submit    [16]
            --points N          points per frame    [1024]
            --fps F             offered sensor rate [10]
            --metrics-out FILE  save the final /metrics scrape
";

/// One `--flag value` pair puller over the raw argument list.
struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn take(&mut self, flag: &str) -> Result<Option<String>, String> {
        match self.args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) if i + 1 < self.args.len() => {
                self.args.remove(i);
                Ok(Some(self.args.remove(i)))
            }
            Some(_) => Err(format!("{flag} needs a value")),
        }
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str, default: T) -> Result<T, String> {
        match self.take(flag)? {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("{flag}: cannot parse {raw:?}")),
        }
    }

    fn finish(self) -> Result<(), String> {
        match self.args.first() {
            None => Ok(()),
            Some(stray) => Err(format!("unrecognised argument {stray:?}")),
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sub = if args.first().is_some_and(|a| !a.starts_with('-')) {
        args.remove(0)
    } else {
        "serve".to_string()
    };
    let result = match sub.as_str() {
        "serve" => cmd_serve(Flags { args }),
        "config" => cmd_config(Flags { args }),
        "smoke" => cmd_smoke(Flags { args }),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(why) => {
            eprintln!("hgpcn-serve: {why}");
            ExitCode::from(2)
        }
    }
}

fn cmd_serve(mut flags: Flags) -> Result<(), String> {
    let addr: String = flags.take("--addr")?.unwrap_or("127.0.0.1:7870".into());
    let seed: u64 = flags.take_parsed("--seed", 7)?;
    let shards: usize = flags.take_parsed("--shards", 1)?;
    let placement = match flags.take("--placement")?.as_deref() {
        None | Some("hash") => PlacementPolicy::ConsistentHash,
        Some("least-loaded") => PlacementPolicy::LeastLoaded,
        Some(other) => {
            return Err(format!(
                "--placement: {other:?} is not \"hash\" or \"least-loaded\""
            ))
        }
    };
    let config = RuntimeConfig::default()
        .preproc_workers(flags.take_parsed("--preproc", 2)?)
        .inference_workers(flags.take_parsed("--infer", 2)?)
        .queue_capacity(flags.take_parsed("--queue", 64)?)
        .max_batch(flags.take_parsed("--max-batch", 4)?)
        .target_points(flags.take_parsed("--target-points", 512)?)
        .seed(seed);
    flags.finish()?;
    // Validation failures (via App construction → runtime start) exit
    // cleanly here — a bad config must never reach the worker pools.
    // `--shards 1` keeps the plain single-runtime app (identical wire
    // output to every previous release); `--shards N` fronts N replicas
    // of the same config sharing one copy of the weights.
    let handle = if shards <= 1 {
        App::new(config, default_net(seed))
            .map_err(|e| e.to_string())?
            .serve(&addr)
            .map_err(|e| format!("bind {addr}: {e}"))?
    } else {
        App::sharded(config, shards, placement, default_net(seed))
            .map_err(|e| e.to_string())?
            .serve(&addr)
            .map_err(|e| format!("bind {addr}: {e}"))?
    };
    println!("hgpcn-serve listening on http://{}", handle.addr());
    if shards > 1 {
        let policy = match placement {
            PlacementPolicy::ConsistentHash => "hash",
            PlacementPolicy::LeastLoaded => "least-loaded",
        };
        println!("shards: {shards} (placement: {policy})");
    }
    println!("endpoints: POST /rpc   GET /health   GET /metrics");
    println!("try: hgpcn-serve config --addr {}", handle.addr());
    // Serve until the process is killed; the handle's Drop stops the
    // accept loop if we ever fall out of the park.
    loop {
        std::thread::park();
    }
}

fn cmd_config(mut flags: Flags) -> Result<(), String> {
    let addr: String = flags.take("--addr")?.unwrap_or("127.0.0.1:7870".into());
    flags.finish()?;
    print!("{}", config_text(&addr));
    Ok(())
}

fn cmd_smoke(mut flags: Flags) -> Result<(), String> {
    let defaults = SmokeConfig::default();
    let config = SmokeConfig {
        addr: flags.take("--addr")?.unwrap_or(defaults.addr),
        frames: flags.take_parsed("--frames", defaults.frames)?,
        points: flags.take_parsed("--points", defaults.points)?,
        fps: flags.take_parsed("--fps", defaults.fps)?,
        metrics_out: flags.take("--metrics-out")?,
    };
    flags.finish()?;
    let summary = smoke::run(&config)?;
    println!("{summary}");
    Ok(())
}
