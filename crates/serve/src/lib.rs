//! `hgpcn-serve` — the HTTP/JSON-RPC serving front end over the
//! session-oriented runtime.
//!
//! The runtime crate's [`ServingRuntime`] is transport-agnostic; this
//! crate is one front end over it (the microkernel seam: one core API,
//! multiple front ends — the batch `Runtime::run` driver is another).
//! It speaks JSON-RPC 2.0 over HTTP/1.1, std-only, via the in-tree
//! [`minihttp`] compat layer:
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /rpc` | JSON-RPC 2.0: `open_stream`, `submit_cloud`, `poll_result`, `stream_stats`, `shard_stats` |
//! | `GET /health` | liveness probe (`{"status":"ok"}`) |
//! | `GET /metrics` | Prometheus text format, from the live stats snapshot |
//!
//! [`App`] is generic over [`StreamService`], so the same router serves
//! a single [`ServingRuntime`] ([`App::new`]) or an N-replica
//! [`ShardedRuntime`] ([`App::sharded`],
//! the binary's `--shards N` flag) — the RPC surface and golden wire
//! format are identical either way, sharding only adds (`shard_stats`,
//! the `shard` field on stream stats, `hgpcn_shard`-labeled metrics).
//!
//! Error contract: transport problems (unparseable JSON, invalid
//! envelope) are HTTP 4xx carrying the standard JSON-RPC error codes
//! (`-32700`, `-32600`); method-level failures are HTTP 200 with a
//! JSON-RPC error object whose code is the stable
//! [`RuntimeError::code`](hgpcn_runtime::RuntimeError::code) mapping.
//! A *frame* failure is not an RPC failure: `poll_result` resolves with
//! `{"status": "failed", "error": {...}}` and the server keeps serving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rpc;
pub mod smoke;

use std::sync::Arc;

use hgpcn_pcn::{PointNet, PointNetConfig};
use hgpcn_runtime::{
    PlacementPolicy, RuntimeConfig, RuntimeError, ServingRuntime, ShardedRuntime, StreamService,
};
use minihttp::http::{Limits, Request, Response, Server, ServerHandle};
use minihttp::json::Json;

/// The served application: a live stream service plus the HTTP router.
///
/// Generic over the [`StreamService`] it fronts; defaults to a single
/// [`ServingRuntime`], so existing `App::new` call sites are untouched.
pub struct App<S: StreamService + 'static = ServingRuntime> {
    runtime: Arc<S>,
}

impl<S: StreamService + 'static> std::fmt::Debug for App<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App").finish_non_exhaustive()
    }
}

impl App {
    /// Boots a single-replica serving session over `net` with `config`.
    ///
    /// The network is `impl Into<Arc<PointNet>>` like
    /// [`ServingRuntime::start`]: by-value call sites compile unchanged,
    /// and callers who still need the net (e.g. for calibration) can
    /// pass an `Arc` clone instead of cloning the weights.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when `config` fails
    /// validation — callers turn this into a clean startup failure, not
    /// a worker panic.
    pub fn new(config: RuntimeConfig, net: impl Into<Arc<PointNet>>) -> Result<App, RuntimeError> {
        Ok(App {
            runtime: Arc::new(ServingRuntime::start(config, net)?),
        })
    }
}

impl App<ShardedRuntime> {
    /// Boots `shards` runtime replicas behind `policy`, all serving one
    /// shared copy of `net` — the `--shards N` deployment of the same
    /// front end.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when `config` fails
    /// validation or `shards == 0`.
    pub fn sharded(
        config: RuntimeConfig,
        shards: usize,
        policy: PlacementPolicy,
        net: impl Into<Arc<PointNet>>,
    ) -> Result<App<ShardedRuntime>, RuntimeError> {
        Ok(App {
            runtime: Arc::new(ShardedRuntime::start(config, shards, policy, net)?),
        })
    }
}

impl<S: StreamService + 'static> App<S> {
    /// The live stream service.
    pub fn runtime(&self) -> &S {
        &self.runtime
    }

    /// Routes one HTTP request. Pure function of the request and the
    /// session state — the tests drive it in-process, the server binary
    /// drives it from sockets; both see identical responses.
    pub fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => Response::json("{\"status\":\"ok\"}"),
            ("GET", "/metrics") => {
                let text = self.runtime.metrics().prometheus_text();
                Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4",
                    body: text.into_bytes(),
                }
            }
            ("POST", "/rpc") => rpc::handle(self.runtime.as_ref(), &req.body),
            (_, "/rpc") | (_, "/health") | (_, "/metrics") => {
                Response::text(405, "method not allowed\n")
            }
            _ => Response::text(404, "not found\n"),
        }
    }

    /// Binds `addr` and serves until the handle is stopped.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve(self, addr: &str) -> std::io::Result<ServerHandle> {
        let app = Arc::new(self);
        Server::bind(addr, Limits::default(), move |req: &Request| {
            app.handle(req)
        })
    }
}

/// The default network the binary serves: the paper's 40-class
/// classification PointNet++, seeded deterministically.
pub fn default_net(seed: u64) -> PointNet {
    PointNet::new(PointNetConfig::classification(), seed)
}

/// Ready-to-paste client JSON for every RPC method — the output of the
/// `config` subcommand. Deterministic, so docs and golden tests can
/// quote it verbatim.
pub fn config_text(addr: &str) -> String {
    let tiny_cloud: Vec<Json> = (0..4)
        .map(|i| {
            let f = i as f64;
            Json::Arr(vec![
                Json::Num((f * 0.618_034).fract()),
                Json::Num((f * 0.414_214).fract()),
                Json::Num((f * 0.732_051).fract()),
            ])
        })
        .collect();
    let envelope = |id: usize, method: &str, params: Json| {
        Json::obj([
            ("jsonrpc", Json::str("2.0")),
            ("id", Json::from(id)),
            ("method", Json::str(method)),
            ("params", params),
        ])
        .to_string()
    };
    let open = envelope(
        1,
        "open_stream",
        Json::obj([
            ("name", Json::str("lidar-a")),
            ("nominal_fps", Json::from(10.0)),
        ]),
    );
    let submit = envelope(
        2,
        "submit_cloud",
        Json::obj([
            ("stream_id", Json::from(0usize)),
            ("sensor_ts_s", Json::from(0.0)),
            ("points", Json::Arr(tiny_cloud)),
        ]),
    );
    let poll = envelope(
        3,
        "poll_result",
        Json::obj([
            ("stream_id", Json::from(0usize)),
            ("frame_index", Json::from(0usize)),
            ("wait", Json::from(true)),
        ]),
    );
    let stats = envelope(
        4,
        "stream_stats",
        Json::obj([("stream_id", Json::from(0usize))]),
    );
    format!(
        "# hgpcn-serve client examples (server at http://{addr})\n\
         #\n\
         # NOTE: the example cloud has 4 points for brevity; a real frame\n\
         # must carry at least the server's --target-points points.\n\
         \n\
         # 1. open a stream\n\
         curl -s http://{addr}/rpc -d '{open}'\n\
         \n\
         # 2. submit a frame (returns the ticket {{stream_id, frame_index}})\n\
         curl -s http://{addr}/rpc -d '{submit}'\n\
         \n\
         # 3. poll the ticket (wait=true blocks until the frame resolves)\n\
         curl -s http://{addr}/rpc -d '{poll}'\n\
         \n\
         # 4. per-stream serving stats\n\
         curl -s http://{addr}/rpc -d '{stats}'\n\
         \n\
         # liveness + Prometheus metrics\n\
         curl -s http://{addr}/health\n\
         curl -s http://{addr}/metrics\n"
    )
}
