//! Statistical validation of the synthetic dataset generators: the
//! properties the evaluation leans on (size, structure, determinism) hold
//! for every generator at realistic-but-test-sized scales.

use hgpcn_datasets::kitti::{KittiConfig, KittiStream};
use hgpcn_datasets::modelnet::{self, ModelNetObject};
use hgpcn_datasets::s3dis::{self, RoomConfig};
use hgpcn_datasets::shapenet::{self, ShapeNetCategory};
use hgpcn_geometry::Point3;

#[test]
fn every_modelnet_class_produces_structured_objects() {
    for obj in ModelNetObject::ALL {
        let cloud = modelnet::generate(obj, 4_000, 11);
        assert_eq!(cloud.len(), 4_000, "{}", obj.label());
        assert!(cloud.validate_finite().is_ok());
        // Objects are genuinely 3-D: no degenerate axis.
        let b = cloud.bounds().unwrap();
        let e = b.extent();
        assert!(
            e.x > 0.1 && e.y > 0.1 && e.z > 0.1,
            "{} extent {e}",
            obj.label()
        );
        // Surface-sampled, not volumetric: the centroid region is sparse
        // relative to a uniform fill for at least the hollow shapes.
        assert!(b.diagonal() < 100.0);
    }
}

#[test]
fn shapenet_categories_have_distinct_parts_in_space() {
    for cat in ShapeNetCategory::ALL {
        let cloud = shapenet::generate(cat, 1_500, 5);
        // Parts occupy different regions: centroids of part 0 and the last
        // part must differ.
        let parts = cat.part_count();
        let mut sums = vec![(Point3::ORIGIN, 0usize); parts];
        for i in 0..cloud.len() {
            let part = cloud.feature(i)[0] as usize;
            sums[part].0 += cloud.point(i);
            sums[part].1 += 1;
        }
        for (_, count) in &sums {
            assert!(*count > 0, "{}: empty part", cat.label());
        }
        let c0 = sums[0].0 / sums[0].1 as f32;
        let cl = sums[parts - 1].0 / sums[parts - 1].1 as f32;
        assert!(c0.distance(cl) > 0.05, "{}: parts coincide", cat.label());
    }
}

#[test]
fn s3dis_room_structure_dominates_and_fills_the_shell() {
    let cfg = RoomConfig::default();
    let room = s3dis::generate_room(cfg, 30_000, 3);
    // Points near the walls/ceiling/floor should account for the majority.
    let near_shell = room
        .iter()
        .filter(|p| {
            p.x < 0.2
                || p.x > cfg.width - 0.2
                || p.y < 0.2
                || p.y > cfg.depth - 0.2
                || p.z < 0.2
                || p.z > cfg.height - 0.2
        })
        .count();
    assert!(
        near_shell * 2 > room.len(),
        "shell points {near_shell} of {}",
        room.len()
    );
}

#[test]
fn kitti_stream_has_ground_and_objects() {
    let cfg = KittiConfig {
        beams: 24,
        azimuth_steps: 240,
        ..KittiConfig::standard()
    };
    let frame = KittiStream::new(cfg, 7).next().unwrap().cloud;
    let ground = frame.iter().filter(|p| p.z.abs() < 0.1).count();
    let elevated = frame.iter().filter(|p| p.z > 0.5).count();
    assert!(ground > 100, "ground returns: {ground}");
    assert!(elevated > 50, "building/car returns: {elevated}");
}

#[test]
fn kitti_dense_config_scales_returns() {
    let small = KittiConfig {
        beams: 16,
        azimuth_steps: 120,
        ..KittiConfig::standard()
    };
    let bigger = KittiConfig {
        beams: 32,
        azimuth_steps: 240,
        ..KittiConfig::standard()
    };
    let a = hgpcn_datasets::kitti::generate_frame(small, 9).len();
    let b = hgpcn_datasets::kitti::generate_frame(bigger, 9).len();
    assert!(b > 2 * a, "returns must scale with resolution: {a} vs {b}");
}

#[test]
fn generators_are_seed_deterministic_across_types() {
    assert_eq!(
        modelnet::generate(ModelNetObject::Car, 1000, 42),
        modelnet::generate(ModelNetObject::Car, 1000, 42)
    );
    assert_eq!(
        s3dis::generate_room(RoomConfig::default(), 1000, 42),
        s3dis::generate_room(RoomConfig::default(), 1000, 42)
    );
    assert_ne!(
        modelnet::generate(ModelNetObject::Car, 1000, 42),
        modelnet::generate(ModelNetObject::Car, 1000, 43)
    );
}
