//! ShapeNet-like part-segmentation objects.
//!
//! ShapeNet frames in the paper are already small — under the 4096-point
//! down-sampling target (§VII-B) — so the pre-processing figures skip them
//! and the inference figures feed them at 2048 points. Objects here carry a
//! per-point *part id* feature so the part-segmentation examples have
//! something meaningful to segment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_geometry::{Point3, PointCloud};

use crate::shapes::{jitter, sample_cylinder, sample_disk, sample_sphere};

/// The synthetic ShapeNet-like categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShapeNetCategory {
    /// Cap: crown sphere section + visor disk (2 parts).
    Cap,
    /// Mug: body cylinder + handle arc (2 parts).
    Mug,
    /// Rocket: body + nose + fins (3 parts).
    Rocket,
    /// Skateboard: deck + two truck/wheel clusters (3 parts).
    Skateboard,
}

impl ShapeNetCategory {
    /// All categories.
    pub const ALL: [ShapeNetCategory; 4] = [
        ShapeNetCategory::Cap,
        ShapeNetCategory::Mug,
        ShapeNetCategory::Rocket,
        ShapeNetCategory::Skateboard,
    ];

    /// Number of parts in this category's segmentation ground truth.
    pub fn part_count(self) -> usize {
        match self {
            ShapeNetCategory::Cap | ShapeNetCategory::Mug => 2,
            ShapeNetCategory::Rocket | ShapeNetCategory::Skateboard => 3,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ShapeNetCategory::Cap => "SN.cap",
            ShapeNetCategory::Mug => "SN.mug",
            ShapeNetCategory::Rocket => "SN.rocket",
            ShapeNetCategory::Skateboard => "SN.skateboard",
        }
    }
}

/// Generates a ShapeNet-like object of `n` points with a 1-D part-id
/// feature per point.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate(category: ShapeNetCategory, n: usize, seed: u64) -> PointCloud {
    assert!(n > 0, "frame must contain at least one point");
    let mut rng =
        StdRng::seed_from_u64(seed ^ (category as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    // (points, part id) segments.
    let mut segments: Vec<(Vec<Point3>, f32)> = Vec::new();
    match category {
        ShapeNetCategory::Cap => {
            let crown = n * 7 / 10;
            let mut c = Vec::with_capacity(crown);
            while c.len() < crown {
                let mut batch = sample_sphere(&mut rng, Point3::new(0.0, 0.0, 0.0), 0.5, crown);
                batch.retain(|p| p.z > 0.05);
                c.extend(batch);
            }
            c.truncate(crown);
            segments.push((c, 0.0));
            segments.push((
                sample_disk(&mut rng, Point3::new(0.35, 0.0, 0.05), 0.35, n - crown),
                1.0,
            ));
        }
        ShapeNetCategory::Mug => {
            let body = n * 8 / 10;
            segments.push((
                sample_cylinder(&mut rng, Point3::ORIGIN, 0.4, 0.9, body),
                0.0,
            ));
            // Handle: arc of small spheres.
            let handle = n - body;
            let mut h = Vec::with_capacity(handle);
            for i in 0..handle {
                let t = i as f32 / handle.max(1) as f32 * std::f32::consts::PI;
                let center =
                    Point3::new(0.4 + 0.25 * t.sin(), 0.0, 0.2 + 0.5 * (1.0 - t.cos()) / 2.0);
                let d: f32 = rng.gen_range(0.0..0.05);
                let phi: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                h.push(center + Point3::new(d * phi.cos(), d * phi.sin(), 0.0));
            }
            segments.push((h, 1.0));
        }
        ShapeNetCategory::Rocket => {
            let body = n * 6 / 10;
            let nose = n * 2 / 10;
            segments.push((
                sample_cylinder(&mut rng, Point3::ORIGIN, 0.2, 1.2, body),
                0.0,
            ));
            let mut tip = Vec::with_capacity(nose);
            while tip.len() < nose {
                let mut batch = sample_sphere(&mut rng, Point3::new(0.0, 0.0, 1.2), 0.2, nose);
                batch.retain(|p| p.z >= 1.2);
                tip.extend(batch);
            }
            tip.truncate(nose);
            segments.push((tip, 1.0));
            let fins = n - body - nose;
            let mut f = Vec::with_capacity(fins);
            for i in 0..fins {
                let side = i % 3;
                let theta = side as f32 * std::f32::consts::TAU / 3.0;
                let r: f32 = rng.gen_range(0.2..0.5);
                let z: f32 =
                    rng.gen_range(0.0..0.3) * (0.5 - r) / 0.3 + rng.gen_range(0.0f32..0.15);
                f.push(Point3::new(r * theta.cos(), r * theta.sin(), z.max(0.0)));
            }
            segments.push((f, 2.0));
        }
        ShapeNetCategory::Skateboard => {
            let deck = n * 7 / 10;
            segments.push((
                crate::shapes::sample_plane(
                    &mut rng,
                    Point3::new(-0.8, -0.2, 0.12),
                    Point3::new(1.6, 0.0, 0.0),
                    Point3::new(0.0, 0.4, 0.0),
                    deck,
                ),
                0.0,
            ));
            let trucks = n - deck;
            let front = trucks / 2;
            segments.push((
                sample_cylinder(&mut rng, Point3::new(-0.5, -0.15, 0.0), 0.06, 0.12, front),
                1.0,
            ));
            segments.push((
                sample_cylinder(
                    &mut rng,
                    Point3::new(0.5, -0.15, 0.0),
                    0.06,
                    0.12,
                    trucks - front,
                ),
                2.0,
            ));
        }
    }

    let mut cloud = PointCloud::with_feature_dim(1);
    for (mut pts, part) in segments {
        jitter(&mut rng, &mut pts, 0.003);
        for p in pts {
            cloud.push_with_feature(p, &[part]);
        }
    }
    cloud
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_parts() {
        for cat in ShapeNetCategory::ALL {
            let cloud = generate(cat, 2048, 3);
            assert_eq!(cloud.len(), 2048, "{}", cat.label());
            assert_eq!(cloud.feature_dim(), 1);
            let mut parts: Vec<i32> = (0..cloud.len())
                .map(|i| cloud.feature(i)[0] as i32)
                .collect();
            parts.sort_unstable();
            parts.dedup();
            assert_eq!(parts.len(), cat.part_count(), "{}", cat.label());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(ShapeNetCategory::Mug, 512, 9),
            generate(ShapeNetCategory::Mug, 512, 9)
        );
    }

    #[test]
    fn finite_coordinates() {
        for cat in ShapeNetCategory::ALL {
            assert!(generate(cat, 700, 11).validate_finite().is_ok());
        }
    }
}
