//! Parametric surface samplers: the primitives the object and scene
//! generators compose.
//!
//! Point clouds from real sensors sample object *surfaces*, so every
//! primitive here samples a 2-D surface embedded in 3-D, with optional
//! Gaussian jitter standing in for sensor noise.

use rand::Rng;

use hgpcn_geometry::Point3;

/// Samples `n` points on the surface of a sphere.
pub fn sample_sphere<R: Rng>(rng: &mut R, center: Point3, radius: f32, n: usize) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            // Marsaglia: uniform direction via normalized Gaussians.
            let v = loop {
                let x: f32 = rng.gen_range(-1.0..1.0);
                let y: f32 = rng.gen_range(-1.0..1.0);
                let z: f32 = rng.gen_range(-1.0..1.0);
                let p = Point3::new(x, y, z);
                let n2 = p.dot(p);
                if n2 > 1e-6 && n2 <= 1.0 {
                    break p / n2.sqrt();
                }
            };
            center + v * radius
        })
        .collect()
}

/// Samples `n` points on an axis-aligned rectangle (a wall, floor or table
/// top): the plane spans `origin + u*su + v*sv` for `u, v ∈ [0, 1]`.
pub fn sample_plane<R: Rng>(
    rng: &mut R,
    origin: Point3,
    su: Point3,
    sv: Point3,
    n: usize,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let u: f32 = rng.gen_range(0.0..1.0);
            let v: f32 = rng.gen_range(0.0..1.0);
            origin + su * u + sv * v
        })
        .collect()
}

/// Samples `n` points on the surface of an axis-aligned box, area-weighted
/// across the six faces.
pub fn sample_box<R: Rng>(rng: &mut R, min: Point3, max: Point3, n: usize) -> Vec<Point3> {
    let e = max - min;
    let areas = [
        e.y * e.z,
        e.y * e.z,
        e.x * e.z,
        e.x * e.z,
        e.x * e.y,
        e.x * e.y,
    ];
    let total: f32 = areas.iter().sum();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = rng.gen_range(0.0..total.max(1e-12));
        let mut face = 0;
        for (i, a) in areas.iter().enumerate() {
            if pick < *a {
                face = i;
                break;
            }
            pick -= a;
        }
        let u: f32 = rng.gen_range(0.0..1.0);
        let v: f32 = rng.gen_range(0.0..1.0);
        let p = match face {
            0 => Point3::new(min.x, min.y + e.y * u, min.z + e.z * v),
            1 => Point3::new(max.x, min.y + e.y * u, min.z + e.z * v),
            2 => Point3::new(min.x + e.x * u, min.y, min.z + e.z * v),
            3 => Point3::new(min.x + e.x * u, max.y, min.z + e.z * v),
            4 => Point3::new(min.x + e.x * u, min.y + e.y * v, min.z),
            _ => Point3::new(min.x + e.x * u, min.y + e.y * v, max.z),
        };
        out.push(p);
    }
    out
}

/// Samples `n` points on the lateral surface of a vertical (z-axis)
/// cylinder.
pub fn sample_cylinder<R: Rng>(
    rng: &mut R,
    base_center: Point3,
    radius: f32,
    height: f32,
    n: usize,
) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let z: f32 = rng.gen_range(0.0..height);
            base_center + Point3::new(radius * theta.cos(), radius * theta.sin(), z)
        })
        .collect()
}

/// Samples `n` points on a horizontal disk (e.g. a lamp shade rim or a
/// round table top).
pub fn sample_disk<R: Rng>(rng: &mut R, center: Point3, radius: f32, n: usize) -> Vec<Point3> {
    (0..n)
        .map(|_| {
            let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let r = radius * rng.gen_range(0.0f32..1.0).sqrt();
            center + Point3::new(r * theta.cos(), r * theta.sin(), 0.0)
        })
        .collect()
}

/// Adds isotropic Gaussian-ish jitter (sum of uniforms) of scale `sigma`
/// to every point, in place.
pub fn jitter<R: Rng>(rng: &mut R, points: &mut [Point3], sigma: f32) {
    let g = |rng: &mut R| -> f32 {
        // Irwin–Hall approximation of a Gaussian: cheap and monotone.
        let s: f32 = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum();
        s * 0.5 * sigma
    };
    for p in points {
        *p += Point3::new(g(rng), g(rng), g(rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn sphere_points_lie_on_surface() {
        let c = Point3::new(1.0, 2.0, 3.0);
        for p in sample_sphere(&mut rng(), c, 2.0, 200) {
            assert!((p.distance(c) - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn plane_points_stay_in_rectangle() {
        let pts = sample_plane(
            &mut rng(),
            Point3::ORIGIN,
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
            100,
        );
        for p in pts {
            assert!(p.x >= 0.0 && p.x <= 2.0);
            assert_eq!(p.y, 0.0);
            assert!(p.z >= 0.0 && p.z <= 1.0);
        }
    }

    #[test]
    fn box_points_lie_on_faces() {
        let min = Point3::ORIGIN;
        let max = Point3::new(1.0, 2.0, 3.0);
        for p in sample_box(&mut rng(), min, max, 300) {
            let on_face = p.x == min.x
                || p.x == max.x
                || p.y == min.y
                || p.y == max.y
                || p.z == min.z
                || p.z == max.z;
            assert!(on_face, "{p} not on any face");
        }
    }

    #[test]
    fn cylinder_radius_is_constant() {
        let base = Point3::new(5.0, 5.0, 0.0);
        for p in sample_cylinder(&mut rng(), base, 1.5, 4.0, 100) {
            let r = ((p.x - base.x).powi(2) + (p.y - base.y).powi(2)).sqrt();
            assert!((r - 1.5).abs() < 1e-4);
            assert!(p.z >= 0.0 && p.z <= 4.0);
        }
    }

    #[test]
    fn disk_within_radius() {
        for p in sample_disk(&mut rng(), Point3::ORIGIN, 2.0, 100) {
            assert!(p.norm() <= 2.0 + 1e-5);
            assert_eq!(p.z, 0.0);
        }
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let mut a = vec![Point3::ORIGIN; 50];
        let mut b = vec![Point3::ORIGIN; 50];
        jitter(&mut rng(), &mut a, 0.1);
        jitter(&mut rng(), &mut b, 0.1);
        assert_eq!(a, b, "same seed must give same jitter");
        assert!(a.iter().all(|p| p.norm() < 0.7));
        assert!(a.iter().any(|p| p.norm() > 0.0));
    }
}
