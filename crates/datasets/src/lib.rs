//! Synthetic point-cloud datasets standing in for the paper's benchmarks.
//!
//! The paper evaluates on ModelNet40, ShapeNet, S3DIS and KITTI (Table I).
//! Those datasets are not redistributable here, and nothing in the
//! evaluation depends on their *semantic* content — what matters is each
//! frame's **size**, **spatial non-uniformity** (which sets octree depth,
//! Fig. 11) and **density distribution** (which sets VEG shell statistics).
//! This crate generates seeded synthetic frames that match those
//! characteristics:
//!
//! * [`modelnet`] — CAD-like single objects assembled from parametric
//!   primitives, including the `MN.piano` / `MN.plant` pair whose differing
//!   uniformity the paper calls out;
//! * [`shapenet`] — smaller part-segmentation-scale objects (raw < 4096);
//! * [`s3dis`] — indoor rooms: walls, floor, ceiling and furniture;
//! * [`kitti`] — a rotating 64-beam LiDAR ray-cast into a street scene,
//!   producing variable-size frames with per-frame timestamps for the
//!   §VII-E real-time experiment;
//! * [`DriftingScene`] — rigid objects translating through a fixed world
//!   box: AABB-stable, temporally coherent frame streams for exercising
//!   the stream-scoped preprocessing warm path (and the seed of the
//!   ROADMAP item 4 scenario engine);
//! * [`BenchmarkSpec`]/[`TABLE_I`] — the paper's benchmark table;
//! * [`EvalFrame`] — the named frames appearing on figure x-axes.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drifting;
mod frames;
pub mod kitti;
pub mod modelnet;
pub mod s3dis;
pub mod shapenet;
mod shapes;
mod spec;

pub use drifting::{DriftingScene, DriftingSceneConfig};
pub use frames::EvalFrame;
pub use shapes::{jitter, sample_box, sample_cylinder, sample_disk, sample_plane, sample_sphere};
pub use spec::{BenchmarkSpec, DatasetKind, PcnTask, TABLE_I};
