use hgpcn_geometry::PointCloud;

use crate::kitti::{self, KittiConfig};
use crate::modelnet::{self, ModelNetObject};
use crate::s3dis::{self, RoomConfig};
use crate::shapenet::{self, ShapeNetCategory};

/// The named evaluation frames appearing on the paper's figure x-axes
/// (Figs. 9–13): a set of ModelNet40 objects of different sizes and
/// uniformity, a ShapeNet object, an S3DIS room, and `kitti.avg`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvalFrame {
    /// `MN.airplane` at ~6·10^4 points.
    MnAirplane,
    /// `MN.chair` at ~8·10^4 points.
    MnChair,
    /// `MN.piano` at ~1·10^5 points — strongly non-uniform.
    MnPiano,
    /// `MN.plant` at ~1·10^5 points — near-uniform, same size as piano.
    MnPlant,
    /// `MN.car` at ~1.4·10^5 points.
    MnCar,
    /// `SN.mug` at ~3·10^3 points (ShapeNet raw frames are tiny).
    SnMug,
    /// `s3dis.room`: one office room at ~1.5·10^5 points.
    S3disRoom,
    /// `kitti.avg`: an average-size LiDAR frame (~6·10^4 at the executed
    /// resolution; the paper's raw KITTI is ~10^6 — see `DESIGN.md`).
    KittiAvg,
}

impl EvalFrame {
    /// The frames in figure order (small → large).
    pub const ALL: [EvalFrame; 8] = [
        EvalFrame::SnMug,
        EvalFrame::MnAirplane,
        EvalFrame::MnChair,
        EvalFrame::MnPiano,
        EvalFrame::MnPlant,
        EvalFrame::MnCar,
        EvalFrame::S3disRoom,
        EvalFrame::KittiAvg,
    ];

    /// The pre-processing-figure frames (ShapeNet is skipped there because
    /// its raw frames are already below the sampling target, §VII-B).
    pub const PREPROCESSING: [EvalFrame; 7] = [
        EvalFrame::MnAirplane,
        EvalFrame::MnChair,
        EvalFrame::MnPiano,
        EvalFrame::MnPlant,
        EvalFrame::MnCar,
        EvalFrame::S3disRoom,
        EvalFrame::KittiAvg,
    ];

    /// The label printed on figure x-axes.
    pub fn label(self) -> &'static str {
        match self {
            EvalFrame::MnAirplane => "MN.airplane",
            EvalFrame::MnChair => "MN.chair",
            EvalFrame::MnPiano => "MN.piano",
            EvalFrame::MnPlant => "MN.plant",
            EvalFrame::MnCar => "MN.car",
            EvalFrame::SnMug => "SN.mug",
            EvalFrame::S3disRoom => "s3dis.room",
            EvalFrame::KittiAvg => "kitti.avg",
        }
    }

    /// Nominal raw frame size.
    pub fn raw_points(self) -> usize {
        match self {
            EvalFrame::MnAirplane => 60_000,
            EvalFrame::MnChair => 80_000,
            EvalFrame::MnPiano => 100_000,
            EvalFrame::MnPlant => 100_000,
            EvalFrame::MnCar => 140_000,
            EvalFrame::SnMug => 3_000,
            EvalFrame::S3disRoom => 150_000,
            EvalFrame::KittiAvg => 0, // determined by the scanner
        }
    }

    /// The down-sampling target for this frame (Table I input sizes).
    pub fn sample_target(self) -> usize {
        match self {
            EvalFrame::MnAirplane
            | EvalFrame::MnChair
            | EvalFrame::MnPiano
            | EvalFrame::MnPlant
            | EvalFrame::MnCar => 1024,
            EvalFrame::SnMug => 2048,
            EvalFrame::S3disRoom => 4096,
            EvalFrame::KittiAvg => 16384,
        }
    }

    /// Generates the frame deterministically from `seed`.
    pub fn generate(self, seed: u64) -> PointCloud {
        match self {
            EvalFrame::MnAirplane => {
                modelnet::generate(ModelNetObject::Airplane, self.raw_points(), seed)
            }
            EvalFrame::MnChair => {
                modelnet::generate(ModelNetObject::Chair, self.raw_points(), seed)
            }
            EvalFrame::MnPiano => {
                modelnet::generate(ModelNetObject::Piano, self.raw_points(), seed)
            }
            EvalFrame::MnPlant => {
                modelnet::generate(ModelNetObject::Plant, self.raw_points(), seed)
            }
            EvalFrame::MnCar => modelnet::generate(ModelNetObject::Car, self.raw_points(), seed),
            EvalFrame::SnMug => shapenet::generate(ShapeNetCategory::Mug, self.raw_points(), seed),
            EvalFrame::S3disRoom => {
                s3dis::generate_room(RoomConfig::default(), self.raw_points(), seed)
            }
            EvalFrame::KittiAvg => kitti::generate_frame(KittiConfig::standard(), seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            EvalFrame::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), EvalFrame::ALL.len());
    }

    #[test]
    fn generated_sizes_match_nominal() {
        {
            let f = EvalFrame::SnMug;
            // Small frame: cheap to generate in a unit test.
            let cloud = f.generate(1);
            assert_eq!(cloud.len(), f.raw_points());
        }
    }

    #[test]
    fn sample_targets_are_table_i_sizes() {
        assert_eq!(EvalFrame::MnPiano.sample_target(), 1024);
        assert_eq!(EvalFrame::SnMug.sample_target(), 2048);
        assert_eq!(EvalFrame::S3disRoom.sample_target(), 4096);
        assert_eq!(EvalFrame::KittiAvg.sample_target(), 16384);
    }

    #[test]
    fn preprocessing_set_skips_shapenet() {
        assert!(!EvalFrame::PREPROCESSING.contains(&EvalFrame::SnMug));
    }
}
