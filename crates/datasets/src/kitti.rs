//! KITTI-like outdoor LiDAR frames from a simulated rotating scanner.
//!
//! The generator ray-casts a spinning multi-beam LiDAR into a street scene
//! (ground plane, buildings, parked and moving cars). Frames therefore
//! inherit the properties the paper leans on: they are **large**, their
//! point count **varies between frames** (different objects, different
//! reflectivity dropout), and each frame carries a **generation timestamp**
//! so the §VII-E real-time experiment can compare processing rate against
//! the sensor rate (KITTI's Velodyne spins at 10 Hz, i.e. under the paper's
//! 16 FPS bound).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_geometry::{Aabb, Point3, PointCloud};

/// Scanner configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KittiConfig {
    /// Number of vertical beams (Velodyne HDL-64E: 64).
    pub beams: usize,
    /// Azimuth steps per revolution.
    pub azimuth_steps: usize,
    /// Maximum range in meters.
    pub max_range: f32,
    /// Probability that a return is dropped (low reflectivity).
    pub dropout: f64,
    /// Sensor revolutions per second (KITTI: 10 Hz).
    pub spin_hz: f64,
}

impl KittiConfig {
    /// A medium-resolution scanner (~60 k returns/frame): fast enough for
    /// tests and the executed experiments.
    pub fn standard() -> KittiConfig {
        KittiConfig {
            beams: 64,
            azimuth_steps: 1200,
            max_range: 80.0,
            dropout: 0.08,
            spin_hz: 10.0,
        }
    }

    /// A dense scanner approaching the paper's ~10^6-point frames. Use for
    /// the analytic large-frame sweeps; executing full pipelines on it is
    /// slow.
    pub fn dense() -> KittiConfig {
        KittiConfig {
            beams: 128,
            azimuth_steps: 8192,
            max_range: 80.0,
            dropout: 0.05,
            spin_hz: 10.0,
        }
    }
}

impl Default for KittiConfig {
    fn default() -> Self {
        KittiConfig::standard()
    }
}

/// One timestamped LiDAR frame.
#[derive(Clone, Debug)]
pub struct KittiFrame {
    /// Frame index in the stream.
    pub index: usize,
    /// Sensor timestamp in seconds since stream start.
    pub timestamp_s: f64,
    /// The captured point cloud (sensor frame: x forward, y left, z up).
    pub cloud: PointCloud,
}

/// A street scene: ground plane plus boxes for buildings and cars.
#[derive(Clone, Debug)]
struct Scene {
    boxes: Vec<Aabb>,
    car_velocities: Vec<Point3>, // zero for static boxes
}

impl Scene {
    fn generate(rng: &mut StdRng) -> Scene {
        let mut boxes = Vec::new();
        let mut vels = Vec::new();
        // Buildings lining both sides of the road.
        for side in [-1.0f32, 1.0] {
            let mut x = -60.0f32;
            while x < 60.0 {
                let w: f32 = rng.gen_range(8.0..18.0);
                let d: f32 = rng.gen_range(6.0..14.0);
                let h: f32 = rng.gen_range(4.0..15.0);
                let y0 = side * rng.gen_range(9.0..14.0);
                let (ymin, ymax) = if side < 0.0 {
                    (y0 - d, y0)
                } else {
                    (y0, y0 + d)
                };
                boxes.push(Aabb::new(
                    Point3::new(x, ymin, 0.0),
                    Point3::new(x + w, ymax, h),
                ));
                vels.push(Point3::ORIGIN);
                x += w + rng.gen_range(2.0..8.0);
            }
        }
        // Cars on the road: a varying number per scene.
        let cars = rng.gen_range(4..14);
        for _ in 0..cars {
            let cx: f32 = rng.gen_range(-50.0..50.0);
            let lane: f32 = rng.gen_range(-6.0..6.0);
            let l: f32 = rng.gen_range(3.8..5.2);
            let w: f32 = rng.gen_range(1.6..2.0);
            let h: f32 = rng.gen_range(1.3..1.8);
            boxes.push(Aabb::new(
                Point3::new(cx, lane - w / 2.0, 0.0),
                Point3::new(cx + l, lane + w / 2.0, h),
            ));
            let speed: f32 = if rng.gen_bool(0.5) {
                rng.gen_range(5.0..15.0)
            } else {
                0.0
            };
            vels.push(Point3::new(
                speed * if lane > 0.0 { -1.0 } else { 1.0 },
                0.0,
                0.0,
            ));
        }
        Scene {
            boxes,
            car_velocities: vels,
        }
    }

    fn advanced(&self, dt: f32) -> Scene {
        let boxes = self
            .boxes
            .iter()
            .zip(&self.car_velocities)
            .map(|(b, v)| Aabb::new(b.min() + *v * dt, b.max() + *v * dt))
            .collect();
        Scene {
            boxes,
            car_velocities: self.car_velocities.clone(),
        }
    }
}

/// Slab-method ray/AABB intersection; returns the entry distance if the ray
/// hits within `(1e-3, t_max)`.
fn ray_box(origin: Point3, dir: Point3, b: &Aabb, t_max: f32) -> Option<f32> {
    let mut t0 = 1e-3f32;
    let mut t1 = t_max;
    for axis in 0..3 {
        let d = dir[axis];
        let (lo, hi) = (b.min()[axis], b.max()[axis]);
        if d.abs() < 1e-9 {
            if origin[axis] < lo || origin[axis] > hi {
                return None;
            }
            continue;
        }
        let inv = 1.0 / d;
        let (mut ta, mut tb) = ((lo - origin[axis]) * inv, (hi - origin[axis]) * inv);
        if ta > tb {
            std::mem::swap(&mut ta, &mut tb);
        }
        t0 = t0.max(ta);
        t1 = t1.min(tb);
        if t0 > t1 {
            return None;
        }
    }
    Some(t0)
}

fn cast_frame(scene: &Scene, config: &KittiConfig, rng: &mut StdRng) -> PointCloud {
    let sensor = Point3::new(0.0, 0.0, 1.73); // HDL-64E mounting height
    let mut cloud = PointCloud::new();
    // Velodyne HDL-64E vertical field of view: +2° .. -24.8°.
    let (fov_top, fov_bottom) = (2.0f32.to_radians(), (-24.8f32).to_radians());
    for a in 0..config.azimuth_steps {
        let azimuth = a as f32 / config.azimuth_steps as f32 * std::f32::consts::TAU;
        let (sin_a, cos_a) = azimuth.sin_cos();
        for b in 0..config.beams {
            let pitch =
                fov_top + (fov_bottom - fov_top) * (b as f32 / (config.beams - 1).max(1) as f32);
            let (sin_p, cos_p) = pitch.sin_cos();
            let dir = Point3::new(cos_p * cos_a, cos_p * sin_a, sin_p);
            // Closest hit among ground plane and scene boxes.
            let mut t_hit = f32::INFINITY;
            if dir.z < -1e-6 {
                let t_ground = (0.0 - sensor.z) / dir.z;
                if t_ground > 1e-3 && t_ground < config.max_range {
                    t_hit = t_ground;
                }
            }
            for bx in &scene.boxes {
                if let Some(t) = ray_box(sensor, dir, bx, t_hit.min(config.max_range)) {
                    t_hit = t_hit.min(t);
                }
            }
            if t_hit.is_finite() && t_hit <= config.max_range && !rng.gen_bool(config.dropout) {
                let hit = sensor + dir * t_hit;
                // Small range noise (±2 cm).
                let noise: f32 = rng.gen_range(-0.02..0.02);
                cloud.push(hit + dir * noise);
            }
        }
    }
    cloud
}

/// Generates one frame (convenience wrapper over a one-frame stream).
pub fn generate_frame(config: KittiConfig, seed: u64) -> PointCloud {
    let mut stream = KittiStream::new(config, seed);
    stream.next().expect("stream is infinite").cloud
}

/// An infinite stream of timestamped frames from a drive through a scene.
///
/// # Examples
///
/// ```
/// use hgpcn_datasets::kitti::{KittiConfig, KittiStream};
///
/// let mut cfg = KittiConfig::standard();
/// cfg.beams = 8;
/// cfg.azimuth_steps = 60;
/// let frames: Vec<_> = KittiStream::new(cfg, 1).take(3).collect();
/// assert!(frames[1].timestamp_s > frames[0].timestamp_s);
/// assert_ne!(frames[0].cloud.len(), 0);
/// ```
#[derive(Debug)]
pub struct KittiStream {
    config: KittiConfig,
    rng: StdRng,
    scene: Scene,
    index: usize,
    time_s: f64,
}

impl KittiStream {
    /// Creates a stream with a freshly generated scene.
    pub fn new(config: KittiConfig, seed: u64) -> KittiStream {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1);
        let scene = Scene::generate(&mut rng);
        KittiStream {
            config,
            rng,
            scene,
            index: 0,
            time_s: 0.0,
        }
    }

    /// The nominal sensor frame interval in seconds.
    pub fn frame_interval_s(&self) -> f64 {
        1.0 / self.config.spin_hz
    }
}

impl Iterator for KittiStream {
    type Item = KittiFrame;

    fn next(&mut self) -> Option<KittiFrame> {
        let cloud = cast_frame(&self.scene, &self.config, &mut self.rng);
        let frame = KittiFrame {
            index: self.index,
            timestamp_s: self.time_s,
            cloud,
        };
        // Advance the world and the clock (±3% spin jitter).
        let dt = self.frame_interval_s() * (1.0 + self.rng.gen_range(-0.03..0.03));
        self.scene = self.scene.advanced(dt as f32);
        self.time_s += dt;
        self.index += 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KittiConfig {
        KittiConfig {
            beams: 16,
            azimuth_steps: 180,
            max_range: 80.0,
            dropout: 0.05,
            spin_hz: 10.0,
        }
    }

    #[test]
    fn frames_are_nonempty_and_finite() {
        let f = generate_frame(tiny(), 3);
        assert!(f.len() > 500, "expected many returns, got {}", f.len());
        assert!(f.validate_finite().is_ok());
    }

    #[test]
    fn frame_sizes_vary_across_stream() {
        let sizes: Vec<usize> = KittiStream::new(tiny(), 5)
            .take(5)
            .map(|f| f.cloud.len())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "frame sizes should vary: {sizes:?}");
    }

    #[test]
    fn timestamps_advance_at_about_sensor_rate() {
        let frames: Vec<_> = KittiStream::new(tiny(), 9).take(10).collect();
        for w in frames.windows(2) {
            let dt = w[1].timestamp_s - w[0].timestamp_s;
            assert!(dt > 0.09 && dt < 0.11, "dt {dt} outside 10 Hz ± 3%");
        }
    }

    #[test]
    fn returns_are_within_range() {
        let sensor = Point3::new(0.0, 0.0, 1.73);
        let f = generate_frame(tiny(), 11);
        for p in f.iter() {
            assert!(p.distance(sensor) <= 80.5);
            assert!(p.z >= -0.2, "no returns below ground, got {p}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_frame(tiny(), 21);
        let b = generate_frame(tiny(), 21);
        assert_eq!(a, b);
    }

    #[test]
    fn ray_box_hits_and_misses() {
        let b = Aabb::new(Point3::new(5.0, -1.0, 0.0), Point3::new(7.0, 1.0, 2.0));
        let hit = ray_box(
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(1.0, 0.0, 0.0),
            &b,
            100.0,
        );
        assert!((hit.unwrap() - 5.0).abs() < 1e-5);
        let miss = ray_box(
            Point3::new(0.0, 5.0, 1.0),
            Point3::new(1.0, 0.0, 0.0),
            &b,
            100.0,
        );
        assert!(miss.is_none());
    }
}
