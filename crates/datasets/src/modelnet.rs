//! ModelNet40-like single objects for classification workloads.
//!
//! Each object is assembled from parametric primitives at CAD-model scale.
//! The pair the paper highlights in Fig. 11 is reproduced: `Piano` packs
//! most of its points into a dense body with a few thin legs (strongly
//! non-uniform → deeper octree), while `Plant` spreads points much more
//! evenly (shallower octree at the same point count).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_geometry::{Point3, PointCloud};

use crate::shapes::{
    jitter, sample_box, sample_cylinder, sample_disk, sample_plane, sample_sphere,
};

/// The synthetic ModelNet40-like object classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelNetObject {
    /// Fuselage cylinder + wing planes + tail.
    Airplane,
    /// Dense body box + thin legs: the paper's non-uniform example.
    Piano,
    /// Foliage spheres around a trunk: the paper's uniform example.
    Plant,
    /// Seat + back + four legs.
    Chair,
    /// Pole + shade disk + base.
    Lamp,
    /// Body box + four wheel cylinders.
    Car,
    /// Table top + legs.
    Table,
    /// A guitar-ish body of two fused spheres + neck.
    Guitar,
}

impl ModelNetObject {
    /// All object classes.
    pub const ALL: [ModelNetObject; 8] = [
        ModelNetObject::Airplane,
        ModelNetObject::Piano,
        ModelNetObject::Plant,
        ModelNetObject::Chair,
        ModelNetObject::Lamp,
        ModelNetObject::Car,
        ModelNetObject::Table,
        ModelNetObject::Guitar,
    ];

    /// The figure label used in the paper's plots (e.g. `"MN.piano"`).
    pub fn label(self) -> &'static str {
        match self {
            ModelNetObject::Airplane => "MN.airplane",
            ModelNetObject::Piano => "MN.piano",
            ModelNetObject::Plant => "MN.plant",
            ModelNetObject::Chair => "MN.chair",
            ModelNetObject::Lamp => "MN.lamp",
            ModelNetObject::Car => "MN.car",
            ModelNetObject::Table => "MN.table",
            ModelNetObject::Guitar => "MN.guitar",
        }
    }
}

/// Generates a raw ModelNet40-like frame of `n` points for `object`.
///
/// Deterministic for a given `(object, n, seed)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate(object: ModelNetObject, n: usize, seed: u64) -> PointCloud {
    assert!(n > 0, "frame must contain at least one point");
    let mut rng = StdRng::seed_from_u64(seed ^ (object as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut pts: Vec<Point3> = Vec::with_capacity(n);
    match object {
        ModelNetObject::Airplane => {
            let fuselage = (n * 4) / 10;
            let wings = (n * 4) / 10;
            pts.extend(sample_cylinder(
                &mut rng,
                Point3::new(0.0, 0.0, -2.5),
                0.4,
                5.0,
                fuselage,
            ));
            pts.extend(sample_plane(
                &mut rng,
                Point3::new(-3.0, -0.1, -0.5),
                Point3::new(6.0, 0.0, 0.0),
                Point3::new(0.0, 0.2, 1.0),
                wings,
            ));
            pts.extend(sample_plane(
                &mut rng,
                Point3::new(-1.0, -0.05, 1.8),
                Point3::new(2.0, 0.0, 0.0),
                Point3::new(0.0, 0.1, 0.8),
                n - fuselage - wings,
            ));
        }
        ModelNetObject::Piano => {
            // 92% of points in the dense body, 8% on four thin legs: a
            // strongly non-uniform distribution that forces deep octree
            // subdivision inside the body.
            let body = (n * 92) / 100;
            pts.extend(sample_box(
                &mut rng,
                Point3::new(-1.5, -0.6, 0.8),
                Point3::new(1.5, 0.6, 1.6),
                body,
            ));
            let legs = n - body;
            for (i, (lx, ly)) in [(-1.3, -0.5), (1.3, -0.5), (-1.3, 0.5), (1.3, 0.5)]
                .iter()
                .enumerate()
            {
                let count = legs / 4 + usize::from(i < legs % 4);
                pts.extend(sample_cylinder(
                    &mut rng,
                    Point3::new(*lx, *ly, 0.0),
                    0.05,
                    0.8,
                    count,
                ));
            }
        }
        ModelNetObject::Plant => {
            // Foliage spread over many medium spheres: near-uniform.
            let trunk = n / 10;
            pts.extend(sample_cylinder(
                &mut rng,
                Point3::new(0.0, 0.0, 0.0),
                0.15,
                1.2,
                trunk,
            ));
            let mut remaining = n - trunk;
            let clusters = 12;
            for i in 0..clusters {
                let count = remaining / (clusters - i);
                remaining -= count;
                let theta = i as f32 * std::f32::consts::TAU / clusters as f32;
                let r = 0.8 + 0.3 * ((i * 7 % 5) as f32 / 5.0);
                let center = Point3::new(
                    r * theta.cos(),
                    r * theta.sin(),
                    1.2 + 0.6 * ((i * 3 % 4) as f32 / 4.0),
                );
                pts.extend(sample_sphere(&mut rng, center, 0.45, count));
            }
        }
        ModelNetObject::Chair => {
            let seat = n * 3 / 10;
            let back = n * 3 / 10;
            pts.extend(sample_box(
                &mut rng,
                Point3::new(-0.5, -0.5, 0.9),
                Point3::new(0.5, 0.5, 1.0),
                seat,
            ));
            pts.extend(sample_plane(
                &mut rng,
                Point3::new(-0.5, 0.45, 1.0),
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 0.0, 1.0),
                back,
            ));
            let legs = n - seat - back;
            for (i, (lx, ly)) in [(-0.45, -0.45), (0.45, -0.45), (-0.45, 0.45), (0.45, 0.45)]
                .iter()
                .enumerate()
            {
                let count = legs / 4 + usize::from(i < legs % 4);
                pts.extend(sample_cylinder(
                    &mut rng,
                    Point3::new(*lx, *ly, 0.0),
                    0.04,
                    0.9,
                    count,
                ));
            }
        }
        ModelNetObject::Lamp => {
            let pole = n * 2 / 10;
            let shade = n * 6 / 10;
            pts.extend(sample_cylinder(&mut rng, Point3::ORIGIN, 0.05, 1.6, pole));
            pts.extend(sample_cylinder(
                &mut rng,
                Point3::new(0.0, 0.0, 1.6),
                0.5,
                0.4,
                shade,
            ));
            pts.extend(sample_disk(&mut rng, Point3::ORIGIN, 0.4, n - pole - shade));
        }
        ModelNetObject::Car => {
            let body = n * 7 / 10;
            pts.extend(sample_box(
                &mut rng,
                Point3::new(-2.0, -0.9, 0.3),
                Point3::new(2.0, 0.9, 1.5),
                body,
            ));
            let wheels = n - body;
            for (i, (wx, wy)) in [(-1.4, -0.9), (1.4, -0.9), (-1.4, 0.9), (1.4, 0.9)]
                .iter()
                .enumerate()
            {
                let count = wheels / 4 + usize::from(i < wheels % 4);
                let mut w = sample_disk(&mut rng, Point3::ORIGIN, 0.35, count);
                for p in &mut w {
                    *p = Point3::new(wx + p.x, *wy, 0.35 + p.y);
                }
                pts.extend(w);
            }
        }
        ModelNetObject::Table => {
            let top = n * 6 / 10;
            pts.extend(sample_box(
                &mut rng,
                Point3::new(-1.0, -0.6, 0.95),
                Point3::new(1.0, 0.6, 1.05),
                top,
            ));
            let legs = n - top;
            for (i, (lx, ly)) in [(-0.9, -0.5), (0.9, -0.5), (-0.9, 0.5), (0.9, 0.5)]
                .iter()
                .enumerate()
            {
                let count = legs / 4 + usize::from(i < legs % 4);
                pts.extend(sample_cylinder(
                    &mut rng,
                    Point3::new(*lx, *ly, 0.0),
                    0.05,
                    0.95,
                    count,
                ));
            }
        }
        ModelNetObject::Guitar => {
            let lower = n * 4 / 10;
            let upper = n * 3 / 10;
            pts.extend(sample_sphere(
                &mut rng,
                Point3::new(0.0, 0.0, 0.0),
                0.55,
                lower,
            ));
            pts.extend(sample_sphere(
                &mut rng,
                Point3::new(0.0, 0.0, 0.7),
                0.4,
                upper,
            ));
            pts.extend(sample_cylinder(
                &mut rng,
                Point3::new(0.0, 0.0, 1.0),
                0.06,
                1.0,
                n - lower - upper,
            ));
        }
    }
    jitter(&mut rng, &mut pts, 0.004);
    // Shuffle so raw frames arrive in sensor order, not construction order.
    for i in (1..pts.len()).rev() {
        let j = rng.gen_range(0..=i);
        pts.swap(i, j);
    }
    PointCloud::from_points(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_for_all_objects() {
        for obj in ModelNetObject::ALL {
            let cloud = generate(obj, 1000, 1);
            assert_eq!(cloud.len(), 1000, "{}", obj.label());
            assert!(cloud.validate_finite().is_ok());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(ModelNetObject::Chair, 500, 42);
        let b = generate(ModelNetObject::Chair, 500, 42);
        let c = generate(ModelNetObject::Chair, 500, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn objects_differ_per_class() {
        let a = generate(ModelNetObject::Piano, 500, 1);
        let b = generate(ModelNetObject::Plant, 500, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn piano_is_less_uniform_than_plant() {
        // Proxy for octree depth: a non-uniform cloud occupies fewer cells
        // of a fixed grid (its points are packed into a denser subset of
        // space), which forces deeper subdivision under a leaf-capacity
        // rule.
        fn occupied_cell_fraction(cloud: &PointCloud) -> f64 {
            let bounds = cloud.bounds().unwrap().cubified();
            let mut cells = std::collections::HashSet::new();
            let edge = bounds.extent().x.max(1e-9);
            for p in cloud.iter() {
                let rel = (p - bounds.min()) / edge;
                let cell = (
                    (rel.x * 32.0) as i32,
                    (rel.y * 32.0) as i32,
                    (rel.z * 32.0) as i32,
                );
                cells.insert(cell);
            }
            cells.len() as f64 / cloud.len() as f64
        }
        let piano = generate(ModelNetObject::Piano, 20_000, 5);
        let plant = generate(ModelNetObject::Plant, 20_000, 5);
        assert!(
            occupied_cell_fraction(&piano) < occupied_cell_fraction(&plant),
            "piano must concentrate points more than plant"
        );
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            ModelNetObject::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), ModelNetObject::ALL.len());
    }
}
