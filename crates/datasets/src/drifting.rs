//! A drifting scene: rigid objects translating through a fixed world box.
//!
//! This is the frame generator the stream-scoped preprocessing contexts
//! are measured against. Consecutive frames of one LiDAR stream overlap
//! heavily — objects move, the world does not — so the scene keeps its
//! root AABB **bit-stable** across frames (a static shell of boundary
//! returns pins it) while every object's points translate between
//! frames. That is exactly the shape the temporal-coherence warm path
//! exploits: same root grid, near-sorted Morton order, small dirty set.
//!
//! Unlike [`kitti::FrameStream`](crate::kitti), frames here are a pure
//! function of `(scene, frame index)`: any frame can be generated in any
//! order, repeatedly, bit-identically — which is what determinism tests
//! and open-loop load harnesses need. This generator is the first step
//! toward the scenario engine (ROADMAP item 4): dynamic scenes as a
//! first-class, reproducible test axis.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_geometry::{Aabb, Point3, PointCloud};

use crate::shapes;

/// Shape of a [`DriftingScene`]: world size, population, and motion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftingSceneConfig {
    /// Side length of the cubic world `[0, extent)^3`. The scene's AABB
    /// is exactly this cube, every frame.
    pub extent: f32,
    /// Number of moving objects.
    pub objects: usize,
    /// Surface points sampled per object (fixed in the object's local
    /// frame, so an object is rigid across frames).
    pub points_per_object: usize,
    /// Static world-shell points (floor returns plus the box corners)
    /// present identically in every frame. At least 8 (the corners).
    pub shell_points: usize,
    /// Virtual seconds between consecutive frames (object displacement
    /// per frame is `velocity * frame_dt`).
    pub frame_dt: f32,
}

impl Default for DriftingSceneConfig {
    fn default() -> DriftingSceneConfig {
        DriftingSceneConfig {
            extent: 24.0,
            objects: 6,
            points_per_object: 600,
            shell_points: 512,
            frame_dt: 1.0 / 10.0,
        }
    }
}

/// One rigid object: a fixed local point set, a home position, and a
/// velocity. Its world position at frame `k` bounces elastically inside
/// the margin box, so the object never touches the world boundary (the
/// shell alone decides the AABB).
#[derive(Clone, Debug)]
struct DriftingObject {
    local: Vec<Point3>,
    /// Center clearance: local points satisfy `|p| <= reach`.
    reach: f32,
    home: Point3,
    velocity: Point3,
}

/// A deterministic dynamic scene: rigid objects translating through a
/// fixed world box whose root AABB stays bit-stable across frames (a
/// static shell of boundary returns pins it) — the temporally coherent
/// shape the stream-scoped preprocessing contexts are measured against.
/// Every frame is a pure function of `(scene, frame index)`.
///
/// ```
/// use hgpcn_datasets::{DriftingScene, DriftingSceneConfig};
///
/// let scene = DriftingScene::new(DriftingSceneConfig::default(), 7);
/// let (a, b) = (scene.frame(0), scene.frame(1));
/// assert_eq!(a.len(), b.len());
/// assert_eq!(a.bounds(), b.bounds()); // AABB stable ...
/// assert_ne!(a.points(), b.points()); // ... while objects move
/// ```
#[derive(Clone, Debug)]
pub struct DriftingScene {
    config: DriftingSceneConfig,
    shell: Vec<Point3>,
    objects: Vec<DriftingObject>,
}

impl DriftingScene {
    /// Generates a scene: a static shell plus `config.objects` rigid
    /// objects with seeded shapes, homes, and velocities.
    pub fn new(config: DriftingSceneConfig, seed: u64) -> DriftingScene {
        let e = config.extent.max(1.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD81F_7ED6_5CE1_05B3);

        // The static shell: the 8 world corners (pinning the AABB
        // exactly) plus floor returns strictly inside the box.
        let mut shell = Vec::with_capacity(config.shell_points.max(8));
        for corner in 0..8u8 {
            shell.push(Point3::new(
                if corner & 1 == 0 { 0.0 } else { e },
                if corner & 2 == 0 { 0.0 } else { e },
                if corner & 4 == 0 { 0.0 } else { e },
            ));
        }
        if config.shell_points > 8 {
            let floor = shapes::sample_plane(
                &mut rng,
                Point3::new(e * 0.01, e * 0.01, 0.0),
                Point3::new(e * 0.98, 0.0, 0.0),
                Point3::new(0.0, e * 0.98, 0.0),
                config.shell_points - 8,
            );
            shell.extend(floor);
        }

        let objects = (0..config.objects)
            .map(|_| {
                let radius: f32 = rng.gen_range(e * 0.03..e * 0.08);
                let n = config.points_per_object.max(1);
                // Alternate solid primitives so octree occupancy varies.
                let local = if rng.gen_bool(0.5) {
                    shapes::sample_sphere(&mut rng, Point3::ORIGIN, radius, n)
                } else {
                    shapes::sample_box(
                        &mut rng,
                        Point3::splat(-radius * 0.8),
                        Point3::splat(radius * 0.8),
                        n,
                    )
                };
                let mut local = local;
                shapes::jitter(&mut rng, &mut local, radius * 0.01);
                // Post-jitter clearance, measured not assumed.
                let reach = local.iter().map(|p| p.norm()).fold(radius, f32::max) + e * 1e-3;
                let room = e - 2.0 * reach;
                let home = Point3::new(
                    reach + rng.gen_range(0.0..room.max(1e-3)),
                    reach + rng.gen_range(0.0..room.max(1e-3)),
                    reach + rng.gen_range(0.0..room.max(1e-3)),
                );
                let velocity = Point3::new(
                    rng.gen_range(-e * 0.2..e * 0.2),
                    rng.gen_range(-e * 0.2..e * 0.2),
                    rng.gen_range(-e * 0.05..e * 0.05),
                );
                DriftingObject {
                    local,
                    reach,
                    home,
                    velocity,
                }
            })
            .collect();

        DriftingScene {
            config: DriftingSceneConfig {
                extent: e,
                ..config
            },
            shell,
            objects,
        }
    }

    /// The scene's world box — the AABB of **every** frame.
    pub fn bounds(&self) -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::splat(self.config.extent))
    }

    /// Points per frame (shell plus all object surfaces).
    pub fn frame_points(&self) -> usize {
        self.shell.len() + self.objects.iter().map(|o| o.local.len()).sum::<usize>()
    }

    /// Generates frame `index`: the static shell followed by every
    /// object translated to its bounce position at `index * frame_dt`.
    /// A pure function of `(self, index)` — bit-identical on repeat,
    /// frames generable in any order.
    pub fn frame(&self, index: usize) -> PointCloud {
        let t = index as f64 * self.config.frame_dt as f64;
        let mut points = Vec::with_capacity(self.frame_points());
        points.extend_from_slice(&self.shell);
        for obj in &self.objects {
            let center = Point3::new(
                bounce(
                    obj.home.x as f64 + obj.velocity.x as f64 * t,
                    obj.reach as f64,
                    (self.config.extent - obj.reach) as f64,
                ),
                bounce(
                    obj.home.y as f64 + obj.velocity.y as f64 * t,
                    obj.reach as f64,
                    (self.config.extent - obj.reach) as f64,
                ),
                bounce(
                    obj.home.z as f64 + obj.velocity.z as f64 * t,
                    obj.reach as f64,
                    (self.config.extent - obj.reach) as f64,
                ),
            );
            points.extend(obj.local.iter().map(|&p| center + p));
        }
        PointCloud::from_points(points)
    }
}

/// Elastic reflection of `x` into `[lo, hi]` (triangle wave). Computed
/// in f64 and cast last, so deep frame indices keep full precision (the
/// same ulp discipline as the low-discrepancy cloud generators).
fn bounce(x: f64, lo: f64, hi: f64) -> f32 {
    let span = hi - lo;
    if span <= 0.0 {
        return lo as f32;
    }
    let t = (x - lo).rem_euclid(2.0 * span);
    (lo + if t < span { t } else { 2.0 * span - t }) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> DriftingScene {
        DriftingScene::new(DriftingSceneConfig::default(), 11)
    }

    #[test]
    fn frames_are_deterministic_and_order_free() {
        let s = scene();
        let again = DriftingScene::new(DriftingSceneConfig::default(), 11);
        assert_eq!(s.frame(5).points(), again.frame(5).points());
        let a = s.frame(3);
        let _ = s.frame(0);
        assert_eq!(a.points(), s.frame(3).points(), "order-free generation");
    }

    #[test]
    fn aabb_is_bit_stable_while_objects_move() {
        let s = scene();
        let first = s.frame(0);
        let world = s.bounds();
        assert_eq!(first.bounds().unwrap(), world);
        for k in 1..30 {
            let f = s.frame(k);
            assert_eq!(f.bounds().unwrap(), world, "frame {k} AABB drifted");
            assert_eq!(f.len(), first.len());
            assert_ne!(
                f.points(),
                first.points(),
                "frame {k}: objects must have moved"
            );
        }
    }

    #[test]
    fn shell_is_static_and_objects_stay_inside() {
        let s = scene();
        let shell_len = s.shell.len();
        let a = s.frame(2);
        let b = s.frame(9);
        assert_eq!(&a.points()[..shell_len], &b.points()[..shell_len]);
        let e = s.config.extent;
        for p in &a.points()[shell_len..] {
            assert!(p.x > 0.0 && p.x < e, "{p}");
            assert!(p.y > 0.0 && p.y < e, "{p}");
            assert!(p.z > 0.0 && p.z < e, "{p}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DriftingScene::new(DriftingSceneConfig::default(), 1);
        let b = DriftingScene::new(DriftingSceneConfig::default(), 2);
        assert_ne!(a.frame(0).points(), b.frame(0).points());
    }
}
