use std::fmt;

/// Which of the paper's four benchmark datasets a spec refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// ModelNet40 — single CAD objects, classification.
    ModelNet40,
    /// ShapeNet — single objects, part segmentation.
    ShapeNet,
    /// S3DIS — indoor scans, semantic segmentation.
    S3dis,
    /// KITTI — outdoor LiDAR, semantic segmentation.
    Kitti,
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DatasetKind::ModelNet40 => "ModelNet40",
            DatasetKind::ShapeNet => "ShapeNet",
            DatasetKind::S3dis => "S3DIS",
            DatasetKind::Kitti => "KITTI",
        };
        f.write_str(s)
    }
}

/// The PointNet++ variant run on a benchmark (Table I's "PCN Model").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PcnTask {
    /// PointNet++(c): object classification.
    Classification,
    /// PointNet++(ps): object part segmentation.
    PartSegmentation,
    /// PointNet++(s): scene semantic segmentation.
    SemanticSegmentation,
}

impl fmt::Display for PcnTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PcnTask::Classification => "Pointnet++(c)",
            PcnTask::PartSegmentation => "Pointnet++(ps)",
            PcnTask::SemanticSegmentation => "Pointnet++(s)",
        };
        f.write_str(s)
    }
}

/// One row of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Application name as printed in Table I.
    pub application: &'static str,
    /// Source dataset.
    pub dataset: DatasetKind,
    /// Input size fed to the PCN (points after down-sampling).
    pub input_size: usize,
    /// Typical raw frame size before down-sampling (order of magnitude from
    /// §III: ModelNet40/S3DIS ~1e5, KITTI ~1e6, ShapeNet < 4096).
    pub raw_points: usize,
    /// PCN variant.
    pub task: PcnTask,
}

/// The paper's Table I: the four benchmark configurations.
pub const TABLE_I: [BenchmarkSpec; 4] = [
    BenchmarkSpec {
        application: "Object Classification",
        dataset: DatasetKind::ModelNet40,
        input_size: 1024,
        raw_points: 100_000,
        task: PcnTask::Classification,
    },
    BenchmarkSpec {
        application: "Part Segmentation",
        dataset: DatasetKind::ShapeNet,
        input_size: 2048,
        raw_points: 3_000,
        task: PcnTask::PartSegmentation,
    },
    BenchmarkSpec {
        application: "Indoor Segmentation",
        dataset: DatasetKind::S3dis,
        input_size: 4096,
        raw_points: 150_000,
        task: PcnTask::SemanticSegmentation,
    },
    BenchmarkSpec {
        application: "Outdoor Segmentation",
        dataset: DatasetKind::Kitti,
        input_size: 16384,
        raw_points: 1_000_000,
        task: PcnTask::SemanticSegmentation,
    },
];

impl BenchmarkSpec {
    /// Looks up the Table I row for a dataset.
    pub fn for_dataset(dataset: DatasetKind) -> BenchmarkSpec {
        *TABLE_I
            .iter()
            .find(|s| s.dataset == dataset)
            .expect("all datasets are in TABLE_I")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_sizes() {
        assert_eq!(
            BenchmarkSpec::for_dataset(DatasetKind::ModelNet40).input_size,
            1024
        );
        assert_eq!(
            BenchmarkSpec::for_dataset(DatasetKind::ShapeNet).input_size,
            2048
        );
        assert_eq!(
            BenchmarkSpec::for_dataset(DatasetKind::S3dis).input_size,
            4096
        );
        assert_eq!(
            BenchmarkSpec::for_dataset(DatasetKind::Kitti).input_size,
            16384
        );
    }

    #[test]
    fn shapenet_raw_is_below_4096() {
        // §VII-B: "for Shapenet, the raw data size is smaller than 4096".
        assert!(BenchmarkSpec::for_dataset(DatasetKind::ShapeNet).raw_points < 4096);
    }

    #[test]
    fn display_labels() {
        assert_eq!(DatasetKind::Kitti.to_string(), "KITTI");
        assert_eq!(PcnTask::Classification.to_string(), "Pointnet++(c)");
    }
}
