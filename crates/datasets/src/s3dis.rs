//! S3DIS-like indoor rooms for semantic segmentation workloads.
//!
//! A room is floor + ceiling + four walls + randomly placed furniture
//! (tables, chairs, boxes), at realistic office dimensions. Density is
//! surface-area weighted, so walls dominate the raw frame the way scanned
//! rooms do. Each point carries a 1-D semantic-class feature
//! (0 = structure, 1 = furniture).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_geometry::{Point3, PointCloud};

use crate::shapes::{jitter, sample_box, sample_plane};

/// Parameters of a synthetic room.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoomConfig {
    /// Room width (x) in meters.
    pub width: f32,
    /// Room depth (y) in meters.
    pub depth: f32,
    /// Room height (z) in meters.
    pub height: f32,
    /// Number of furniture pieces.
    pub furniture: usize,
}

impl Default for RoomConfig {
    fn default() -> Self {
        RoomConfig {
            width: 8.0,
            depth: 6.0,
            height: 3.0,
            furniture: 6,
        }
    }
}

/// Generates an S3DIS-like room scan of `n` points.
///
/// # Panics
///
/// Panics if `n == 0` or any room dimension is non-positive.
pub fn generate_room(config: RoomConfig, n: usize, seed: u64) -> PointCloud {
    assert!(n > 0, "frame must contain at least one point");
    assert!(
        config.width > 0.0 && config.depth > 0.0 && config.height > 0.0,
        "room dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1);
    let (w, d, h) = (config.width, config.depth, config.height);

    // Area-weighted split between structure surfaces and furniture.
    let wall_area = 2.0 * (w * h + d * h) + 2.0 * (w * d);
    let furniture_area = config.furniture as f32 * 2.5;
    let structure_n = ((n as f32) * wall_area / (wall_area + furniture_area)).round() as usize;
    let structure_n = structure_n.min(n);

    let mut cloud = PointCloud::with_feature_dim(1);

    // Structure: floor, ceiling, 4 walls, proportional to area.
    let surfaces: [(Point3, Point3, Point3, f32); 6] = [
        (
            Point3::ORIGIN,
            Point3::new(w, 0.0, 0.0),
            Point3::new(0.0, d, 0.0),
            w * d,
        ), // floor
        (
            Point3::new(0.0, 0.0, h),
            Point3::new(w, 0.0, 0.0),
            Point3::new(0.0, d, 0.0),
            w * d,
        ), // ceiling
        (
            Point3::ORIGIN,
            Point3::new(w, 0.0, 0.0),
            Point3::new(0.0, 0.0, h),
            w * h,
        ), // y=0 wall
        (
            Point3::new(0.0, d, 0.0),
            Point3::new(w, 0.0, 0.0),
            Point3::new(0.0, 0.0, h),
            w * h,
        ),
        (
            Point3::ORIGIN,
            Point3::new(0.0, d, 0.0),
            Point3::new(0.0, 0.0, h),
            d * h,
        ), // x=0 wall
        (
            Point3::new(w, 0.0, 0.0),
            Point3::new(0.0, d, 0.0),
            Point3::new(0.0, 0.0, h),
            d * h,
        ),
    ];
    let total_area: f32 = surfaces.iter().map(|s| s.3).sum();
    let mut placed = 0usize;
    for (i, (origin, su, sv, area)) in surfaces.iter().enumerate() {
        let count = if i == surfaces.len() - 1 {
            structure_n - placed
        } else {
            ((structure_n as f32) * area / total_area).round() as usize
        };
        let count = count.min(structure_n - placed);
        placed += count;
        let mut pts = sample_plane(&mut rng, *origin, *su, *sv, count);
        jitter(&mut rng, &mut pts, 0.01);
        for p in pts {
            cloud.push_with_feature(p, &[0.0]);
        }
    }

    // Furniture: boxes of table/chair scale scattered inside the room.
    let mut remaining = n - cloud.len();
    let pieces = config.furniture.max(1);
    for i in 0..pieces {
        let count = remaining / (pieces - i);
        remaining -= count;
        let fw: f32 = rng.gen_range(0.5..1.6);
        let fd: f32 = rng.gen_range(0.5..1.2);
        let fh: f32 = rng.gen_range(0.4..1.1);
        let fx: f32 = rng.gen_range(0.2..(w - fw - 0.2).max(0.3));
        let fy: f32 = rng.gen_range(0.2..(d - fd - 0.2).max(0.3));
        let mut pts = sample_box(
            &mut rng,
            Point3::new(fx, fy, 0.0),
            Point3::new(fx + fw, fy + fd, fh),
            count,
        );
        jitter(&mut rng, &mut pts, 0.008);
        for p in pts {
            cloud.push_with_feature(p, &[1.0]);
        }
    }
    cloud
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn room_has_requested_points() {
        let cloud = generate_room(RoomConfig::default(), 10_000, 4);
        assert_eq!(cloud.len(), 10_000);
        assert!(cloud.validate_finite().is_ok());
    }

    #[test]
    fn points_stay_near_room_volume() {
        let cfg = RoomConfig::default();
        let cloud = generate_room(cfg, 5_000, 8);
        for p in cloud.iter() {
            assert!(p.x > -0.2 && p.x < cfg.width + 0.2);
            assert!(p.y > -0.2 && p.y < cfg.depth + 0.2);
            assert!(p.z > -0.2 && p.z < cfg.height + 0.2);
        }
    }

    #[test]
    fn contains_both_classes() {
        let cloud = generate_room(RoomConfig::default(), 5_000, 2);
        let structure = (0..cloud.len())
            .filter(|&i| cloud.feature(i)[0] == 0.0)
            .count();
        let furniture = cloud.len() - structure;
        assert!(structure > furniture, "walls should dominate a scan");
        assert!(furniture > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate_room(RoomConfig::default(), 3_000, 77);
        let b = generate_room(RoomConfig::default(), 3_000, 77);
        assert_eq!(a, b);
    }
}
