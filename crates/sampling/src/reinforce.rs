//! The RS+reinforce baseline of Fig. 12.
//!
//! RandLA-Net-style pipelines (Hu et al., the paper's ref 10) tolerate random
//! sampling by adding an encoder stage that "reinforces" the lossy sample:
//! each kept point aggregates features from a local neighborhood through a
//! small shared MLP. The paper lists it as faster than FPS but slower than
//! RS alone, and **not universal** — it only applies to encoder–decoder
//! PCNs. We reproduce it as random sampling plus the encoder's documented
//! arithmetic cost.

use hgpcn_memsim::HostMemory;

use crate::{random, SampleResult, SamplingError};

/// MACs per retained point for the reinforcement encoder: a local gather of
/// 16 neighbors through a 3→32→32 shared MLP with attentive pooling
/// (RandLA-Net's local feature aggregation at its first scale).
pub const ENCODER_MACS_PER_POINT: u64 = 16 * (3 * 32 + 32 * 32) + 32 * 32;

/// Neighborhood size the encoder gathers per retained point.
pub const ENCODER_NEIGHBORS: u64 = 16;

/// Random sampling followed by the reinforcement encoder's cost.
///
/// The sampled indices are identical to [`random::sample`] with the same
/// seed; the extra cost is the encoder's neighbor reads and MACs.
///
/// # Errors
///
/// Propagates the errors of [`random::sample`].
pub fn sample(mem: &mut HostMemory, k: usize, seed: u64) -> Result<SampleResult, SamplingError> {
    let mut result = random::sample(mem, k, seed)?;
    let k64 = k as u64;
    // Encoder: read 16 neighbors per point and run the shared MLP.
    result.counts.mem_reads += k64 * ENCODER_NEIGHBORS;
    result.counts.bytes_read += k64 * ENCODER_NEIGHBORS * 12;
    result.counts.macs += k64 * ENCODER_MACS_PER_POINT;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::{Point3, PointCloud};
    use hgpcn_memsim::HostMemory;

    fn cloud(n: usize) -> PointCloud {
        (0..n).map(|i| Point3::splat(i as f32)).collect()
    }

    #[test]
    fn same_picks_as_rs_but_more_expensive() {
        let c = cloud(500);
        let rs = random::sample(&mut HostMemory::from_cloud(&c), 50, 4).unwrap();
        let rf = sample(&mut HostMemory::from_cloud(&c), 50, 4).unwrap();
        assert_eq!(rs.indices, rf.indices);
        assert!(rf.counts.macs > 0);
        assert!(rf.counts.mem_reads > rs.counts.mem_reads);
    }

    #[test]
    fn cost_scales_with_k() {
        let c = cloud(500);
        let small = sample(&mut HostMemory::from_cloud(&c), 10, 4).unwrap();
        let large = sample(&mut HostMemory::from_cloud(&c), 100, 4).unwrap();
        assert_eq!(large.counts.macs, 10 * small.counts.macs);
    }

    #[test]
    fn propagates_errors() {
        let mut empty = HostMemory::from_points(vec![]);
        assert!(sample(&mut empty, 1, 0).is_err());
    }
}
