//! Octree-Indexed Sampling (OIS) — Algorithm 2 of Fig. 6, the paper's
//! replacement for FPS in the pre-processing phase (§V).
//!
//! OIS performs farthest-first sampling at **voxel granularity**: the
//! Sampling Modules hold a scoreboard of coarse voxels (one per module
//! batch, Fig. 7), score each candidate voxel by the **minimum Hamming
//! distance of its m-code to the picked set's voxels** (one XOR + popcount
//! per module), and a bitonic stage selects the maximum — the farthest
//! not-yet-covered region. The descent below the chosen voxel follows the
//! remaining-count hierarchy (each level keeps the least-sampled child),
//! and the leaf yields its SFC-extreme remaining point.
//!
//! Host memory is touched exactly once per pick, to read the chosen point
//! — the entire search runs on the on-chip Octree-Table, which is where
//! the Fig. 9 memory-access saving comes from.
//!
//! The max-min scoreboard is what makes OIS *FPS-equivalent in coverage*
//! (§VII-C): like FPS, a region stops being "far" the moment a sample
//! lands in it. A plain greedy farthest-from-`||S||2` descent (the
//! simplest reading of Algorithm 2) degenerates — it keeps drawing from
//! the single region opposite the centroid; `EXPERIMENTS.md` documents
//! the comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_geometry::MortonCode;
use hgpcn_memsim::{HostMemory, OpCounts};
use hgpcn_octree::{Octree, OctreeTable};

use crate::{stage, SampleResult, SamplingError, SamplingKernel};

/// Upper bound on the voxel scoreboard. The scoreboard starts as a coarse
/// octree cut and *refines* — when a pick lands in a voxel, that voxel is
/// replaced by its children — so resolution concentrates where samples
/// accumulate, up to this many entries (hardware: a scoreboard RAM scored
/// by the Sampling Modules in batches of eight).
pub const SCOREBOARD_LIMIT: usize = 512;

/// Initial (pre-refinement) scoreboard size.
pub const SCOREBOARD_INITIAL: usize = 256;

/// Two-ended cursor over a leaf's SFC range: picks consume either extreme.
#[derive(Clone, Copy, Debug)]
struct LeafCursor {
    lo: u32,
    hi: u32,
}

/// Reusable OIS working memory for one stream of frames — the sampling half
/// of a stream-scoped preprocessing context. Holds the remaining-count
/// array, the leaf cursors, the descent path, and the scoreboard's column
/// arrays, so repeated [`sample_with_scratch`] calls allocate nothing.
///
/// Purely capacity: results and op counts are bit-identical with or
/// without it (every buffer is cleared before use), so a scratch may be
/// carried across frames, streams, or backends freely.
#[derive(Clone, Debug, Default)]
pub struct OisScratch {
    remaining: Vec<u32>,
    cursors: std::collections::HashMap<u32, LeafCursor>,
    path: Vec<u32>,
    sb_entries: Vec<u32>,
    sb_spare: Vec<u32>,
    sb_codes: Vec<MortonCode>,
    sb_boxes: Vec<(u32, u32, u32, u32)>,
    sb_min: Vec<u32>,
    sb_counts: Vec<u32>,
}

impl OisScratch {
    /// Creates an empty scratch (no capacity yet).
    pub fn new() -> OisScratch {
        OisScratch::default()
    }
}

struct OisState<'a> {
    table: &'a OctreeTable,
    /// Unpicked points remaining under each table entry.
    remaining: Vec<u32>,
    cursors: std::collections::HashMap<u32, LeafCursor>,
    counts: OpCounts,
}

impl<'a> OisState<'a> {
    fn new(table: &'a OctreeTable, scratch: &mut OisScratch) -> OisState<'a> {
        let mut remaining = std::mem::take(&mut scratch.remaining);
        remaining.clear();
        remaining.extend((0..table.len() as u32).map(|i| table.entry(i).point_count));
        let mut cursors = std::mem::take(&mut scratch.cursors);
        cursors.clear();
        OisState {
            table,
            remaining,
            cursors,
            counts: OpCounts::default(),
        }
    }

    fn cursor(&mut self, leaf: u32) -> LeafCursor {
        let entry = self.table.entry(leaf);
        *self.cursors.entry(leaf).or_insert(LeafCursor {
            lo: entry.point_start,
            hi: entry.point_start + entry.point_count,
        })
    }

    /// Takes a point from the leaf at the end of `path`: the high SFC end
    /// if `take_high`, else the low end. Decrements the remaining counts
    /// along the path and returns the SFC address.
    fn take(&mut self, path: &[u32], take_high: bool) -> usize {
        let leaf = *path.last().expect("path includes the leaf");
        let mut cur = self.cursor(leaf);
        debug_assert!(cur.lo < cur.hi, "leaf must have remaining points");
        let addr = if take_high {
            cur.hi -= 1;
            cur.hi
        } else {
            let a = cur.lo;
            cur.lo += 1;
            a
        };
        self.cursors.insert(leaf, cur);
        for &idx in path {
            self.remaining[idx as usize] -= 1;
            self.counts.table_lookups += 1;
        }
        addr as usize
    }

    /// Walks the table from the root along `code`'s octant path, collecting
    /// the entry indices into `path` (counting one lookup per row read).
    fn walk_path_into(&mut self, code: MortonCode, path: &mut Vec<u32>) {
        path.clear();
        path.push(self.table.root());
        self.counts.table_lookups += 1;
        for level in 1..=code.level() {
            let octant = code
                .ancestor_at(level)
                .octant_in_parent()
                .expect("level >= 1");
            let idx = *path.last().expect("non-empty");
            match self.table.entry(idx).child(octant) {
                Some(next) => {
                    path.push(next);
                    self.counts.table_lookups += 1;
                }
                None => break,
            }
        }
    }

    /// Stratified descent: from `path`'s tail, repeatedly enter the child
    /// from which the fewest points have been taken so far, extending
    /// `path` down to a leaf. Visiting children round-robin regardless of
    /// their density is what gives FPS-like *spatial* uniformity — a
    /// max-remaining rule would chase dense regions instead.
    fn descend_stratified(&mut self, path: &mut Vec<u32>) {
        loop {
            let idx = *path.last().expect("non-empty");
            let entry = *self.table.entry(idx);
            if entry.is_leaf() {
                return;
            }
            let mut best: Option<(u32, u32)> = None; // (picked, child)
            for octant in entry.child_octants() {
                let child = entry.child(octant).expect("octant from mask");
                let remaining = self.remaining[child as usize];
                let picked = self.table.entry(child).point_count - remaining;
                self.counts.comparisons += 1;
                if remaining > 0 && best.map_or(true, |(bp, _)| picked < bp) {
                    best = Some((picked, child));
                }
            }
            let (_, child) = best.expect("internal node with remaining > 0 has such a child");
            path.push(child);
            self.counts.table_lookups += 1;
        }
    }

    /// Random descent weighted by remaining counts (seed pick and the
    /// approximate variant's tail).
    fn descend_random(&mut self, rng: &mut StdRng, path: &mut Vec<u32>) {
        loop {
            let idx = *path.last().expect("non-empty");
            let entry = *self.table.entry(idx);
            if entry.is_leaf() {
                return;
            }
            let total = self.remaining[idx as usize];
            debug_assert!(total > 0);
            let mut pick = rng.gen_range(0..total);
            let mut chosen = None;
            for octant in entry.child_octants() {
                let child = entry.child(octant).expect("octant from mask");
                let r = self.remaining[child as usize];
                if pick < r {
                    chosen = Some(child);
                    break;
                }
                pick -= r;
            }
            path.push(chosen.expect("remaining counts are consistent"));
            self.counts.table_lookups += 1;
        }
    }
}

/// The voxel scoreboard the Sampling Modules score each iteration.
///
/// Distances are normalized to leaf-cell units (`chebyshev << (max_depth -
/// level)`) so entries at different refinement levels compare correctly.
struct Scoreboard {
    /// Table entry index of each scoreboard voxel.
    entries: Vec<u32>,
    /// m-code of each scoreboard voxel.
    codes: Vec<MortonCode>,
    /// Leaf-cell-unit box of each voxel, cached at build/refine time:
    /// `(lo_x, lo_y, lo_z, scale)` with `scale = 2^(max_depth - level)`.
    /// Scoring runs once per voxel per pick, so de-interleaving the
    /// m-code there (as the hardware's combinational logic does for
    /// free) was a measurable share of the sampling floor.
    boxes: Vec<(u32, u32, u32, u32)>,
    /// Minimum (normalized) voxel distance to the picked set so far.
    min_hamming: Vec<u32>,
    /// Total point count of each scoreboard voxel, cached at
    /// build/refine time like `boxes` — the batched select backend
    /// reads it instead of chasing the Octree-Table row (the hardware
    /// scoreboard RAM holds this field anyway, so caching it costs no
    /// modeled ops).
    point_counts: Vec<u32>,
    /// Refinement capacity.
    limit: usize,
    /// Depth normalization reference.
    max_depth: u8,
}

/// Cached leaf-cell-unit box of a scoreboard voxel.
fn voxel_box(code: MortonCode, max_depth: u8) -> (u32, u32, u32, u32) {
    let scale = 1u32 << (max_depth - code.level());
    let (vx, vy, vz) = code.grid_coords();
    (vx * scale, vy * scale, vz * scale, scale)
}

impl Scoreboard {
    /// Builds the scoreboard as the shallowest octree cut of at most
    /// [`SCOREBOARD_INITIAL`] voxels, with refinement capacity scaled to
    /// the sampling target (`min(4k, SCOREBOARD_LIMIT)`).
    fn build(
        table: &OctreeTable,
        k: usize,
        counts: &mut OpCounts,
        scratch: &mut OisScratch,
    ) -> Scoreboard {
        let mut cut = std::mem::take(&mut scratch.sb_entries);
        cut.clear();
        cut.push(table.root());
        let mut spare = std::mem::take(&mut scratch.sb_spare);
        counts.table_lookups += 1;
        loop {
            let expandable: usize = cut
                .iter()
                .map(|&i| table.entry(i).child_mask.count_ones() as usize)
                .sum();
            if expandable == 0 {
                break;
            }
            let next_size = cut.iter().filter(|&&i| table.entry(i).is_leaf()).count() + expandable;
            if next_size > SCOREBOARD_INITIAL {
                break;
            }
            let mut next = spare;
            next.clear();
            next.reserve(next_size);
            for &i in &cut {
                let e = table.entry(i);
                if e.is_leaf() {
                    next.push(i);
                } else {
                    for octant in e.child_octants() {
                        next.push(e.child(octant).expect("octant from mask"));
                        counts.table_lookups += 1;
                    }
                }
            }
            spare = cut;
            cut = next;
        }
        scratch.sb_spare = spare;
        let mut codes = std::mem::take(&mut scratch.sb_codes);
        codes.clear();
        codes.extend(cut.iter().map(|&i| table.code(i)));
        let max_depth = table.max_depth();
        let mut boxes = std::mem::take(&mut scratch.sb_boxes);
        boxes.clear();
        boxes.extend(codes.iter().map(|&c| voxel_box(c, max_depth)));
        let mut min_hamming = std::mem::take(&mut scratch.sb_min);
        min_hamming.clear();
        min_hamming.resize(cut.len(), u32::MAX);
        let mut point_counts = std::mem::take(&mut scratch.sb_counts);
        point_counts.clear();
        point_counts.extend(cut.iter().map(|&i| table.entry(i).point_count));
        let limit = (4 * k.max(1)).clamp(SCOREBOARD_INITIAL, SCOREBOARD_LIMIT);
        Scoreboard {
            entries: cut,
            codes,
            boxes,
            min_hamming,
            point_counts,
            limit,
            max_depth,
        }
    }

    /// Refines the slot a pick landed in: replace the voxel by its
    /// children (inheriting the parent's normalized min-distance) while
    /// capacity allows. Concentrates scoreboard resolution where samples
    /// accumulate, the way FPS's min-distance field sharpens near picks.
    fn refine(&mut self, slot: usize, table: &OctreeTable, counts: &mut OpCounts) {
        let entry = self.entries[slot];
        let e = *table.entry(entry);
        let kids = e.child_mask.count_ones() as usize;
        if e.is_leaf() || self.entries.len() + kids - 1 > self.limit {
            return;
        }
        let inherited = self.min_hamming[slot];
        let mut first = true;
        for octant in e.child_octants() {
            let child = e.child(octant).expect("octant from mask");
            counts.table_lookups += 1;
            let code = table.code(child);
            let bx = voxel_box(code, self.max_depth);
            let pc = table.entry(child).point_count;
            if first {
                self.entries[slot] = child;
                self.codes[slot] = code;
                self.boxes[slot] = bx;
                self.min_hamming[slot] = inherited;
                self.point_counts[slot] = pc;
                first = false;
            } else {
                self.entries.push(child);
                self.codes.push(code);
                self.boxes.push(bx);
                self.min_hamming.push(inherited);
                self.point_counts.push(pc);
            }
        }
    }

    /// Scores every voxel against the newly picked point's code: one
    /// voxel-distance evaluation per Sampling Module. The paper describes
    /// the voxel metric as the Hamming distance of the m-codes; plain XOR
    /// popcount is a poor spatial proxy (adjacent voxels can differ in
    /// every bit), so we evaluate the Chebyshev grid distance of the
    /// de-interleaved coordinates — the same single-cycle combinational
    /// evaluation in hardware, and the interpretation that preserves the
    /// paper's FPS-accuracy claim (see EXPERIMENTS.md).
    fn update(&mut self, kernel: SamplingKernel, picked: MortonCode, counts: &mut OpCounts) {
        match kernel {
            SamplingKernel::Scalar => self.update_scalar(picked, counts),
            SamplingKernel::Batched => self.update_batched(picked, counts),
        }
    }

    /// The anchor scoring loop, kept byte-for-byte.
    fn update_scalar(&mut self, picked: MortonCode, counts: &mut OpCounts) {
        let (px, py, pz) = picked.grid_coords();
        for (i, &(lx, ly, lz, scale)) in self.boxes.iter().enumerate() {
            // Chebyshev distance, in leaf-cell units, from the picked leaf
            // cell to the scoreboard voxel's cached box: per axis a pair
            // of compare-subtracts — one module-cycle.
            let axis = |lo: u32, p: u32| {
                let hi = lo + scale - 1;
                if p < lo {
                    lo - p
                } else {
                    p.saturating_sub(hi)
                }
            };
            let d = axis(lx, px).max(axis(ly, py)).max(axis(lz, pz));
            counts.hamming_ops += 1;
            if d < self.min_hamming[i] {
                self.min_hamming[i] = d;
            }
        }
    }

    /// Branchless scoring: per axis `max(lo ∸ p, p ∸ hi)` (saturating
    /// subtractions), then an unconditional `min` into the slot. For
    /// every case (`p < lo`, inside, `p > hi`) the expression reduces to
    /// the anchor's branch arms, and `u32` arithmetic is exact — so the
    /// resulting `min_hamming` values are identical, while the loop body
    /// autovectorizes over the SoA box cache.
    fn update_batched(&mut self, picked: MortonCode, counts: &mut OpCounts) {
        let (px, py, pz) = picked.grid_coords();
        for (bx, mh) in self.boxes.iter().zip(self.min_hamming.iter_mut()) {
            let &(lx, ly, lz, scale) = bx;
            let dx = lx.saturating_sub(px).max(px.saturating_sub(lx + scale - 1));
            let dy = ly.saturating_sub(py).max(py.saturating_sub(ly + scale - 1));
            let dz = lz.saturating_sub(pz).max(pz.saturating_sub(lz + scale - 1));
            *mh = (*mh).min(dx.max(dy).max(dz));
        }
        counts.hamming_ops += self.boxes.len() as u64;
    }

    /// The bitonic-selected farthest voxel with remaining points: maximum
    /// min-distance, ties broken toward the *least-sampled* voxel (fewest
    /// picks taken). Breaking ties toward dense voxels would collapse the
    /// sampler into density-proportional (random-sampling-like) behaviour.
    fn select(
        &self,
        kernel: SamplingKernel,
        table: &OctreeTable,
        remaining: &[u32],
        counts: &mut OpCounts,
    ) -> Option<usize> {
        match kernel {
            SamplingKernel::Scalar => self.select_scalar(table, remaining, counts),
            SamplingKernel::Batched => self.select_batched(remaining, counts),
        }
    }

    /// The anchor selection loop, kept byte-for-byte.
    fn select_scalar(
        &self,
        table: &OctreeTable,
        remaining: &[u32],
        counts: &mut OpCounts,
    ) -> Option<usize> {
        let mut best: Option<(u32, u32, usize)> = None; // (min_dist, picked, slot)
        for (i, &entry) in self.entries.iter().enumerate() {
            // Scoreboard scans are module-evaluated in hardware and
            // vectorized on CPU; tally them with the scoring ops.
            counts.hamming_ops += 1;
            let rem = remaining[entry as usize];
            if rem == 0 {
                continue;
            }
            let picked = table.entry(entry).point_count - rem;
            let better = match best {
                None => true,
                Some((h, p, _)) => {
                    self.min_hamming[i] > h || (self.min_hamming[i] == h && picked < p)
                }
            };
            if better {
                best = Some((self.min_hamming[i], picked, i));
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Selection over scoreboard-resident fields only: `picked` comes
    /// from the cached `point_counts` (equal by construction to the
    /// Octree-Table row the anchor reads), and the argmax carries plain
    /// integers instead of an `Option` tuple. Same strict-improvement
    /// rule — maximum min-distance, ties toward fewest picks, first
    /// slot wins residual ties — so the chosen slot is identical.
    fn select_batched(&self, remaining: &[u32], counts: &mut OpCounts) -> Option<usize> {
        let mut best_slot = usize::MAX;
        let mut best_h = 0u32;
        let mut best_p = 0u32;
        for (i, &entry) in self.entries.iter().enumerate() {
            let rem = remaining[entry as usize];
            if rem == 0 {
                continue;
            }
            let h = self.min_hamming[i];
            let picked = self.point_counts[i] - rem;
            if best_slot == usize::MAX || h > best_h || (h == best_h && picked < best_p) {
                best_slot = i;
                best_h = h;
                best_p = picked;
            }
        }
        counts.hamming_ops += self.entries.len() as u64;
        (best_slot != usize::MAX).then_some(best_slot)
    }
}

fn validate(octree: &Octree, mem: &HostMemory, k: usize) -> Result<(), SamplingError> {
    let n = octree.points().len();
    if mem.len() != n {
        return Err(SamplingError::OctreeMismatch {
            octree_points: n,
            memory_points: mem.len(),
        });
    }
    if n == 0 {
        return Err(SamplingError::EmptyCloud);
    }
    if k > n {
        return Err(SamplingError::TargetExceedsInput {
            target: k,
            available: n,
        });
    }
    Ok(())
}

/// Runs exact OIS (Algorithm 2), sampling `k` points.
///
/// `mem` must hold the **SFC-reorganized** frame (`octree.points()`), i.e.
/// the host memory after the Octree-build Unit's pre-configuration step.
/// Returned indices are SFC addresses; translate to raw-frame indices with
/// [`Octree::permutation`]. The memory's access counters are reset on
/// entry. The returned counts cover sampling only — charge the build
/// separately from [`Octree::build_stats`].
///
/// # Errors
///
/// * [`SamplingError::OctreeMismatch`] if `mem` doesn't match the octree;
/// * [`SamplingError::EmptyCloud`] / [`SamplingError::TargetExceedsInput`]
///   as for the other samplers.
pub fn sample(
    octree: &Octree,
    table: &OctreeTable,
    mem: &mut HostMemory,
    k: usize,
    seed: u64,
) -> Result<SampleResult, SamplingError> {
    sample_inner(octree, table, mem, k, seed, None, stage::active(), None)
}

/// [`sample`] on a specific [`SamplingKernel`] backend instead of the
/// process-wide [`stage::active`] selection. All backends pick
/// bit-identical indices and charge identical counts; this knob exists
/// so a harness (or a runtime honoring a per-run `stage_backends`
/// override) can run an anchor yardstick and an optimized candidate
/// side by side in one process.
///
/// # Errors
///
/// As [`sample`].
pub fn sample_with(
    octree: &Octree,
    table: &OctreeTable,
    mem: &mut HostMemory,
    k: usize,
    seed: u64,
    kernel: SamplingKernel,
) -> Result<SampleResult, SamplingError> {
    sample_inner(octree, table, mem, k, seed, None, kernel, None)
}

/// [`sample_with`] reusing a stream's [`OisScratch`] buffers instead of
/// allocating fresh working memory. Bit-identical indices and counts to
/// the scratch-free entry points — the scratch is a pure allocation
/// eliminator for stream-scoped preprocessing contexts.
///
/// # Errors
///
/// As [`sample`].
pub fn sample_with_scratch(
    octree: &Octree,
    table: &OctreeTable,
    mem: &mut HostMemory,
    k: usize,
    seed: u64,
    kernel: SamplingKernel,
    scratch: &mut OisScratch,
) -> Result<SampleResult, SamplingError> {
    sample_inner(octree, table, mem, k, seed, None, kernel, Some(scratch))
}

/// The approximate-OIS future-work variant (§VIII): once the descent is
/// within `stop_levels` of the leaves, pick a random remaining point of
/// the current node instead of completing the structured search. The
/// substitute is spatially adjacent to the exact answer (same voxel), so
/// information loss is bounded by the voxel size at the switch level —
/// and the per-level child comparisons below that point are saved.
pub fn approx_sample(
    octree: &Octree,
    table: &OctreeTable,
    mem: &mut HostMemory,
    k: usize,
    seed: u64,
    stop_levels: u8,
) -> Result<SampleResult, SamplingError> {
    sample_inner(
        octree,
        table,
        mem,
        k,
        seed,
        Some(stop_levels),
        stage::active(),
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn sample_inner(
    octree: &Octree,
    table: &OctreeTable,
    mem: &mut HostMemory,
    k: usize,
    seed: u64,
    approx_stop: Option<u8>,
    kernel: SamplingKernel,
    scratch: Option<&mut OisScratch>,
) -> Result<SampleResult, SamplingError> {
    validate(octree, mem, k)?;
    let _ = mem.reset_counts();
    let mut indices = Vec::with_capacity(k);
    if k == 0 {
        return Ok(SampleResult {
            indices,
            counts: OpCounts::default(),
        });
    }
    // Without a caller-provided scratch, run through a throwaway one: the
    // algorithm below is identical either way, the scratch only decides
    // whether the buffers outlive this call.
    let mut own = OisScratch::default();
    let scratch = scratch.unwrap_or(&mut own);
    let mut state = OisState::new(table, scratch);
    let mut rng = StdRng::seed_from_u64(seed);

    let depth = table.max_depth();
    let mut scoreboard = Scoreboard::build(table, k, &mut state.counts, scratch);

    // Seed pick: a weighted-random point, like FPS's random seed.
    let mut path = std::mem::take(&mut scratch.path);
    path.clear();
    path.push(table.root());
    state.descend_random(&mut rng, &mut path);
    let mut last_code = table.code(*path.last().expect("leaf"));
    let addr = state.take(&path, rng.gen_bool(0.5));
    let _ = mem.read_point(addr);
    indices.push(addr);
    scoreboard.update(kernel, octree.point_codes()[addr], &mut state.counts);

    for _ in 1..k {
        // 1. Scoreboard: farthest (max-min Hamming) voxel with points left.
        let slot = scoreboard
            .select(kernel, table, &state.remaining, &mut state.counts)
            .expect("picks < k <= n leaves remaining points");
        let voxel_code = scoreboard.codes[slot];

        // 2. Walk to that voxel, then descend the least-sampled children.
        state.walk_path_into(voxel_code, &mut path);
        match approx_stop {
            None => state.descend_stratified(&mut path),
            Some(stop) => {
                // Structured descent until near the leaves, then random.
                loop {
                    let idx = *path.last().expect("non-empty");
                    let entry = *state.table.entry(idx);
                    if entry.is_leaf() {
                        break;
                    }
                    if entry.level + stop >= depth {
                        state.descend_random(&mut rng, &mut path);
                        break;
                    }
                    let mut best: Option<(u32, u32)> = None;
                    for octant in entry.child_octants() {
                        let child = entry.child(octant).expect("octant from mask");
                        let r = state.remaining[child as usize];
                        state.counts.comparisons += 1;
                        if r > 0 && best.map_or(true, |(br, _)| r > br) {
                            best = Some((r, child));
                        }
                    }
                    path.push(best.expect("remaining > 0").1);
                    state.counts.table_lookups += 1;
                }
            }
        }

        // 3. Take the SFC-extreme remaining point of the leaf: the high end
        // if the leaf sits after the previously picked voxel on the curve.
        let leaf = *path.last().expect("non-empty");
        let leaf_code = table.code(leaf);
        let take_high =
            leaf_code >= last_code.ancestor_at(leaf_code.level().min(last_code.level()));
        state.counts.comparisons += 1;
        let addr = state.take(&path, take_high);
        let _ = mem.read_point(addr);
        last_code = leaf_code;
        indices.push(addr);

        // 4. Refine the chosen slot and score the new pick against the
        // whole scoreboard in parallel.
        scoreboard.refine(slot, table, &mut state.counts);
        scoreboard.update(kernel, octree.point_codes()[addr], &mut state.counts);
    }

    let counts = state.counts + mem.counts();

    // Hand every buffer back to the scratch for the next frame.
    scratch.path = path;
    scratch.remaining = state.remaining;
    scratch.cursors = state.cursors;
    let Scoreboard {
        entries,
        codes,
        boxes,
        min_hamming,
        point_counts,
        ..
    } = scoreboard;
    scratch.sb_entries = entries;
    scratch.sb_codes = codes;
    scratch.sb_boxes = boxes;
    scratch.sb_min = min_hamming;
    scratch.sb_counts = point_counts;

    Ok(SampleResult { indices, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::{Point3, PointCloud};
    use hgpcn_octree::OctreeConfig;

    fn setup(n: usize) -> (Octree, OctreeTable, HostMemory) {
        let cloud: PointCloud = (0..n)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract() * 10.0,
                    (f * 0.414).fract() * 10.0,
                    (f * 0.732).fract() * 10.0,
                )
            })
            .collect();
        let octree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(6).leaf_capacity(2)).unwrap();
        let table = OctreeTable::from_octree(&octree);
        let mem = HostMemory::from_cloud(octree.points());
        (octree, table, mem)
    }

    #[test]
    fn produces_valid_unique_sample() {
        let (octree, table, mut mem) = setup(500);
        let r = sample(&octree, &table, &mut mem, 64, 3).unwrap();
        assert_eq!(r.len(), 64);
        assert!(r.is_valid_sample_of(500));
    }

    #[test]
    fn reads_exactly_k_points_from_host_memory() {
        let (octree, table, mut mem) = setup(1000);
        let k = 128;
        let r = sample(&octree, &table, &mut mem, k, 9).unwrap();
        // The memory-access saving of Fig. 9: OIS touches host memory once
        // per sampled point, nothing else.
        assert_eq!(r.counts.mem_reads, k as u64);
        assert_eq!(r.counts.mem_writes, 0);
    }

    #[test]
    fn lookups_bounded_per_pick() {
        let (octree, table, mut mem) = setup(1000);
        let k = 100;
        let r = sample(&octree, &table, &mut mem, k, 1).unwrap();
        // Each pick walks to a leaf and decrements the same path: at most
        // ~2·(depth+1) lookups, plus the scoreboard construction.
        let bound =
            (k as u64 + 1) * (2 * u64::from(octree.depth()) + 2) + SCOREBOARD_LIMIT as u64 + 2;
        assert!(
            r.counts.table_lookups <= bound,
            "lookups {} exceed bound {bound}",
            r.counts.table_lookups
        );
    }

    #[test]
    fn can_exhaust_the_whole_frame() {
        let (octree, table, mut mem) = setup(100);
        let r = sample(&octree, &table, &mut mem, 100, 5).unwrap();
        assert!(r.is_valid_sample_of(100));
        let mut idx = r.indices.clone();
        idx.sort_unstable();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn second_pick_is_far_from_seed() {
        let (octree, table, mut mem) = setup(400);
        let r = sample(&octree, &table, &mut mem, 2, 7).unwrap();
        let pts = octree.points();
        let d = pts.point(r.indices[0]).distance(pts.point(r.indices[1]));
        // The frame spans a 10-unit cube; a farthest-voxel pick must land
        // well across it.
        let diag = octree.root_bounds().diagonal();
        assert!(d > diag * 0.3, "second pick only {d} away (diag {diag})");
    }

    #[test]
    fn coverage_beats_clustered_sampling() {
        // Max-min scoreboard sampling must spread picks across the frame:
        // with k picks the mean nearest-sample distance must be well below
        // the frame diagonal / 2 (what a single-corner cluster would give).
        let (octree, table, mut mem) = setup(2000);
        let k = 64;
        let r = sample(&octree, &table, &mut mem, k, 11).unwrap();
        let cov = crate::quality::coverage_radius(octree.points(), &r.indices);
        let diag = octree.root_bounds().diagonal();
        assert!(cov < diag * 0.25, "coverage {cov} vs diagonal {diag}");
    }

    #[test]
    fn approx_variant_is_cheaper_in_comparisons() {
        let cloud: PointCloud = (0..800)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract(),
                    (f * 0.414).fract(),
                    (f * 0.732).fract(),
                )
            })
            .collect();
        let octree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(8).leaf_capacity(1)).unwrap();
        let table = OctreeTable::from_octree(&octree);
        let mut mem = HostMemory::from_cloud(octree.points());
        let exact = sample(&octree, &table, &mut mem, 64, 3).unwrap();
        let mut mem2 = HostMemory::from_cloud(octree.points());
        let approx = approx_sample(&octree, &table, &mut mem2, 64, 3, 5).unwrap();
        assert!(
            approx.counts.comparisons < exact.counts.comparisons,
            "approx {} vs exact {}",
            approx.counts.comparisons,
            exact.counts.comparisons
        );
        assert!(approx.is_valid_sample_of(800));
        assert_eq!(approx.len(), 64);
    }

    #[test]
    fn rejects_mismatched_memory() {
        let (octree, table, _) = setup(100);
        let mut wrong = HostMemory::from_points(vec![Point3::ORIGIN; 7]);
        assert!(matches!(
            sample(&octree, &table, &mut wrong, 5, 0).unwrap_err(),
            SamplingError::OctreeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_oversized_target() {
        let (octree, table, mut mem) = setup(50);
        assert!(matches!(
            sample(&octree, &table, &mut mem, 51, 0).unwrap_err(),
            SamplingError::TargetExceedsInput { .. }
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let (octree, table, _) = setup(300);
        let mut m1 = HostMemory::from_cloud(octree.points());
        let mut m2 = HostMemory::from_cloud(octree.points());
        let a = sample(&octree, &table, &mut m1, 32, 11).unwrap();
        let b = sample(&octree, &table, &mut m2, 32, 11).unwrap();
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn sampling_kernels_are_bit_identical() {
        for n in [60usize, 500, 2000] {
            let (octree, table, _) = setup(n);
            let k = (n / 4).max(1);
            let mut m1 = HostMemory::from_cloud(octree.points());
            let mut m2 = HostMemory::from_cloud(octree.points());
            let a = sample_with(&octree, &table, &mut m1, k, 17, SamplingKernel::Scalar).unwrap();
            let b = sample_with(&octree, &table, &mut m2, k, 17, SamplingKernel::Batched).unwrap();
            assert_eq!(a.indices, b.indices, "n={n}");
            assert_eq!(a.counts, b.counts, "n={n}");
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One scratch carried across frames of different sizes and both
        // kernels must change nothing: same indices, same counts.
        let mut scratch = OisScratch::new();
        for (frame, n) in [(0usize, 300usize), (1, 900), (2, 60), (3, 900)] {
            let (octree, table, _) = setup(n);
            let k = (n / 5).max(1);
            let seed = 23 + frame as u64;
            for kernel in [SamplingKernel::Scalar, SamplingKernel::Batched] {
                let mut m1 = HostMemory::from_cloud(octree.points());
                let mut m2 = HostMemory::from_cloud(octree.points());
                let fresh = sample_with(&octree, &table, &mut m1, k, seed, kernel).unwrap();
                let reused =
                    sample_with_scratch(&octree, &table, &mut m2, k, seed, kernel, &mut scratch)
                        .unwrap();
                assert_eq!(fresh.indices, reused.indices, "frame {frame} {kernel:?}");
                assert_eq!(fresh.counts, reused.counts, "frame {frame} {kernel:?}");
            }
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let (octree, table, mut mem) = setup(50);
        let r = sample(&octree, &table, &mut mem, 0, 0).unwrap();
        assert!(r.is_empty());
    }
}
