//! Voxel-grid down-sampling: the other practical baseline (one
//! representative point per occupied voxel), common in point-cloud
//! toolchains (PCL, Open3D).
//!
//! The paper's Fig. 12 compares FPS, RS and RS+reinforce; voxel-grid is
//! included here because it shares OIS's "relative position" insight —
//! but, unlike OIS, it cannot hit an exact output size K: the number of
//! occupied voxels is data-dependent, which is precisely why PCN
//! pipelines needing a fixed input size use FPS instead.

use hgpcn_geometry::MortonCode;
use hgpcn_memsim::HostMemory;
use hgpcn_octree::Octree;

use crate::{SampleResult, SamplingError};

/// Keeps the first (SFC-lowest) point of every occupied voxel at `level`
/// of the octree.
///
/// Returns SFC addresses like OIS. The output size is the number of
/// occupied voxels — use [`occupied_voxels`] to probe it first.
///
/// # Errors
///
/// * [`SamplingError::OctreeMismatch`] if `mem` doesn't hold the octree's
///   reorganized frame;
/// * [`SamplingError::EmptyCloud`] if the frame is empty.
pub fn sample(
    octree: &Octree,
    mem: &mut HostMemory,
    level: u8,
) -> Result<SampleResult, SamplingError> {
    let n = octree.points().len();
    if mem.len() != n {
        return Err(SamplingError::OctreeMismatch {
            octree_points: n,
            memory_points: mem.len(),
        });
    }
    if n == 0 {
        return Err(SamplingError::EmptyCloud);
    }
    let _ = mem.reset_counts();
    let level = level.min(octree.config().max_depth_value());
    let mut indices = Vec::new();
    let mut counts = hgpcn_memsim::OpCounts::default();

    // Points are SFC-sorted, so voxel membership at any level is a run of
    // equal code prefixes: one comparison per point finds the boundaries.
    let codes = octree.point_codes();
    let mut last: Option<MortonCode> = None;
    for (sfc, code) in codes.iter().enumerate() {
        let voxel = code.ancestor_at(level);
        counts.comparisons += 1;
        if last != Some(voxel) {
            let _ = mem.read_point(sfc);
            indices.push(sfc);
            last = Some(voxel);
        }
    }
    counts += mem.counts();
    Ok(SampleResult { indices, counts })
}

/// Number of occupied voxels at `level` (the output size [`sample`] would
/// produce).
pub fn occupied_voxels(octree: &Octree, level: u8) -> usize {
    let level = level.min(octree.config().max_depth_value());
    let mut count = 0;
    let mut last = None;
    for code in octree.point_codes() {
        let voxel = code.ancestor_at(level);
        if last != Some(voxel) {
            count += 1;
            last = Some(voxel);
        }
    }
    count
}

/// The finest level whose occupied-voxel count does not exceed `target` —
/// the closest a voxel-grid can get to a fixed output size from below.
pub fn level_for_target(octree: &Octree, target: usize) -> u8 {
    let max = octree.config().max_depth_value();
    let mut best = 0;
    for level in 0..=max {
        if occupied_voxels(octree, level) <= target {
            best = level;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::{Point3, PointCloud};
    use hgpcn_octree::OctreeConfig;

    fn setup(n: usize) -> (Octree, HostMemory) {
        let cloud: PointCloud = (0..n)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract(),
                    (f * 0.414).fract(),
                    (f * 0.732).fract(),
                )
            })
            .collect();
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(8).leaf_capacity(2)).unwrap();
        let mem = HostMemory::from_cloud(tree.points());
        (tree, mem)
    }

    #[test]
    fn one_point_per_occupied_voxel() {
        let (tree, mut mem) = setup(500);
        let level = 3;
        let r = sample(&tree, &mut mem, level).unwrap();
        assert_eq!(r.len(), occupied_voxels(&tree, level));
        assert!(r.is_valid_sample_of(500));
        // Every pair of kept points lies in distinct voxels.
        let codes = tree.point_codes();
        let voxels: std::collections::HashSet<_> = r
            .indices
            .iter()
            .map(|&i| codes[i].ancestor_at(level))
            .collect();
        assert_eq!(voxels.len(), r.len());
    }

    #[test]
    fn occupancy_grows_with_level() {
        let (tree, _) = setup(800);
        let mut prev = 0;
        for level in 0..=6 {
            let occ = occupied_voxels(&tree, level);
            assert!(occ >= prev, "occupancy must be monotone in level");
            prev = occ;
        }
        assert_eq!(occupied_voxels(&tree, 0), 1);
    }

    #[test]
    fn level_for_target_is_tight() {
        let (tree, _) = setup(800);
        let level = level_for_target(&tree, 100);
        assert!(occupied_voxels(&tree, level) <= 100);
        if level < tree.config().max_depth_value() {
            assert!(occupied_voxels(&tree, level + 1) > 100);
        }
    }

    #[test]
    fn memory_traffic_is_one_read_per_kept_point() {
        let (tree, mut mem) = setup(600);
        let r = sample(&tree, &mut mem, 2).unwrap();
        assert_eq!(r.counts.mem_reads, r.len() as u64);
    }

    #[test]
    fn rejects_mismatched_memory() {
        let (tree, _) = setup(100);
        let mut wrong = HostMemory::from_points(vec![Point3::ORIGIN; 3]);
        assert!(matches!(
            sample(&tree, &mut wrong, 3).unwrap_err(),
            SamplingError::OctreeMismatch { .. }
        ));
    }
}
