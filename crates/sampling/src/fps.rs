//! The common farthest-point-sampling method (Algorithm 1 of Fig. 6).
//!
//! FPS picks, K times, the unpicked point farthest from the picked set.
//! Per iteration it streams the whole frame: reads every point, reads its
//! running minimum distance, updates it against the newest picked point,
//! **writes the distance back to memory, and reads it again** in the
//! ranking pass — the low-locality behaviour §III-A identifies as the
//! pre-processing bottleneck. Running it over [`HostMemory`] makes those
//! accesses measurable, which is how Fig. 9 is regenerated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_memsim::{HostMemory, OpCounts};

use crate::{SampleResult, SamplingError};

/// Runs common FPS over the frame resident in `mem`, sampling `k` points.
///
/// The seed point is chosen uniformly from the frame (deterministically
/// from `seed`), matching the paper's "randomly selecting a seed point".
/// The memory's access counters are reset on entry so the returned counts
/// describe exactly this run.
///
/// # Errors
///
/// * [`SamplingError::EmptyCloud`] if the frame is empty;
/// * [`SamplingError::TargetExceedsInput`] if `k` exceeds the frame size.
pub fn sample(mem: &mut HostMemory, k: usize, seed: u64) -> Result<SampleResult, SamplingError> {
    let n = mem.len();
    if n == 0 {
        return Err(SamplingError::EmptyCloud);
    }
    if k > n {
        return Err(SamplingError::TargetExceedsInput {
            target: k,
            available: n,
        });
    }
    // The result reports only this run's accesses.
    let _ = mem.reset_counts();
    let mut counts = OpCounts::default();
    let mut indices = Vec::with_capacity(k);
    if k == 0 {
        return Ok(SampleResult { indices, counts });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let first = rng.gen_range(0..n);
    indices.push(first);

    // The intermediate min-distance array lives in host memory; initialize
    // it (N scalar writes).
    let mut min_dist = vec![f32::INFINITY; n];
    for _ in 0..n {
        mem.write_scalar();
    }

    let mut picked = vec![false; n];
    picked[first] = true;

    for _ in 1..k {
        let last = mem.read_point(*indices.last().expect("non-empty"));
        // Pass 1: update every point's distance-to-set against the newest
        // picked point and spill it back to memory.
        for (i, slot) in min_dist.iter_mut().enumerate() {
            let p = mem.read_point(i);
            mem.read_scalar(); // old min distance
            let d = p.distance_sq(last);
            counts.distance_computations += 1;
            counts.comparisons += 1;
            if d < *slot {
                *slot = d;
            }
            mem.write_scalar(); // updated min distance
        }
        // Pass 2: rank — re-read all distances and take the farthest
        // unpicked point.
        let mut best = None;
        let mut best_d = f32::NEG_INFINITY;
        for (i, &d) in min_dist.iter().enumerate() {
            mem.read_scalar();
            counts.comparisons += 1;
            if !picked[i] && d > best_d {
                best_d = d;
                best = Some(i);
            }
        }
        let best = best.expect("k <= n guarantees an unpicked point");
        picked[best] = true;
        indices.push(best);
    }

    // Read the sampled points out of host memory (the down-sampled frame
    // handed to the inference phase).
    for &i in &indices {
        let _ = mem.read_point(i);
    }

    counts += mem.counts();
    Ok(SampleResult { indices, counts })
}

/// Closed-form operation counts of [`sample`] for a frame of `n` points
/// down-sampled to `k` — bit-for-bit identical to what the instrumented run
/// reports (property-tested in this module). Used to extrapolate to the
/// paper's 10^6-point frames, where physically executing FPS would take
/// minutes per data point.
pub fn analytic_counts(n: usize, k: usize) -> OpCounts {
    if n == 0 || k == 0 {
        return OpCounts::default();
    }
    let (n64, k64) = (n as u64, k as u64);
    let iters = k64 - 1;
    let point_reads = iters * (n64 + 1) + k64;
    let scalar_reads = iters * 2 * n64;
    let scalar_writes = n64 + iters * n64;
    OpCounts {
        mem_reads: point_reads + scalar_reads,
        mem_writes: scalar_writes,
        bytes_read: point_reads * 12 + scalar_reads * 4,
        bytes_written: scalar_writes * 4,
        distance_computations: iters * n64,
        comparisons: iters * 2 * n64,
        ..OpCounts::default()
    }
}

/// The on-chip memory (bits) an FPGA implementation of common FPS needs:
/// the whole frame plus its intermediate distance array must be resident
/// (§VII-C). This is the Fig. 13 numerator.
pub fn onchip_bits(n: usize) -> u64 {
    // 3 x f32 coordinates + the running min-distance array + the
    // per-iteration distance scratch the ranking pass re-reads.
    (n as u64) * (96 + 32 + 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::{Point3, PointCloud};

    fn line_cloud(n: usize) -> PointCloud {
        (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut empty = HostMemory::from_points(vec![]);
        assert_eq!(
            sample(&mut empty, 1, 0).unwrap_err(),
            SamplingError::EmptyCloud
        );
        let mut mem = HostMemory::from_cloud(&line_cloud(4));
        assert!(matches!(
            sample(&mut mem, 5, 0).unwrap_err(),
            SamplingError::TargetExceedsInput { .. }
        ));
    }

    #[test]
    fn k_zero_is_empty() {
        let mut mem = HostMemory::from_cloud(&line_cloud(4));
        let r = sample(&mut mem, 0, 0).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn samples_are_valid_and_spread() {
        let mut mem = HostMemory::from_cloud(&line_cloud(100));
        let r = sample(&mut mem, 4, 7).unwrap();
        assert_eq!(r.len(), 4);
        assert!(r.is_valid_sample_of(100));
        // On a line, FPS must include both endpoints among the first picks
        // (whatever the seed, the farthest point from it is an endpoint).
        assert!(r.indices.contains(&0) || r.indices.contains(&99));
    }

    #[test]
    fn farthest_first_property_on_line() {
        // From seed s, the second pick is the farther endpoint, and every
        // later pick attains the maximum min-distance to the already-picked
        // set (ties allowed).
        let cloud = line_cloud(11);
        let mut mem = HostMemory::from_cloud(&cloud);
        let r = sample(&mut mem, 4, 1).unwrap();
        let s = r.indices[0];
        let expect_second = if s <= 5 { 10 } else { 0 };
        assert_eq!(r.indices[1], expect_second);
        for pick in 2..4 {
            let picked = &r.indices[..pick];
            let min_dist = |i: usize| {
                picked
                    .iter()
                    .map(|&j| cloud.point(i).distance_sq(cloud.point(j)))
                    .fold(f32::INFINITY, f32::min)
            };
            let best = (0..cloud.len())
                .filter(|i| !picked.contains(i))
                .map(min_dist)
                .fold(0.0f32, f32::max);
            assert_eq!(
                min_dist(r.indices[pick]),
                best,
                "pick {pick} not farthest-first"
            );
        }
    }

    #[test]
    fn analytic_counts_match_instrumented_run() {
        for (n, k) in [(1, 1), (10, 1), (10, 3), (57, 13), (200, 50)] {
            let mut mem = HostMemory::from_cloud(&line_cloud(n));
            let r = sample(&mut mem, k, 3).unwrap();
            assert_eq!(r.counts, analytic_counts(n, k), "n={n} k={k}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cloud = line_cloud(50);
        let a = sample(&mut HostMemory::from_cloud(&cloud), 5, 9).unwrap();
        let b = sample(&mut HostMemory::from_cloud(&cloud), 5, 9).unwrap();
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn onchip_bits_grows_linearly() {
        assert_eq!(onchip_bits(1000), 160_000);
        assert!(onchip_bits(500_000) > hgpcn_memsim::OnChipMemory::ARRIA10_BITS);
    }
}
