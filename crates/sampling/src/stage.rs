//! The sampling stage kernel: pluggable OIS scoreboard-scan backends
//! with one-time runtime dispatch.
//!
//! OIS spends its per-pick time in two scans over the voxel scoreboard
//! (score every voxel against the new pick; select the farthest voxel
//! with points remaining — the Sampling Modules of Fig. 7). This module
//! names those scan implementations behind a [`SamplingKernel`],
//! mirroring the `hgpcn_pcn::kernel::LinearKernel` seam:
//!
//! > Every backend picks **bit-identical** sample indices to
//! > [`SamplingKernel::Scalar`]: the scans are pure `u32` Chebyshev
//! > arithmetic (exact on every backend), and the batched backend's
//! > branchless min/max reductions compute element-for-element the same
//! > values with the same first-maximum / least-picked tie-breaks.
//! > Modeled operation counts are identical by construction — both
//! > backends charge one scoreboard op per voxel per scan.
//!
//! Selection policy is decided once per process: [`active`] reads the
//! `HGPCN_STAGE_SAMPLING` environment variable on first use
//! (`auto`/empty picks [`fastest_supported`]); unrecognized names
//! **degrade to the scalar anchor** with a warning instead of refusing
//! to serve, matching the other `HGPCN_STAGE_*` seams (see
//! `ARCHITECTURE.md`).

use std::sync::OnceLock;

/// An OIS scoreboard-scan backend. All variants are bit-identical in
/// the samples they pick; they differ only in speed. See the
/// [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SamplingKernel {
    /// The anchor: the original per-voxel loops (branching Chebyshev
    /// axis distance, `Option`-tracked argmax), kept byte-for-byte.
    Scalar,
    /// Batched SoA scans: branchless saturating-subtract Chebyshev
    /// distances over the cached voxel boxes (autovectorizable `u32`
    /// min/max chains) and a select pass that reads the per-slot point
    /// counts from a scoreboard-resident cache instead of chasing
    /// Octree-Table rows. Integer arithmetic is exact, so equivalence
    /// to the anchor is structural, not approximate.
    Batched,
}

impl SamplingKernel {
    /// Stable lower-case name, as reported in `RuntimeReport` and
    /// `BENCH_runtime.json` and accepted back by
    /// [`SamplingKernel::from_name`].
    pub fn name(&self) -> &'static str {
        match self {
            SamplingKernel::Scalar => "scalar",
            SamplingKernel::Batched => "batched",
        }
    }

    /// Parses a backend name. Returns `None` for unknown names.
    ///
    /// ```
    /// use hgpcn_sampling::SamplingKernel;
    ///
    /// assert_eq!(SamplingKernel::from_name("batched"), Some(SamplingKernel::Batched));
    /// assert_eq!(SamplingKernel::from_name("fpga"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<SamplingKernel> {
        match name {
            "scalar" => Some(SamplingKernel::Scalar),
            "batched" => Some(SamplingKernel::Batched),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this backend — always `true`
    /// (both backends are portable scalar code); kept for congruence
    /// with the `LinearKernel` surface.
    pub fn is_supported(&self) -> bool {
        true
    }

    /// Every backend compiled into this build, fastest-last.
    pub fn all() -> &'static [SamplingKernel] {
        &[SamplingKernel::Scalar, SamplingKernel::Batched]
    }
}

/// The fastest backend this build supports: the branchless SoA
/// [`SamplingKernel::Batched`] scan (portable, so always available).
pub fn fastest_supported() -> SamplingKernel {
    SamplingKernel::Batched
}

/// Resolves an override request (the `HGPCN_STAGE_SAMPLING` value) to a
/// runnable backend. Empty / `auto` selects [`fastest_supported`]; an
/// unrecognized name **degrades to the scalar anchor** with a warning
/// on stderr, so a forced configuration still serves (all backends are
/// bit-identical — degrading can never change results).
pub fn resolve_override(request: &str) -> SamplingKernel {
    match request {
        "" | "auto" => fastest_supported(),
        other => SamplingKernel::from_name(other).unwrap_or_else(|| {
            eprintln!(
                "HGPCN_STAGE_SAMPLING: unknown backend {other:?} \
                 (expected auto | scalar | batched); degrading to the scalar anchor"
            );
            SamplingKernel::Scalar
        }),
    }
}

static ACTIVE: OnceLock<SamplingKernel> = OnceLock::new();

/// The process-wide sampling backend. Decided once, on first use: the
/// `HGPCN_STAGE_SAMPLING` override if set, otherwise
/// [`fastest_supported`].
pub fn active() -> SamplingKernel {
    *ACTIVE.get_or_init(|| {
        let request = std::env::var("HGPCN_STAGE_SAMPLING").unwrap_or_default();
        resolve_override(&request)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in SamplingKernel::all() {
            assert_eq!(SamplingKernel::from_name(k.name()), Some(*k));
            assert!(k.is_supported());
        }
        assert_eq!(SamplingKernel::from_name("bitonic"), None);
    }

    #[test]
    fn override_resolution_degrades_gracefully() {
        assert_eq!(resolve_override(""), fastest_supported());
        assert_eq!(resolve_override("auto"), fastest_supported());
        assert_eq!(resolve_override("scalar"), SamplingKernel::Scalar);
        assert_eq!(resolve_override("batched"), SamplingKernel::Batched);
        assert_eq!(resolve_override("no-such-unit"), SamplingKernel::Scalar);
    }

    #[test]
    fn active_is_stable() {
        assert_eq!(active(), active());
    }
}
