//! Down-sampling: the Pre-processing Engine of HgPCN (§V) and its baselines.
//!
//! An edge point-cloud service must decimate each raw frame (10^5–10^6
//! points) to a fixed PCN input size (e.g. 4096) before inference. The
//! paper identifies this step as the dominant "AI tax" and replaces the
//! memory-intensive farthest-point sampling (FPS) with **Octree-Indexed
//! Sampling (OIS)**. This crate implements, over the instrumented
//! [`hgpcn_memsim::HostMemory`]:
//!
//! * [`fps`] — the common FPS method (Algorithm 1 of Fig. 6), faithfully
//!   spilling and re-reading its intermediate distance array;
//! * [`random`] — random sampling (fast, lossy);
//! * [`reinforce`] — the RS+reinforce baseline of Fig. 12 (RandLA-style
//!   encoder repair after random sampling), as a cost model;
//! * [`ois`] — Octree-Indexed Sampling (Algorithm 2 of Fig. 6): FPS-style
//!   farthest-first traversal executed as Octree-Table lookups and
//!   m-code Hamming comparisons, touching host memory only to read the
//!   points actually sampled;
//! * [`ois::approx_sample`] — the approximate-OIS future-work variant
//!   (§VIII): stop the descent near the leaves and pick a spatially
//!   adjacent substitute;
//! * [`hw`] — the Down-sampling Unit hardware model (Fig. 7): eight
//!   parallel Sampling Modules, bitonic selection, on-chip Octree-Table;
//! * [`quality`] — sampling-quality metrics (coverage radius) used to show
//!   OIS ≈ FPS ≫ RS on information retention;
//! * [`voxelgrid`] — the one-point-per-voxel baseline common in practice
//!   (cannot hit an exact output size, which is why PCNs use FPS).
//!
//! Every sampler returns a [`SampleResult`] carrying the chosen indices
//! (the Sampled-Point-Table) and the [`hgpcn_memsim::OpCounts`] it cost.
//!
//! [`stage`] holds the [`SamplingKernel`] dispatch seam: interchangeable,
//! bit-identical scoreboard scan backends behind the
//! `HGPCN_STAGE_SAMPLING` override.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
pub mod fps;
pub mod hw;
pub mod ois;
pub mod quality;
pub mod random;
pub mod reinforce;
mod result;
pub mod stage;
pub mod voxelgrid;

pub use error::SamplingError;
pub use result::SampleResult;
pub use stage::SamplingKernel;
