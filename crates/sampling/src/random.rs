//! Random sampling (RS): the fast, lossy baseline of Fig. 12.
//!
//! RS picks K indices uniformly without replacement and reads just those
//! points — minimal memory traffic, but the worst information retention
//! ("the accuracy of random sampling is low and cannot be fully trusted",
//! §II-A). [`crate::quality`] quantifies that loss.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hgpcn_memsim::HostMemory;

use crate::{SampleResult, SamplingError};

/// Samples `k` points uniformly without replacement (Floyd's algorithm),
/// reading only the chosen points from host memory.
///
/// The memory's access counters are reset on entry so the returned counts
/// describe exactly this run.
///
/// # Errors
///
/// * [`SamplingError::EmptyCloud`] if the frame is empty;
/// * [`SamplingError::TargetExceedsInput`] if `k` exceeds the frame size.
pub fn sample(mem: &mut HostMemory, k: usize, seed: u64) -> Result<SampleResult, SamplingError> {
    let n = mem.len();
    if n == 0 {
        return Err(SamplingError::EmptyCloud);
    }
    if k > n {
        return Err(SamplingError::TargetExceedsInput {
            target: k,
            available: n,
        });
    }
    let _ = mem.reset_counts();
    let mut rng = StdRng::seed_from_u64(seed);

    // Floyd's sampling: k draws, no retries, uniform without replacement.
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut indices = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.insert(t) { t } else { j };
        if pick != t {
            chosen.insert(pick);
        }
        indices.push(pick);
    }

    for &i in &indices {
        let _ = mem.read_point(i);
    }
    Ok(SampleResult {
        indices,
        counts: mem.counts(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::{Point3, PointCloud};

    fn cloud(n: usize) -> PointCloud {
        (0..n).map(|i| Point3::splat(i as f32)).collect()
    }

    #[test]
    fn produces_valid_unique_sample() {
        let mut mem = HostMemory::from_cloud(&cloud(100));
        let r = sample(&mut mem, 30, 5).unwrap();
        assert_eq!(r.len(), 30);
        assert!(r.is_valid_sample_of(100));
    }

    #[test]
    fn reads_exactly_k_points() {
        let mut mem = HostMemory::from_cloud(&cloud(1000));
        let r = sample(&mut mem, 64, 1).unwrap();
        assert_eq!(r.counts.mem_reads, 64);
        assert_eq!(r.counts.mem_writes, 0);
        assert_eq!(r.counts.memory_accesses(), 64);
    }

    #[test]
    fn k_equals_n_takes_everything() {
        let mut mem = HostMemory::from_cloud(&cloud(10));
        let r = sample(&mut mem, 10, 3).unwrap();
        let mut idx = r.indices.clone();
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut empty = HostMemory::from_points(vec![]);
        assert_eq!(
            sample(&mut empty, 1, 0).unwrap_err(),
            SamplingError::EmptyCloud
        );
        let mut mem = HostMemory::from_cloud(&cloud(5));
        assert!(sample(&mut mem, 6, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = cloud(200);
        let a = sample(&mut HostMemory::from_cloud(&c), 20, 11).unwrap();
        let b = sample(&mut HostMemory::from_cloud(&c), 20, 11).unwrap();
        assert_eq!(a.indices, b.indices);
        let c2 = sample(&mut HostMemory::from_cloud(&c), 20, 12).unwrap();
        assert_ne!(a.indices, c2.indices);
    }
}
