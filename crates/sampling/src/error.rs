use std::error::Error;
use std::fmt;

/// Errors produced by the samplers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SamplingError {
    /// The frame has no points.
    EmptyCloud,
    /// Asked for more samples than the frame contains.
    TargetExceedsInput {
        /// Requested sample count K.
        target: usize,
        /// Points available in the frame.
        available: usize,
    },
    /// The octree passed to OIS does not describe the host-memory frame.
    OctreeMismatch {
        /// Points indexed by the octree.
        octree_points: usize,
        /// Points resident in host memory.
        memory_points: usize,
    },
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::EmptyCloud => write!(f, "cannot sample from an empty frame"),
            SamplingError::TargetExceedsInput { target, available } => {
                write!(
                    f,
                    "sample target {target} exceeds the {available} points available"
                )
            }
            SamplingError::OctreeMismatch {
                octree_points,
                memory_points,
            } => write!(
                f,
                "octree indexes {octree_points} points but host memory holds {memory_points}"
            ),
        }
    }
}

impl Error for SamplingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SamplingError::EmptyCloud,
            SamplingError::TargetExceedsInput {
                target: 5,
                available: 3,
            },
            SamplingError::OctreeMismatch {
                octree_points: 1,
                memory_points: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
