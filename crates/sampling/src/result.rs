use hgpcn_memsim::OpCounts;

/// The outcome of one down-sampling run: the Sampled-Point-Table plus the
/// operations it cost.
///
/// `indices` are addresses into whatever frame the sampler ran over (raw
/// order for FPS/RS, SFC order for OIS — use the octree's permutation to
/// translate). This mirrors the paper's Sampled-Point-Table, which stores
/// the *addresses* of the after-sampled points so the Down-sampling Unit
/// can read them straight from host memory (§V-B, Fig. 5(c)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SampleResult {
    /// Addresses of the sampled points, in pick order.
    pub indices: Vec<usize>,
    /// Operations spent producing the table.
    pub counts: OpCounts,
}

impl SampleResult {
    /// Number of points sampled.
    #[inline]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` if nothing was sampled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Checks the table is a valid sample of a frame of `n` points: every
    /// address in range and no duplicates.
    pub fn is_valid_sample_of(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        self.indices.iter().all(|&i| {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
            true
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_checks() {
        let r = SampleResult {
            indices: vec![0, 2, 1],
            counts: OpCounts::default(),
        };
        assert!(r.is_valid_sample_of(3));
        assert!(!r.is_valid_sample_of(2)); // 2 out of range
        let dup = SampleResult {
            indices: vec![1, 1],
            counts: OpCounts::default(),
        };
        assert!(!dup.is_valid_sample_of(3));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }
}
