//! Sampling-quality metrics.
//!
//! The paper's claim (§VII-C) is that OIS matches FPS's information
//! retention while random sampling "has the highest information loss".
//! The standard proxy for down-sampling quality is the **coverage radius**
//! (fill distance): the largest distance from any original point to its
//! nearest sampled point. Lower is better; FPS greedily minimizes it.

use hgpcn_geometry::{Point3, PointCloud};

/// Coverage radius of `sample_indices` over `cloud`: the maximum, over all
/// original points, of the distance to the nearest sampled point.
///
/// # Panics
///
/// Panics if `sample_indices` is empty or contains an out-of-range index.
pub fn coverage_radius(cloud: &PointCloud, sample_indices: &[usize]) -> f32 {
    assert!(
        !sample_indices.is_empty(),
        "coverage radius needs at least one sample"
    );
    let samples: Vec<Point3> = sample_indices.iter().map(|&i| cloud.point(i)).collect();
    cloud
        .iter()
        .map(|p| {
            samples
                .iter()
                .map(|s| p.distance_sq(*s))
                .fold(f32::INFINITY, f32::min)
        })
        .fold(0.0f32, f32::max)
        .sqrt()
}

/// Mean distance from each original point to its nearest sampled point —
/// a smoother quality proxy than the max-based coverage radius.
///
/// # Panics
///
/// Panics if `sample_indices` is empty or contains an out-of-range index.
pub fn mean_nearest_distance(cloud: &PointCloud, sample_indices: &[usize]) -> f32 {
    assert!(!sample_indices.is_empty(), "needs at least one sample");
    let samples: Vec<Point3> = sample_indices.iter().map(|&i| cloud.point(i)).collect();
    let total: f32 = cloud
        .iter()
        .map(|p| {
            samples
                .iter()
                .map(|s| p.distance_sq(*s))
                .fold(f32::INFINITY, f32::min)
                .sqrt()
        })
        .sum();
    total / cloud.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> PointCloud {
        (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn full_sample_has_zero_radius() {
        let cloud = line(10);
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(coverage_radius(&cloud, &all), 0.0);
        assert_eq!(mean_nearest_distance(&cloud, &all), 0.0);
    }

    #[test]
    fn endpoints_cover_a_line_at_half_length() {
        let cloud = line(11); // 0..10
        let r = coverage_radius(&cloud, &[0, 10]);
        assert_eq!(r, 5.0);
    }

    #[test]
    fn spread_beats_clustered() {
        let cloud = line(100);
        let spread = vec![0, 33, 66, 99];
        let clustered = vec![0, 1, 2, 3];
        assert!(coverage_radius(&cloud, &spread) < coverage_radius(&cloud, &clustered));
        assert!(mean_nearest_distance(&cloud, &spread) < mean_nearest_distance(&cloud, &clustered));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        let _ = coverage_radius(&line(3), &[]);
    }
}
