//! The Down-sampling Unit: OIS in hardware (§V-B, Fig. 7).
//!
//! The FPGA engine holds the Octree-Table in on-chip BRAM and deploys
//! multiple **Sampling Modules** exploiting voxel-level parallelism: at
//! each descent level the (up to eight) children are scored concurrently,
//! one XOR-popcount Hamming evaluation per module, and a bitonic stage
//! selects the maximum. This module models that engine's latency and BRAM
//! footprint; the algorithmic work itself is [`crate::ois`].

use hgpcn_memsim::{DeviceProfile, Latency, OnChipMemory, OpCounts};
use hgpcn_octree::OctreeTable;

/// Hardware configuration of the Down-sampling Unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DownsamplingUnit {
    /// Number of parallel Sampling Modules (the paper uses 8: one per
    /// child octant).
    pub modules: usize,
    /// Width of the voxel-scoreboard scoring array (XOR/compare lanes
    /// evaluated per cycle; a few-hundred-lane compare array is a small
    /// fraction of an Arria 10).
    pub scoring_lanes: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
}

impl DownsamplingUnit {
    /// The paper's prototype configuration: 8 Sampling Modules with a
    /// 256-lane scoring array at 200 MHz.
    pub fn prototype() -> DownsamplingUnit {
        DownsamplingUnit {
            modules: 8,
            scoring_lanes: 256,
            clock_mhz: 200.0,
        }
    }

    /// The device profile of this configuration, derived from the base
    /// FPGA profile with the configured parallelism and clock.
    pub fn device_profile(&self) -> DeviceProfile {
        let mut p = DeviceProfile::hgpcn_downsampling_unit();
        let cycle_ns = 1e3 / self.clock_mhz;
        p.ns_per_lookup = cycle_ns;
        p.ns_per_hamming = cycle_ns;
        p.ns_per_distance = cycle_ns;
        p.parallel_lanes = self.modules as f64;
        p
    }

    /// Modeled latency of running a sampling workload of `counts` on this
    /// unit.
    ///
    /// The descent is inherently serial — one Octree-Table level per cycle
    /// — while the per-level child scoring runs across the parallel
    /// Sampling Modules in a single cycle, and the remaining-count
    /// decrement write-backs (half of the lookup tally) overlap with the
    /// next level's fetch. Sampled-point reads cross the shared-memory
    /// link and overlap with compute (roofline).
    pub fn latency(&self, counts: &OpCounts) -> Latency {
        let cycle_ns = 1e3 / self.clock_mhz;
        let serial_lookups = counts.table_lookups as f64 / 2.0;
        let scoring = counts.hamming_ops as f64 / self.scoring_lanes as f64
            + counts.comparisons as f64 / self.modules as f64;
        let compute_ns = (serial_lookups + scoring) * cycle_ns;
        let profile = self.device_profile();
        let mem_ns = counts.bytes_moved() as f64 * profile.ns_per_byte
            + counts.memory_accesses() as f64 * profile.ns_per_access;
        Latency::from_ns(compute_ns.max(mem_ns) + profile.overhead_ns)
    }

    /// BRAM bits this unit needs: the Octree-Table plus the
    /// Sampled-Point-Table (`k` 32-bit addresses) plus per-module working
    /// registers. This is the Fig. 13 OIS footprint.
    pub fn onchip_bits(&self, table: &OctreeTable, k: usize) -> u64 {
        let spt = (k as u64) * 32;
        let working = (self.modules as u64) * 256;
        table.size_bits() as u64 + spt + working
    }

    /// Whether the unit fits the paper's Arria 10 alongside a reserved
    /// budget for the Inference Engine.
    pub fn fits_arria10(&self, table: &OctreeTable, k: usize, inference_reserve_bits: u64) -> bool {
        let mut bram = OnChipMemory::arria10();
        bram.allocate(inference_reserve_bits).is_ok() && bram.fits(self.onchip_bits(table, k))
    }
}

impl Default for DownsamplingUnit {
    fn default() -> Self {
        DownsamplingUnit::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::{Point3, PointCloud};
    use hgpcn_octree::{Octree, OctreeConfig};

    fn table(n: usize) -> OctreeTable {
        let cloud: PointCloud = (0..n)
            .map(|i| Point3::new((i % 17) as f32, (i % 13) as f32, (i % 11) as f32))
            .collect();
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(6).leaf_capacity(2)).unwrap();
        OctreeTable::from_octree(&tree)
    }

    #[test]
    fn more_modules_is_faster() {
        let counts = OpCounts {
            table_lookups: 10_000,
            hamming_ops: 80_000,
            comparisons: 40_000,
            ..OpCounts::default()
        };
        let one = DownsamplingUnit {
            modules: 1,
            scoring_lanes: 32,
            clock_mhz: 200.0,
        }
        .latency(&counts);
        let eight = DownsamplingUnit::prototype().latency(&counts);
        assert!(eight < one);
    }

    #[test]
    fn higher_clock_is_faster() {
        let counts = OpCounts {
            table_lookups: 10_000,
            hamming_ops: 80_000,
            ..OpCounts::default()
        };
        let slow = DownsamplingUnit {
            modules: 8,
            scoring_lanes: 256,
            clock_mhz: 100.0,
        }
        .latency(&counts);
        let fast = DownsamplingUnit {
            modules: 8,
            scoring_lanes: 256,
            clock_mhz: 400.0,
        }
        .latency(&counts);
        assert!(fast < slow);
    }

    #[test]
    fn onchip_footprint_is_table_dominated() {
        let t = table(5000);
        let unit = DownsamplingUnit::prototype();
        let bits = unit.onchip_bits(&t, 1024);
        assert!(bits >= t.size_bits() as u64);
        assert!(bits < t.size_bits() as u64 + 1024 * 32 + 8 * 256 + 1);
    }

    #[test]
    fn prototype_fits_arria10_with_inference_reserve() {
        let t = table(5000);
        let unit = DownsamplingUnit::prototype();
        // Reserve 40 Mb for the Inference Engine; the OIS footprint must
        // still fit (the paper's single-device argument, §VII-C).
        assert!(unit.fits_arria10(&t, 16384, 40_000_000));
    }
}
