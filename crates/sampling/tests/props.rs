//! Property tests for the samplers.

use proptest::prelude::*;

use hgpcn_geometry::{Point3, PointCloud};
use hgpcn_memsim::HostMemory;
use hgpcn_octree::{Octree, OctreeConfig, OctreeTable};
use hgpcn_sampling::{fps, ois, random, reinforce, voxelgrid};

fn arb_cloud() -> impl Strategy<Value = PointCloud> {
    prop::collection::vec((-30.0f32..30.0, -30.0f32..30.0, -30.0f32..30.0), 2..200).prop_map(
        |pts| {
            pts.into_iter()
                .map(|(x, y, z)| Point3::new(x, y, z))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sampler returns a valid duplicate-free sample of size k.
    #[test]
    fn all_samplers_return_valid_samples(cloud in arb_cloud(), k_frac in 0.0f64..1.0, seed in 0u64..1000) {
        let n = cloud.len();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);

        let mut mem = HostMemory::from_cloud(&cloud);
        let f = fps::sample(&mut mem, k, seed).unwrap();
        prop_assert!(f.is_valid_sample_of(n));
        prop_assert_eq!(f.len(), k);

        let mut mem = HostMemory::from_cloud(&cloud);
        let r = random::sample(&mut mem, k, seed).unwrap();
        prop_assert!(r.is_valid_sample_of(n));
        prop_assert_eq!(r.len(), k);

        let mut mem = HostMemory::from_cloud(&cloud);
        let rf = reinforce::sample(&mut mem, k, seed).unwrap();
        prop_assert_eq!(rf.indices, r.indices, "reinforce must keep RS's picks");
        prop_assert!(rf.counts.macs > 0);
    }

    /// OIS and approximate OIS both produce valid samples with exactly K
    /// host-memory point reads.
    #[test]
    fn ois_variants_valid(cloud in arb_cloud(), k_frac in 0.0f64..1.0, stop in 0u8..6) {
        let n = cloud.len();
        let k = ((n as f64 * k_frac) as usize).clamp(1, n);
        let tree = Octree::build(&cloud, OctreeConfig::new().max_depth(8).leaf_capacity(3)).unwrap();
        let table = OctreeTable::from_octree(&tree);

        let mut mem = HostMemory::from_cloud(tree.points());
        let exact = ois::sample(&tree, &table, &mut mem, k, 7).unwrap();
        prop_assert!(exact.is_valid_sample_of(n));
        prop_assert_eq!(exact.counts.mem_reads, k as u64);

        let mut mem = HostMemory::from_cloud(tree.points());
        let approx = ois::approx_sample(&tree, &table, &mut mem, k, 7, stop).unwrap();
        prop_assert!(approx.is_valid_sample_of(n));
        prop_assert_eq!(approx.len(), k);
    }

    /// Voxel-grid keeps exactly one point per occupied voxel, and the
    /// level_for_target helper never overshoots.
    #[test]
    fn voxelgrid_invariants(cloud in arb_cloud(), level in 0u8..7, target_frac in 0.1f64..1.0) {
        let tree = Octree::build(&cloud, OctreeConfig::new().max_depth(8).leaf_capacity(2)).unwrap();
        let mut mem = HostMemory::from_cloud(tree.points());
        let r = voxelgrid::sample(&tree, &mut mem, level).unwrap();
        prop_assert_eq!(r.len(), voxelgrid::occupied_voxels(&tree, level));
        prop_assert!(r.is_valid_sample_of(cloud.len()));

        let target = ((cloud.len() as f64 * target_frac) as usize).max(1);
        let best = voxelgrid::level_for_target(&tree, target);
        prop_assert!(voxelgrid::occupied_voxels(&tree, best) <= target);
    }

    /// FPS's farthest-first property: each pick (after the seed) attains
    /// the maximum min-distance to the already-picked set.
    #[test]
    fn fps_is_farthest_first(cloud in arb_cloud(), seed in 0u64..100) {
        prop_assume!(cloud.len() >= 4);
        let k = 4;
        let mut mem = HostMemory::from_cloud(&cloud);
        let r = fps::sample(&mut mem, k, seed).unwrap();
        for pick in 1..k {
            let picked = &r.indices[..pick];
            let min_d = |i: usize| {
                picked
                    .iter()
                    .map(|&j| cloud.point(i).distance_sq(cloud.point(j)))
                    .fold(f32::INFINITY, f32::min)
            };
            let best = (0..cloud.len())
                .filter(|i| !picked.contains(i))
                .map(min_d)
                .fold(0.0f32, f32::max);
            prop_assert_eq!(min_d(r.indices[pick]), best, "pick {}", pick);
        }
    }
}
