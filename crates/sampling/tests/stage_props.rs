//! Sampling-backend equivalence: every [`SamplingKernel`] backend must
//! pick **identical center indices in identical order** — and charge
//! identical modeled operation counts — as the scalar anchor, across
//! ragged cloud sizes, every `k` from 0 to n, duplicate and coincident
//! points, and collapsed (single-voxel) geometry.
//!
//! NaN coordinates are carved out deliberately: `Octree::build` rejects
//! non-finite clouds (`OctreeError::InvalidGeometry`) before any
//! sampling backend can run, so no NaN ever reaches the OIS scoreboard
//! — the same upstream-validation carve-out `kernel_props.rs` applies
//! to non-finite weights.

use proptest::prelude::*;

use hgpcn_geometry::{Point3, PointCloud};
use hgpcn_memsim::HostMemory;
use hgpcn_octree::{Octree, OctreeConfig, OctreeTable};
use hgpcn_sampling::{ois, SamplingKernel};

/// Clouds with deliberate duplicates: a quantization knob snaps a slice
/// of the coordinates to a coarse grid so exact coincident points (the
/// OIS scoreboard's tie-handling hot spot) occur with high probability.
fn arb_cloud() -> impl Strategy<Value = PointCloud> {
    (
        prop::collection::vec((-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0), 1..150),
        0u8..3,
    )
        .prop_map(|(pts, quantize)| {
            pts.into_iter()
                .enumerate()
                .map(|(i, (x, y, z))| {
                    if quantize > 0 && i % 2 == 0 {
                        // Snap to a 4-unit grid: many exact duplicates.
                        Point3::new(
                            (x / 4.0).round() * 4.0,
                            (y / 4.0).round() * 4.0,
                            (z / 4.0).round() * 4.0,
                        )
                    } else {
                        Point3::new(x, y, z)
                    }
                })
                .collect()
        })
}

fn backends_under_test() -> Vec<SamplingKernel> {
    SamplingKernel::all()
        .iter()
        .copied()
        .filter(|k| *k != SamplingKernel::Scalar && k.is_supported())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical picks, identical order, identical modeled counts on
    /// every backend, for every target size including 0 and n.
    #[test]
    fn backends_pick_identical_centers(
        cloud in arb_cloud(),
        k_frac in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let n = cloud.len();
        let k = ((n as f64 * k_frac).round() as usize).min(n);
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(8).leaf_capacity(3)).unwrap();
        let table = OctreeTable::from_octree(&tree);

        let mut mem = HostMemory::from_cloud(tree.points());
        let want = ois::sample_with(&tree, &table, &mut mem, k, seed, SamplingKernel::Scalar)
            .unwrap();
        prop_assert!(want.is_valid_sample_of(n));

        for backend in backends_under_test() {
            let mut mem = HostMemory::from_cloud(tree.points());
            let got = ois::sample_with(&tree, &table, &mut mem, k, seed, backend).unwrap();
            prop_assert_eq!(&got.indices, &want.indices, "{}: picked centers", backend.name());
            prop_assert_eq!(got.counts, want.counts, "{}: modeled counts", backend.name());
        }
    }

    /// A fully coincident cloud (every point identical) exercises the
    /// all-ties path: backends must still agree exactly.
    #[test]
    fn backends_agree_on_coincident_clouds(n in 1usize..40, seed in 0u64..100) {
        let cloud: PointCloud = (0..n).map(|_| Point3::splat(1.5)).collect();
        let tree =
            Octree::build(&cloud, OctreeConfig::new().max_depth(6).leaf_capacity(2)).unwrap();
        let table = OctreeTable::from_octree(&tree);
        let k = (n / 2).max(1);

        let mut mem = HostMemory::from_cloud(tree.points());
        let want = ois::sample_with(&tree, &table, &mut mem, k, seed, SamplingKernel::Scalar)
            .unwrap();
        for backend in backends_under_test() {
            let mut mem = HostMemory::from_cloud(tree.points());
            let got = ois::sample_with(&tree, &table, &mut mem, k, seed, backend).unwrap();
            prop_assert_eq!(&got.indices, &want.indices, "{}", backend.name());
            prop_assert_eq!(got.counts, want.counts, "{}", backend.name());
        }
    }
}
