//! The preprocessing-reuse dispatch seam and the stream-scoped context it
//! selects.
//!
//! PR 8 made the preprocessing *stages* swappable kernels; this seam makes
//! the preprocessing *state policy* swappable the same way. With reuse
//! [`PreprocReuse::On`], the runtime gives every open stream a
//! [`StreamPreprocContext`] and runs frames through
//! [`PreprocessingEngine::run_with_context`]: scratch buffers (octree
//! arena, Morton/sort workspace, sampling scoreboard, host-memory image)
//! persist across the stream's frames, and consecutive frames sharing a
//! root AABB take the temporal-coherence warm path — an adaptive merge of
//! the previous frame's near-sorted order instead of a full SFC sort,
//! priced as a §V-A delta pass. With [`PreprocReuse::Off`] (the anchor),
//! preprocessing stays stateless-per-frame, exactly as before this seam
//! existed.
//!
//! Either way the outputs are **bit-identical** — the warm path is proven
//! equal to a cold rebuild by construction and by proptest — so, like the
//! stage kernels, this knob trades speed and modeled cost, never results.
//!
//! Selection policy matches the other `HGPCN_*` seams: decided once per
//! process by [`active`] from the `HGPCN_PREPROC_REUSE` environment
//! variable (`auto`/empty selects [`fastest_supported`], i.e. `on`);
//! unrecognized values **degrade to the stateless anchor** with a warning
//! instead of refusing to serve. A `RuntimeConfig` pin beats the
//! environment. The active identity is surfaced in
//! `RuntimeReport`/`StreamReport` and the `hgpcn_preproc_reuse_info`
//! metric — a forced fall-back is visible, never silent.
//!
//! [`PreprocessingEngine::run_with_context`]: crate::PreprocessingEngine::run_with_context

use std::sync::OnceLock;

use hgpcn_memsim::HostMemory;
use hgpcn_octree::OctreeScratch;
use hgpcn_sampling::ois::OisScratch;

/// The preprocessing state policy: stateless per frame, or stream-scoped
/// with temporal-coherence reuse. Both produce bit-identical outputs; see
/// the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PreprocReuse {
    /// The anchor: stateless preprocessing, a cold octree build and fresh
    /// working memory for every frame.
    Off,
    /// Stream-scoped contexts: per-stream scratch reuse plus the warm
    /// adaptive-merge path when consecutive frames share a root grid.
    On,
}

impl PreprocReuse {
    /// Stable lower-case name, as reported in `RuntimeReport` and
    /// `BENCH_runtime.json` and accepted back by
    /// [`PreprocReuse::from_name`].
    pub fn name(&self) -> &'static str {
        match self {
            PreprocReuse::Off => "off",
            PreprocReuse::On => "on",
        }
    }

    /// Parses a policy name. Returns `None` for unknown names.
    ///
    /// ```
    /// use hgpcn_system::PreprocReuse;
    ///
    /// assert_eq!(PreprocReuse::from_name("on"), Some(PreprocReuse::On));
    /// assert_eq!(PreprocReuse::from_name("warm"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<PreprocReuse> {
        match name {
            "off" => Some(PreprocReuse::Off),
            "on" => Some(PreprocReuse::On),
            _ => None,
        }
    }

    /// Whether this build can run the policy — always `true` (the warm
    /// path is portable safe Rust); kept for congruence with the kernel
    /// seams.
    pub fn is_supported(&self) -> bool {
        true
    }

    /// Every policy compiled into this build, fastest-last.
    pub fn all() -> &'static [PreprocReuse] {
        &[PreprocReuse::Off, PreprocReuse::On]
    }
}

/// The fastest supported policy: [`PreprocReuse::On`] (always available).
pub fn fastest_supported() -> PreprocReuse {
    PreprocReuse::On
}

/// Resolves an override request (the `HGPCN_PREPROC_REUSE` value) to a
/// runnable policy. Empty / `auto` selects [`fastest_supported`]; an
/// unrecognized name **degrades to the stateless anchor** with a warning
/// on stderr, so a forced configuration still serves (policies are
/// bit-identical — degrading can never change results).
pub fn resolve_override(request: &str) -> PreprocReuse {
    match request {
        "" | "auto" => fastest_supported(),
        other => PreprocReuse::from_name(other).unwrap_or_else(|| {
            eprintln!(
                "HGPCN_PREPROC_REUSE: unknown policy {other:?} \
                 (expected auto | off | on); degrading to the stateless anchor"
            );
            PreprocReuse::Off
        }),
    }
}

static ACTIVE: OnceLock<PreprocReuse> = OnceLock::new();

/// The process-wide reuse policy. Decided once, on first use: the
/// `HGPCN_PREPROC_REUSE` override if set, otherwise [`fastest_supported`].
pub fn active() -> PreprocReuse {
    *ACTIVE.get_or_init(|| {
        let request = std::env::var("HGPCN_PREPROC_REUSE").unwrap_or_default();
        resolve_override(&request)
    })
}

/// Stream-scoped preprocessing state: everything one stream's frames share
/// across the preprocessing phase.
///
/// Owned by the runtime, one per open stream (following the stream's shard
/// pinning, reclaimed on stream close). Carries the octree build scratch
/// with its temporal-coherence cache, the OIS sampling scratch, a reusable
/// host-memory image, and the stream's warm-hit/miss tally. The context is
/// a pure accelerator: results are bit-identical whether frames run
/// through a fresh context, a warm one, or none at all.
#[derive(Clone, Debug)]
pub struct StreamPreprocContext {
    pub(crate) octree: OctreeScratch,
    pub(crate) ois: OisScratch,
    pub(crate) mem: HostMemory,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl StreamPreprocContext {
    /// Creates an empty context (cold cache, no capacity yet).
    pub fn new() -> StreamPreprocContext {
        StreamPreprocContext {
            octree: OctreeScratch::new(),
            ois: OisScratch::new(),
            mem: HostMemory::from_points(Vec::new()),
            hits: 0,
            misses: 0,
        }
    }

    /// Frames of this stream that took the temporal-coherence warm path.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Frames that rebuilt cold (first frame, AABB drift, or config
    /// change). A stream whose hit count stays at zero while frames flow
    /// is the ≈1.0-warm-ratio diagnostic: reuse is on but never engaging.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops the warm cache (e.g. on a stream discontinuity) while
    /// keeping buffer capacity; the next frame rebuilds cold.
    pub fn invalidate(&mut self) {
        self.octree.invalidate();
    }

    /// Reclaims the heap buffers of a [`crate::PreprocessOutput`] this
    /// context produced, once the caller has extracted what it needs.
    /// Purely a capacity optimization; skipping it never affects results.
    pub fn recycle(&mut self, output: crate::PreprocessOutput) {
        self.octree.recycle(output.octree);
    }
}

impl Default for StreamPreprocContext {
    fn default() -> StreamPreprocContext {
        StreamPreprocContext::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in PreprocReuse::all() {
            assert_eq!(PreprocReuse::from_name(p.name()), Some(*p));
            assert!(p.is_supported());
        }
        assert_eq!(PreprocReuse::from_name("warm"), None);
        assert_eq!(PreprocReuse::from_name("auto"), None);
    }

    #[test]
    fn override_resolution_degrades_gracefully() {
        assert_eq!(resolve_override(""), fastest_supported());
        assert_eq!(resolve_override("auto"), fastest_supported());
        assert_eq!(resolve_override("off"), PreprocReuse::Off);
        assert_eq!(resolve_override("on"), PreprocReuse::On);
        assert_eq!(resolve_override("bogus"), PreprocReuse::Off);
    }

    #[test]
    fn active_is_stable() {
        assert_eq!(active(), active());
    }
}
