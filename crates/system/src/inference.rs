use hgpcn_dla::{LayerRun, SystolicArray};
use hgpcn_gather::dsu::{DataStructuringUnit, StageCycles};
use hgpcn_gather::veg::VegConfig;
use hgpcn_geometry::PointCloud;
use hgpcn_memsim::{Latency, OpCounts};
use hgpcn_pcn::{CenterPolicy, Gatherer, InferenceOutput, PointNet, Precision, StageBackends};

use crate::{SystemError, VegGatherer};

/// The Inference Engine (§VI): the VEG-based Data Structuring Unit feeding
/// a systolic-array Feature Computation Unit.
#[derive(Clone, Debug)]
pub struct InferenceEngine {
    /// The DSU hardware configuration.
    pub dsu: DataStructuringUnit,
    /// The FCU (shared with the accelerator baselines).
    pub array: SystolicArray,
    /// VEG behaviour.
    pub veg: VegConfig,
}

/// Modeled outcome of one inference on the engine.
#[derive(Debug)]
pub struct InferenceReport {
    /// The network output (logits) and executed MACs.
    pub output: InferenceOutput,
    /// Data-structuring latency (DSU pipeline).
    pub ds_latency: Latency,
    /// Feature-computation latency (systolic array).
    pub fc_latency: Latency,
    /// Data-structuring operations.
    pub ds_counts: OpCounts,
    /// Feature-computation operations.
    pub fc_counts: OpCounts,
    /// Aggregate DSU stage cycles (the Fig. 16 breakdown).
    pub stage_cycles: StageCycles,
    /// Number of neighbor gathers performed (central points across all
    /// hierarchy levels).
    pub gathers: usize,
    /// Final-shell candidates sorted across all gathers (the Fig. 15
    /// workload numerator; a traditional sorter processes the whole pool).
    pub candidates_sorted: u64,
    /// Points gathered for free from inner shells across all gathers.
    pub gathered_free: u64,
}

impl InferenceReport {
    /// Total inference latency: data structuring then feature computation.
    pub fn total_latency(&self) -> Latency {
        self.ds_latency + self.fc_latency
    }

    /// Total operations of the phase.
    pub fn total_counts(&self) -> OpCounts {
        self.ds_counts + self.fc_counts
    }
}

impl InferenceEngine {
    /// The paper's prototype: 8-walker DSU and a 16×16 array at 200 MHz.
    pub fn prototype() -> InferenceEngine {
        InferenceEngine {
            dsu: DataStructuringUnit::prototype(),
            array: SystolicArray::paper_16x16(),
            veg: VegConfig::default(),
        }
    }

    /// Runs `net` over the down-sampled `input`, gathering with VEG and
    /// pricing data structuring on the DSU pipeline and feature
    /// computation on the systolic array. Centers are picked randomly
    /// (seeded), matching the paper's Mesorasi-fair methodology (§VII-D).
    ///
    /// # Errors
    ///
    /// Propagates inference failures as [`SystemError::Pcn`].
    pub fn run(
        &self,
        input: &PointCloud,
        net: &PointNet,
        seed: u64,
    ) -> Result<InferenceReport, SystemError> {
        self.run_with_precision(input, net, seed, Precision::F32)
    }

    /// [`InferenceEngine::run`] at a chosen arithmetic precision — the
    /// serving-tier knob. The DLA-style cost models are
    /// precision-independent (the systolic array executes the same MAC
    /// schedule either way), so modeled latencies and op counts are
    /// identical across tiers; only the logits (and host speed) change.
    ///
    /// # Errors
    ///
    /// As [`InferenceEngine::run`], plus
    /// [`hgpcn_pcn::PcnError::NotQuantized`] (as [`SystemError::Pcn`])
    /// when int8 is requested on an unquantized network.
    pub fn run_with_precision(
        &self,
        input: &PointCloud,
        net: &PointNet,
        seed: u64,
        precision: Precision,
    ) -> Result<InferenceReport, SystemError> {
        self.run_with_precision_using(input, net, seed, precision, net.stage_backends())
    }

    /// [`InferenceEngine::run_with_precision`] with an explicit
    /// stage-backend selection: the gather backend is pinned into the
    /// frame's VEG gatherer and the interpolate backend into the forward
    /// pass, overriding both the process-wide and the network-pinned
    /// choices. Bit-identity across backends makes this a host-speed
    /// knob only — the runtime uses it to honor a per-run
    /// `StageBackends` selection.
    ///
    /// # Errors
    ///
    /// As [`InferenceEngine::run_with_precision`].
    pub fn run_with_precision_using(
        &self,
        input: &PointCloud,
        net: &PointNet,
        seed: u64,
        precision: Precision,
        stages: StageBackends,
    ) -> Result<InferenceReport, SystemError> {
        let mut gatherer = VegGatherer::new(self.veg).with_kernel(stages.gather);
        let output = net.infer_with_precision_using(
            input,
            &mut gatherer,
            CenterPolicy::Random { seed },
            precision,
            stages,
        )?;
        Ok(self.price(&gatherer, output, net))
    }

    /// Runs `net` over a micro-batch of down-sampled frames in one SoA
    /// pass ([`PointNet::infer_batch`]): every MLP layer traverses its
    /// weights once for the whole batch. Each frame keeps its own VEG
    /// gatherer seeded by its own `seeds[i]`, so per-frame outputs,
    /// gather costs and modeled latencies are **bit-identical** to
    /// per-frame [`InferenceEngine::run`] calls — batching changes host
    /// throughput, never results.
    ///
    /// # Errors
    ///
    /// Propagates the first frame's failure as [`SystemError::Pcn`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `seeds` have different lengths.
    pub fn run_batch(
        &self,
        inputs: &[&PointCloud],
        net: &PointNet,
        seeds: &[u64],
    ) -> Result<Vec<InferenceReport>, SystemError> {
        self.run_batch_with_precision(inputs, net, seeds, Precision::F32)
    }

    /// [`InferenceEngine::run_batch`] at a chosen arithmetic precision.
    /// The whole micro-batch runs at one tier — a runtime serving a
    /// mixed-precision fleet partitions its batches by precision first
    /// (per-frame results are unaffected: both tiers are bit-identical
    /// between serial and batched execution).
    ///
    /// # Errors
    ///
    /// As [`InferenceEngine::run_batch`], plus
    /// [`hgpcn_pcn::PcnError::NotQuantized`] (as [`SystemError::Pcn`])
    /// when int8 is requested on an unquantized network.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `seeds` have different lengths.
    pub fn run_batch_with_precision(
        &self,
        inputs: &[&PointCloud],
        net: &PointNet,
        seeds: &[u64],
        precision: Precision,
    ) -> Result<Vec<InferenceReport>, SystemError> {
        self.run_batch_with_precision_using(inputs, net, seeds, precision, net.stage_backends())
    }

    /// [`InferenceEngine::run_batch_with_precision`] with an explicit
    /// stage-backend selection — the batched counterpart of
    /// [`InferenceEngine::run_with_precision_using`], carrying the same
    /// bit-identity contract.
    ///
    /// # Errors
    ///
    /// As [`InferenceEngine::run_batch_with_precision`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `seeds` have different lengths.
    pub fn run_batch_with_precision_using(
        &self,
        inputs: &[&PointCloud],
        net: &PointNet,
        seeds: &[u64],
        precision: Precision,
        stages: StageBackends,
    ) -> Result<Vec<InferenceReport>, SystemError> {
        assert_eq!(inputs.len(), seeds.len(), "one seed per frame");
        let mut gatherers: Vec<VegGatherer> = inputs
            .iter()
            .map(|_| VegGatherer::new(self.veg).with_kernel(stages.gather))
            .collect();
        let outputs = {
            let mut grefs: Vec<&mut dyn Gatherer> = gatherers
                .iter_mut()
                .map(|g| g as &mut dyn Gatherer)
                .collect();
            let policies: Vec<CenterPolicy> = seeds
                .iter()
                .map(|&seed| CenterPolicy::Random { seed })
                .collect();
            net.infer_batch_with_precision_using(inputs, &mut grefs, &policies, precision, stages)?
        };
        Ok(outputs
            .into_iter()
            .zip(&gatherers)
            .map(|(output, gatherer)| self.price(gatherer, output, net))
            .collect())
    }

    /// Prices one frame's data structuring on the DSU pipeline and its
    /// feature computation on the systolic array.
    fn price(
        &self,
        gatherer: &VegGatherer,
        output: hgpcn_pcn::InferenceOutput,
        net: &PointNet,
    ) -> InferenceReport {
        // DSU pipeline: steady-state drain at each gather's bottleneck
        // stage, plus one pipeline fill.
        let mut agg = StageCycles::default();
        let mut drain = 0u64;
        let mut fill = 0u64;
        let mut candidates_sorted = 0u64;
        let mut gathered_free = 0u64;
        for r in gatherer.results() {
            let c = self.dsu.stage_cycles(r, r.neighbors.len());
            if fill == 0 {
                fill = c.total();
            }
            drain += c.bottleneck();
            agg = agg + c;
            candidates_sorted += r.stats.candidates_sorted as u64;
            gathered_free += r.stats.gathered_free as u64;
        }
        let gathers = gatherer.results().len();
        let ds_latency = Latency::from_ns((drain + fill) as f64 * self.dsu.cycle_ns());
        let ds_counts = Gatherer::counts(gatherer);

        // FCU: price the configured workload on the systolic array.
        let mut fc = LayerRun::default();
        for w in net.config().workload() {
            let run = self.array.mlp(&w.mlp, w.points);
            fc.cycles += run.cycles;
            fc.counts += run.counts;
        }
        let fc_latency = self.array.latency(&fc);

        InferenceReport {
            output,
            ds_latency,
            fc_latency,
            ds_counts,
            fc_counts: fc.counts,
            stage_cycles: agg,
            gathers,
            candidates_sorted,
            gathered_free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::Point3;
    use hgpcn_pcn::PointNetConfig;

    fn input(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract(),
                    (f * 0.414).fract(),
                    (f * 0.732).fract(),
                )
            })
            .collect()
    }

    #[test]
    fn runs_classification_and_prices_both_steps() {
        let engine = InferenceEngine::prototype();
        let net = PointNet::new(PointNetConfig::classification(), 1);
        let report = engine.run(&input(1024), &net, 5).unwrap();
        assert_eq!(report.output.logits.cols(), 40);
        assert!(report.ds_latency.ns() > 0.0);
        assert!(report.fc_latency.ns() > 0.0);
        assert!(report.stage_cycles.total() > 0);
        assert!(report.total_latency() > report.fc_latency);
    }

    #[test]
    fn fc_dominates_small_inputs() {
        // The paper's 1.3x-vs-PointACC floor exists because small tasks are
        // FCU-bound; our engine must reproduce that balance.
        let engine = InferenceEngine::prototype();
        let net = PointNet::new(PointNetConfig::classification(), 1);
        let report = engine.run(&input(1024), &net, 5).unwrap();
        assert!(report.fc_latency > report.ds_latency);
    }

    #[test]
    fn run_batch_is_bit_identical_to_per_frame_runs() {
        let engine = InferenceEngine::prototype();
        let net = PointNet::new(PointNetConfig::classification(), 1);
        let frames = [input(1024), input(1100), input(1050)];
        let seeds = [5u64, 6, 7];
        let refs: Vec<&PointCloud> = frames.iter().collect();
        let batched = engine.run_batch(&refs, &net, &seeds).unwrap();
        assert_eq!(batched.len(), 3);
        for ((frame, &seed), b) in frames.iter().zip(&seeds).zip(&batched) {
            let serial = engine.run(frame, &net, seed).unwrap();
            assert_eq!(b.output.logits, serial.output.logits);
            assert_eq!(b.output.macs, serial.output.macs);
            assert_eq!(b.ds_latency, serial.ds_latency);
            assert_eq!(b.fc_latency, serial.fc_latency);
            assert_eq!(b.candidates_sorted, serial.candidates_sorted);
        }
    }

    #[test]
    fn propagates_small_input_error() {
        let engine = InferenceEngine::prototype();
        let net = PointNet::new(PointNetConfig::classification(), 1);
        assert!(matches!(
            engine.run(&input(64), &net, 5),
            Err(SystemError::Pcn(_))
        ));
    }
}
