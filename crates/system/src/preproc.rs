use hgpcn_geometry::PointCloud;
use hgpcn_memsim::{DeviceProfile, HostMemory, Latency, OpCounts};
use hgpcn_octree::{BuildStats, Octree, OctreeConfig, OctreeTable};
use hgpcn_sampling::hw::DownsamplingUnit;
use hgpcn_sampling::{ois, SamplingKernel};

use crate::SystemError;

/// The Pre-processing Engine (§V): Octree-build Unit on the CPU plus the
/// Down-sampling Unit on the FPGA.
#[derive(Clone, Debug)]
pub struct PreprocessingEngine {
    /// Octree construction parameters.
    pub octree_config: OctreeConfig,
    /// The FPGA Down-sampling Unit configuration.
    pub unit: DownsamplingUnit,
    /// The host CPU profile (prices the Octree-build Unit).
    pub cpu: DeviceProfile,
}

/// Everything the Pre-processing Engine produces for one frame.
#[derive(Debug)]
pub struct PreprocessOutput {
    /// The octree over the frame (reused by the Inference Engine's VEG).
    pub octree: Octree,
    /// The Octree-Table resident in FPGA BRAM.
    pub table: OctreeTable,
    /// The down-sampled frame (the PCN input).
    pub sampled: PointCloud,
    /// SFC addresses of the sampled points (the Sampled-Point-Table).
    pub sampled_sfc: Vec<usize>,
    /// Operations of the CPU build + reorganization pass.
    pub build_counts: OpCounts,
    /// Operations of the FPGA down-sampling pass.
    pub sample_counts: OpCounts,
    /// Modeled latency of the CPU build.
    pub build_latency: Latency,
    /// Modeled latency of the MMIO Octree-Table transfer.
    pub transfer_latency: Latency,
    /// Modeled latency of the FPGA down-sampling.
    pub sample_latency: Latency,
}

impl PreprocessOutput {
    /// Total pre-processing latency (build → transfer → sample).
    pub fn total_latency(&self) -> Latency {
        self.build_latency + self.transfer_latency + self.sample_latency
    }

    /// Total operations of the phase.
    pub fn total_counts(&self) -> OpCounts {
        self.build_counts + self.sample_counts
    }

    /// Fraction of the phase spent building the octree — the Fig. 11
    /// overhead metric (0.25–0.8 in the paper when everything is on CPU).
    pub fn build_fraction(&self) -> f64 {
        self.build_latency.ns() / self.total_latency().ns()
    }
}

/// Converts the octree builder's tally into the common operation currency,
/// priced as the paper's **single-pass** construction (§V-A): one point
/// read and one reorganized write per point, a bit-interleaved m-code
/// computation (two arithmetic ops per point), one amortized
/// bucket-insertion step per point, and one table write per node created.
///
/// [`BuildStats`] still records what the host implementation actually did
/// (including its SFC sort comparisons); this function deliberately prices
/// the construction the way the paper's Octree-build Unit performs it —
/// a radix-style single pass with no comparison sort.
pub fn build_counts(stats: &BuildStats, _depth: u8) -> OpCounts {
    OpCounts {
        mem_reads: stats.point_reads as u64,
        mem_writes: stats.point_writes as u64,
        bytes_read: stats.point_reads as u64 * 12,
        bytes_written: stats.point_writes as u64 * 12,
        // Encode + bucket arithmetic per point (cache-friendly appends,
        // not pointer chases), plus one table write per node.
        comparisons: stats.code_computations as u64 * 3,
        table_lookups: stats.nodes_created as u64,
        ..OpCounts::default()
    }
}

impl PreprocessingEngine {
    /// The paper's prototype: depth-10 octrees at hardware-table
    /// granularity (leaves of up to 24 points — the Octree-Table for a
    /// 10^6-point frame then costs ~10 Mb of BRAM, matching §VII-C),
    /// 8 Sampling Modules at 200 MHz, Xeon W-2255 host.
    pub fn prototype() -> PreprocessingEngine {
        PreprocessingEngine {
            octree_config: OctreeConfig::new().max_depth(10).leaf_capacity(24),
            unit: DownsamplingUnit::prototype(),
            cpu: DeviceProfile::xeon_w2255(),
        }
    }

    /// Runs the engine on one raw frame, down-sampling it to `target`
    /// points with OIS in the FPGA Down-sampling Unit.
    ///
    /// # Errors
    ///
    /// Propagates octree and sampling failures.
    pub fn run(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
    ) -> Result<PreprocessOutput, SystemError> {
        self.run_inner(frame, target, seed, None, hgpcn_sampling::stage::active())
    }

    /// [`PreprocessingEngine::run`] with an explicit scoreboard-scan
    /// backend instead of the process-wide choice. All backends pick
    /// bit-identical samples with identical modeled counts, so this is
    /// a host-speed knob only — the runtime uses it to honor a per-run
    /// `StageBackends` selection.
    ///
    /// # Errors
    ///
    /// As [`PreprocessingEngine::run`].
    pub fn run_using(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
        sampling: SamplingKernel,
    ) -> Result<PreprocessOutput, SystemError> {
        self.run_inner(frame, target, seed, None, sampling)
    }

    /// Runs OIS entirely in software on the host CPU (the "OIS-on-CPU"
    /// configuration of Figs. 10–12).
    ///
    /// # Errors
    ///
    /// Propagates octree and sampling failures.
    pub fn run_on_cpu(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
    ) -> Result<PreprocessOutput, SystemError> {
        self.run_inner(
            frame,
            target,
            seed,
            Some(self.cpu),
            hgpcn_sampling::stage::active(),
        )
    }

    fn run_inner(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
        sample_device: Option<DeviceProfile>,
        sampling: SamplingKernel,
    ) -> Result<PreprocessOutput, SystemError> {
        // CPU: single-pass octree build + SFC reorganization.
        let octree = Octree::build(frame, self.octree_config)?;
        let stats = octree.build_stats();
        let b_counts = build_counts(&stats, octree.depth());
        let build_latency = self.cpu.latency(&b_counts);

        // MMIO: ship the Octree-Table to the FPGA (skipped on-CPU).
        let table = OctreeTable::from_octree(&octree);
        let transfer_latency = match sample_device {
            Some(_) => Latency::ZERO,
            None => self
                .unit
                .device_profile()
                .transfer(table.size_bits() as u64 / 8),
        };

        // Down-sampling via OIS.
        let mut mem = HostMemory::from_cloud(octree.points());
        let result = ois::sample_with(&octree, &table, &mut mem, target, seed, sampling)?;
        let sample_latency = match sample_device {
            Some(dev) => dev.latency(&result.counts),
            None => self.unit.latency(&result.counts),
        };

        let sampled = octree.points().gather(&result.indices);
        Ok(PreprocessOutput {
            table,
            sampled,
            sampled_sfc: result.indices,
            build_counts: b_counts,
            sample_counts: result.counts,
            build_latency,
            transfer_latency,
            sample_latency,
            octree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::Point3;

    fn frame(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract() * 8.0,
                    (f * 0.414).fract() * 8.0,
                    (f * 0.732).fract() * 8.0,
                )
            })
            .collect()
    }

    #[test]
    fn produces_target_sized_sample() {
        let engine = PreprocessingEngine::prototype();
        let out = engine.run(&frame(5000), 512, 3).unwrap();
        assert_eq!(out.sampled.len(), 512);
        assert_eq!(out.sampled_sfc.len(), 512);
        assert!(out.total_latency().ns() > 0.0);
    }

    #[test]
    fn hardware_sampling_beats_cpu_sampling() {
        // The Fig. 12 claim: the FPGA Down-sampling Unit accelerates the
        // sampling step over its CPU implementation.
        let engine = PreprocessingEngine::prototype();
        let hw = engine.run(&frame(20_000), 1024, 3).unwrap();
        let sw = engine.run_on_cpu(&frame(20_000), 1024, 3).unwrap();
        assert_eq!(hw.sampled_sfc, sw.sampled_sfc, "same algorithm, same picks");
        assert!(hw.sample_latency < sw.sample_latency);
    }

    #[test]
    fn build_dominates_ois_on_cpu() {
        // Fig. 11: octree build is 0.25-0.8 of the software OIS latency.
        let engine = PreprocessingEngine::prototype();
        let out = engine.run_on_cpu(&frame(50_000), 1024, 3).unwrap();
        let frac = out.build_fraction();
        assert!(frac > 0.25, "build fraction {frac} too low");
    }

    #[test]
    fn sampling_reads_exactly_target_points() {
        let engine = PreprocessingEngine::prototype();
        let out = engine.run(&frame(8000), 256, 1).unwrap();
        assert_eq!(out.sample_counts.mem_reads, 256);
    }

    #[test]
    fn propagates_octree_errors() {
        let engine = PreprocessingEngine::prototype();
        assert!(matches!(
            engine.run(&PointCloud::new(), 10, 0),
            Err(SystemError::Octree(_))
        ));
    }
}
