use hgpcn_geometry::PointCloud;
use hgpcn_memsim::{DeviceProfile, HostMemory, Latency, OpCounts};
use hgpcn_octree::{BuildStats, Octree, OctreeConfig, OctreeTable};
use hgpcn_sampling::hw::DownsamplingUnit;
use hgpcn_sampling::{ois, SamplingKernel};

use crate::{StreamPreprocContext, SystemError};

/// The Pre-processing Engine (§V): Octree-build Unit on the CPU plus the
/// Down-sampling Unit on the FPGA.
#[derive(Clone, Debug)]
pub struct PreprocessingEngine {
    /// Octree construction parameters.
    pub octree_config: OctreeConfig,
    /// The FPGA Down-sampling Unit configuration.
    pub unit: DownsamplingUnit,
    /// The host CPU profile (prices the Octree-build Unit).
    pub cpu: DeviceProfile,
}

/// Everything the Pre-processing Engine produces for one frame.
#[derive(Debug)]
pub struct PreprocessOutput {
    /// The octree over the frame (reused by the Inference Engine's VEG).
    pub octree: Octree,
    /// The Octree-Table resident in FPGA BRAM.
    pub table: OctreeTable,
    /// The down-sampled frame (the PCN input).
    pub sampled: PointCloud,
    /// SFC addresses of the sampled points (the Sampled-Point-Table).
    pub sampled_sfc: Vec<usize>,
    /// Operations of the CPU build + reorganization pass.
    pub build_counts: OpCounts,
    /// Operations of the FPGA down-sampling pass.
    pub sample_counts: OpCounts,
    /// Modeled latency of the CPU build.
    pub build_latency: Latency,
    /// Modeled latency of the MMIO Octree-Table transfer.
    pub transfer_latency: Latency,
    /// Modeled latency of the FPGA down-sampling.
    pub sample_latency: Latency,
    /// `true` when the build took the temporal-coherence warm path of a
    /// stream-scoped context ([`PreprocessingEngine::run_with_context`]);
    /// always `false` on the stateless entry points. Results are
    /// bit-identical either way — this flag records which cost model
    /// priced `build_counts`/`build_latency`.
    pub reused: bool,
}

impl PreprocessOutput {
    /// Total pre-processing latency (build → transfer → sample).
    pub fn total_latency(&self) -> Latency {
        self.build_latency + self.transfer_latency + self.sample_latency
    }

    /// Total operations of the phase.
    pub fn total_counts(&self) -> OpCounts {
        self.build_counts + self.sample_counts
    }

    /// Fraction of the phase spent building the octree — the Fig. 11
    /// overhead metric (0.25–0.8 in the paper when everything is on CPU).
    pub fn build_fraction(&self) -> f64 {
        self.build_latency.ns() / self.total_latency().ns()
    }
}

/// Converts the octree builder's tally into the common operation currency,
/// priced as the paper's **single-pass** construction (§V-A): one point
/// read and one reorganized write per point, a bit-interleaved m-code
/// computation (two arithmetic ops per point), one amortized
/// bucket-insertion step per point, and one table write per node created.
///
/// [`BuildStats`] still records what the host implementation actually did
/// (including its SFC sort comparisons); this function deliberately prices
/// the construction the way the paper's Octree-build Unit performs it —
/// a radix-style single pass with no comparison sort.
pub fn build_counts(stats: &BuildStats, _depth: u8) -> OpCounts {
    OpCounts {
        mem_reads: stats.point_reads as u64,
        mem_writes: stats.point_writes as u64,
        bytes_read: stats.point_reads as u64 * 12,
        bytes_written: stats.point_writes as u64 * 12,
        // Encode + bucket arithmetic per point (cache-friendly appends,
        // not pointer chases), plus one table write per node.
        comparisons: stats.code_computations as u64 * 3,
        table_lookups: stats.nodes_created as u64,
        ..OpCounts::default()
    }
}

/// Prices a temporal-coherence **warm** rebuild as a §V-A delta pass.
///
/// The unit still streams the whole frame once — `n` point reads and one
/// fused encode-and-diff op per point against the cached previous codes —
/// but only the `dirty_points` whose m-code moved pay the cold per-point
/// work (bucket arithmetic, 3 ops) and get rewritten in the reorganized
/// layout; unchanged runs stay in place. Table writes are incremental:
/// only the `nodes_dirty` rows whose content changed are re-emitted,
/// while clean rows persist from the previous frame (the Octree-Table is
/// BRAM-resident across a stream's frames). On an identical frame this
/// is `n` compute ops, zero point writes and zero table writes versus
/// the cold pass's `3n`, `n` and one write per node — the Fig. 11
/// octree-build share priced down by temporal coherence.
///
/// Like [`build_counts`], this prices what the paper's hardware would do;
/// [`BuildStats`] keeps what the host actually did (merge comparisons).
pub fn warm_build_counts(stats: &BuildStats) -> OpCounts {
    let n = stats.points as u64;
    let dirty = stats.dirty_points as u64;
    OpCounts {
        mem_reads: n,
        mem_writes: dirty,
        bytes_read: n * 12,
        bytes_written: dirty * 12,
        comparisons: n + dirty * 3,
        table_lookups: stats.nodes_dirty as u64,
        ..OpCounts::default()
    }
}

impl PreprocessingEngine {
    /// The paper's prototype: depth-10 octrees at hardware-table
    /// granularity (leaves of up to 24 points — the Octree-Table for a
    /// 10^6-point frame then costs ~10 Mb of BRAM, matching §VII-C),
    /// 8 Sampling Modules at 200 MHz, Xeon W-2255 host.
    pub fn prototype() -> PreprocessingEngine {
        PreprocessingEngine {
            octree_config: OctreeConfig::new().max_depth(10).leaf_capacity(24),
            unit: DownsamplingUnit::prototype(),
            cpu: DeviceProfile::xeon_w2255(),
        }
    }

    /// Runs the engine on one raw frame, down-sampling it to `target`
    /// points with OIS in the FPGA Down-sampling Unit.
    ///
    /// # Errors
    ///
    /// Propagates octree and sampling failures.
    pub fn run(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
    ) -> Result<PreprocessOutput, SystemError> {
        self.run_inner(frame, target, seed, None, hgpcn_sampling::stage::active())
    }

    /// [`PreprocessingEngine::run`] with an explicit scoreboard-scan
    /// backend instead of the process-wide choice. All backends pick
    /// bit-identical samples with identical modeled counts, so this is
    /// a host-speed knob only — the runtime uses it to honor a per-run
    /// `StageBackends` selection.
    ///
    /// # Errors
    ///
    /// As [`PreprocessingEngine::run`].
    pub fn run_using(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
        sampling: SamplingKernel,
    ) -> Result<PreprocessOutput, SystemError> {
        self.run_inner(frame, target, seed, None, sampling)
    }

    /// Runs OIS entirely in software on the host CPU (the "OIS-on-CPU"
    /// configuration of Figs. 10–12).
    ///
    /// # Errors
    ///
    /// Propagates octree and sampling failures.
    pub fn run_on_cpu(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
    ) -> Result<PreprocessOutput, SystemError> {
        self.run_inner(
            frame,
            target,
            seed,
            Some(self.cpu),
            hgpcn_sampling::stage::active(),
        )
    }

    /// Runs the engine on one frame of a stream through that stream's
    /// [`StreamPreprocContext`]: the octree build reuses the context's
    /// scratch and — when the frame's root AABB matches the cached grid —
    /// its temporal-coherence warm path, OIS reuses the context's
    /// scoreboard and host-memory buffers, and the context's hit/miss
    /// tally advances.
    ///
    /// Outputs are **bit-identical** to [`PreprocessingEngine::run_using`]
    /// on the same frame; on a warm hit `build_counts`/`build_latency`
    /// are priced by [`warm_build_counts`] (the §V-A delta pass) and
    /// [`PreprocessOutput::reused`] is set. A frame whose AABB drifted
    /// rebuilds cold automatically and re-primes the cache.
    ///
    /// Call [`StreamPreprocContext::recycle`] with the output once done
    /// to also reclaim the octree buffers for the next frame.
    ///
    /// # Errors
    ///
    /// As [`PreprocessingEngine::run`]. A failed frame never advances the
    /// hit/miss tally; the warm cache keeps whatever the last successful
    /// build left (which is always safe — the cache is an accelerator,
    /// not a correctness input).
    pub fn run_with_context(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
        sampling: SamplingKernel,
        ctx: &mut StreamPreprocContext,
    ) -> Result<PreprocessOutput, SystemError> {
        // CPU: octree build through the stream's scratch (warm or cold).
        let octree = Octree::build_with_scratch(frame, self.octree_config, &mut ctx.octree)?;
        let stats = octree.build_stats();
        let b_counts = if stats.reused {
            warm_build_counts(&stats)
        } else {
            build_counts(&stats, octree.depth())
        };
        let build_latency = self.cpu.latency(&b_counts);

        // MMIO: ship the Octree-Table to the FPGA. On a warm build only the
        // dirty rows cross the link — the table is BRAM-resident across a
        // stream's frames, so clean rows from the previous frame stay put.
        let table = OctreeTable::from_octree(&octree);
        let mut transfer_bytes = table.size_bits() as u64 / 8;
        if stats.reused && stats.nodes_created > 0 {
            transfer_bytes = transfer_bytes * stats.nodes_dirty as u64 / stats.nodes_created as u64;
        }
        let transfer_latency = self.unit.device_profile().transfer(transfer_bytes);

        // Down-sampling via OIS, through the context's buffers.
        ctx.mem.reload_cloud(octree.points());
        let result = ois::sample_with_scratch(
            &octree,
            &table,
            &mut ctx.mem,
            target,
            seed,
            sampling,
            &mut ctx.ois,
        )?;
        let sample_latency = self.unit.latency(&result.counts);

        let sampled = octree.points().gather(&result.indices);
        if stats.reused {
            ctx.hits += 1;
        } else {
            ctx.misses += 1;
        }
        Ok(PreprocessOutput {
            table,
            sampled,
            sampled_sfc: result.indices,
            build_counts: b_counts,
            sample_counts: result.counts,
            build_latency,
            transfer_latency,
            sample_latency,
            reused: stats.reused,
            octree,
        })
    }

    fn run_inner(
        &self,
        frame: &PointCloud,
        target: usize,
        seed: u64,
        sample_device: Option<DeviceProfile>,
        sampling: SamplingKernel,
    ) -> Result<PreprocessOutput, SystemError> {
        // CPU: single-pass octree build + SFC reorganization.
        let octree = Octree::build(frame, self.octree_config)?;
        let stats = octree.build_stats();
        let b_counts = build_counts(&stats, octree.depth());
        let build_latency = self.cpu.latency(&b_counts);

        // MMIO: ship the Octree-Table to the FPGA (skipped on-CPU).
        let table = OctreeTable::from_octree(&octree);
        let transfer_latency = match sample_device {
            Some(_) => Latency::ZERO,
            None => self
                .unit
                .device_profile()
                .transfer(table.size_bits() as u64 / 8),
        };

        // Down-sampling via OIS.
        let mut mem = HostMemory::from_cloud(octree.points());
        let result = ois::sample_with(&octree, &table, &mut mem, target, seed, sampling)?;
        let sample_latency = match sample_device {
            Some(dev) => dev.latency(&result.counts),
            None => self.unit.latency(&result.counts),
        };

        let sampled = octree.points().gather(&result.indices);
        Ok(PreprocessOutput {
            table,
            sampled,
            sampled_sfc: result.indices,
            build_counts: b_counts,
            sample_counts: result.counts,
            build_latency,
            transfer_latency,
            sample_latency,
            reused: false,
            octree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::Point3;

    fn frame(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract() * 8.0,
                    (f * 0.414).fract() * 8.0,
                    (f * 0.732).fract() * 8.0,
                )
            })
            .collect()
    }

    #[test]
    fn produces_target_sized_sample() {
        let engine = PreprocessingEngine::prototype();
        let out = engine.run(&frame(5000), 512, 3).unwrap();
        assert_eq!(out.sampled.len(), 512);
        assert_eq!(out.sampled_sfc.len(), 512);
        assert!(out.total_latency().ns() > 0.0);
    }

    #[test]
    fn hardware_sampling_beats_cpu_sampling() {
        // The Fig. 12 claim: the FPGA Down-sampling Unit accelerates the
        // sampling step over its CPU implementation.
        let engine = PreprocessingEngine::prototype();
        let hw = engine.run(&frame(20_000), 1024, 3).unwrap();
        let sw = engine.run_on_cpu(&frame(20_000), 1024, 3).unwrap();
        assert_eq!(hw.sampled_sfc, sw.sampled_sfc, "same algorithm, same picks");
        assert!(hw.sample_latency < sw.sample_latency);
    }

    #[test]
    fn build_dominates_ois_on_cpu() {
        // Fig. 11: octree build is 0.25-0.8 of the software OIS latency.
        let engine = PreprocessingEngine::prototype();
        let out = engine.run_on_cpu(&frame(50_000), 1024, 3).unwrap();
        let frac = out.build_fraction();
        assert!(frac > 0.25, "build fraction {frac} too low");
    }

    #[test]
    fn sampling_reads_exactly_target_points() {
        let engine = PreprocessingEngine::prototype();
        let out = engine.run(&frame(8000), 256, 1).unwrap();
        assert_eq!(out.sample_counts.mem_reads, 256);
    }

    fn drifted_frame(n: usize, shift: f32) -> PointCloud {
        let mut cloud = PointCloud::new();
        cloud.push(hgpcn_geometry::Point3::ORIGIN);
        cloud.push(hgpcn_geometry::Point3::splat(8.0));
        for i in 0..n {
            let f = i as f32;
            cloud.push(Point3::new(
                ((f * 0.618 + shift) % 1.0).abs() * 7.0 + 0.5,
                ((f * 0.414 + shift * 0.3) % 1.0).abs() * 7.0 + 0.5,
                ((f * 0.732 + shift * 1.7) % 1.0).abs() * 7.0 + 0.5,
            ))
        }
        cloud
    }

    #[test]
    fn context_outputs_are_bit_identical_to_stateless() {
        let engine = PreprocessingEngine::prototype();
        let mut ctx = StreamPreprocContext::new();
        let kernel = hgpcn_sampling::SamplingKernel::Batched;
        for (i, shift) in [0.0f32, 0.1, 0.2, 0.2].iter().enumerate() {
            let cloud = drifted_frame(3000, *shift);
            let seed = 7 + i as u64;
            let stateless = engine.run_using(&cloud, 128, seed, kernel).unwrap();
            let ctxed = engine
                .run_with_context(&cloud, 128, seed, kernel, &mut ctx)
                .unwrap();
            assert_eq!(stateless.sampled_sfc, ctxed.sampled_sfc, "frame {i}");
            assert_eq!(stateless.sampled, ctxed.sampled, "frame {i}");
            assert_eq!(stateless.sample_counts, ctxed.sample_counts, "frame {i}");
            assert_eq!(
                stateless.octree.permutation(),
                ctxed.octree.permutation(),
                "frame {i}"
            );
            assert_eq!(ctxed.reused, i > 0, "frame {i}: anchored AABB is stable");
            assert!(!stateless.reused);
            ctx.recycle(ctxed);
        }
        assert_eq!(ctx.hits(), 3);
        assert_eq!(ctx.misses(), 1);
    }

    #[test]
    fn warm_frames_are_priced_as_a_delta_pass() {
        let engine = PreprocessingEngine::prototype();
        let mut ctx = StreamPreprocContext::new();
        let kernel = hgpcn_sampling::SamplingKernel::Batched;
        let cloud = drifted_frame(5000, 0.0);
        let cold = engine
            .run_with_context(&cloud, 256, 3, kernel, &mut ctx)
            .unwrap();
        assert!(!cold.reused);
        ctx.recycle(cold);
        let warm = engine
            .run_with_context(&cloud, 256, 3, kernel, &mut ctx)
            .unwrap();
        assert!(warm.reused);
        let stateless = engine.run_using(&cloud, 256, 3, kernel).unwrap();
        // Identical frame: zero dirty points, so the delta pass reads the
        // frame once, writes nothing, and spends a third of the cold
        // compute ops.
        assert_eq!(warm.build_counts.mem_writes, 0);
        assert_eq!(
            warm.build_counts.comparisons * 3,
            stateless.build_counts.comparisons
        );
        assert!(warm.build_latency < stateless.build_latency);
        assert!(warm.total_latency() < stateless.total_latency());
        // The octree build stats record what actually ran.
        assert!(warm.octree.build_stats().reused);
        assert_eq!(warm.octree.build_stats().dirty_points, 0);
    }

    #[test]
    fn context_falls_back_cold_on_aabb_drift() {
        let engine = PreprocessingEngine::prototype();
        let mut ctx = StreamPreprocContext::new();
        let kernel = hgpcn_sampling::SamplingKernel::Scalar;
        let a = drifted_frame(2000, 0.0);
        let mut b = drifted_frame(2000, 0.0);
        b.push(Point3::splat(100.0)); // grow the AABB
        let _ = engine
            .run_with_context(&a, 64, 1, kernel, &mut ctx)
            .unwrap();
        let out = engine
            .run_with_context(&b, 64, 1, kernel, &mut ctx)
            .unwrap();
        assert!(!out.reused, "AABB drift must rebuild cold");
        let stateless = engine.run_using(&b, 64, 1, kernel).unwrap();
        assert_eq!(out.sampled_sfc, stateless.sampled_sfc);
        assert_eq!(out.build_counts, stateless.build_counts);
        assert_eq!(ctx.hits(), 0);
        assert_eq!(ctx.misses(), 2);
    }

    #[test]
    fn propagates_octree_errors() {
        let engine = PreprocessingEngine::prototype();
        assert!(matches!(
            engine.run(&PointCloud::new(), 10, 0),
            Err(SystemError::Octree(_))
        ));
    }
}
