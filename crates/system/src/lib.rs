//! The HgPCN system (§IV): both engines, the platforms it is compared
//! against, and the end-to-end pipeline.
//!
//! HgPCN is a CPU+FPGA shared-memory design:
//!
//! * the **Pre-processing Engine** ([`PreprocessingEngine`]) runs the
//!   Octree-build Unit on the CPU (single-pass octree construction + SFC
//!   host-memory reorganization) and OIS down-sampling in the FPGA
//!   Down-sampling Unit;
//! * the **Inference Engine** ([`InferenceEngine`]) pairs the VEG-based
//!   Data Structuring Unit with a 16×16 systolic Feature Computation Unit
//!   and executes a real PointNet++ forward pass.
//!
//! [`baselines`] provides the comparison platforms of §VII: FPS/RS/
//! RS+reinforce pre-processing on CPU and GPU profiles (Fig. 12), and the
//! inference-phase accelerator models — Jetson-class GPU, PointACC-like
//! (full-cloud bitonic Mapping Unit) and Mesorasi-like (GPU data
//! structuring + delayed-aggregation feature computation) — for Fig. 14.
//!
//! [`E2ePipeline`] chains the two engines for the system-level §VII-E
//! real-time experiment ([`realtime`]), and [`ablation`] quantifies the
//! paper's §VIII future-work variants (approximate OIS, semi-approximate
//! VEG).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baselines;
mod error;
mod inference;
mod preproc;
pub mod realtime;
mod report;
pub mod reuse;
mod veg_gatherer;

pub use error::SystemError;
pub use inference::{InferenceEngine, InferenceReport};
pub use preproc::{build_counts, warm_build_counts, PreprocessOutput, PreprocessingEngine};
pub use report::{E2eReport, PhaseReport};
pub use reuse::{PreprocReuse, StreamPreprocContext};
pub use veg_gatherer::VegGatherer;

/// End-to-end pipeline: Pre-processing Engine then Inference Engine.
#[derive(Debug)]
pub struct E2ePipeline {
    /// The pre-processing engine (CPU octree build + FPGA down-sampling).
    pub preproc: PreprocessingEngine,
    /// The inference engine (DSU + FCU).
    pub inference: InferenceEngine,
}

impl E2ePipeline {
    /// A prototype pipeline matching the paper's configuration.
    pub fn prototype() -> E2ePipeline {
        E2ePipeline {
            preproc: PreprocessingEngine::prototype(),
            inference: InferenceEngine::prototype(),
        }
    }

    /// Processes one raw frame end to end: down-sample to `target` points,
    /// then run `net` on the result.
    ///
    /// # Errors
    ///
    /// Propagates failures from either engine as [`SystemError`].
    pub fn process_frame(
        &self,
        frame: &hgpcn_geometry::PointCloud,
        target: usize,
        net: &hgpcn_pcn::PointNet,
        seed: u64,
    ) -> Result<E2eReport, SystemError> {
        let pre = self.preproc.run(frame, target, seed)?;
        let inf = self.inference.run(&pre.sampled, net, seed)?;
        Ok(E2eReport {
            preprocess: PhaseReport {
                latency: pre.total_latency(),
                counts: pre.total_counts(),
            },
            inference: PhaseReport {
                latency: inf.total_latency(),
                counts: inf.total_counts(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::{Point3, PointCloud};
    use hgpcn_pcn::{PointNet, PointNetConfig};

    #[test]
    fn e2e_prototype_processes_a_frame() {
        let frame: PointCloud = (0..4000)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract(),
                    (f * 0.414).fract(),
                    (f * 0.732).fract(),
                )
            })
            .collect();
        let pipeline = E2ePipeline::prototype();
        let net = PointNet::new(PointNetConfig::classification(), 1);
        let report = pipeline.process_frame(&frame, 1024, &net, 7).unwrap();
        assert!(report.preprocess.latency.ns() > 0.0);
        assert!(report.inference.latency.ns() > 0.0);
        assert!(report.total().ns() > report.inference.latency.ns());
    }
}
