//! The comparison platforms of §VII.
//!
//! Pre-processing baselines (Fig. 12): common FPS, random sampling and
//! RS+reinforce, priced on the general-purpose device profiles. Inference
//! baselines (Fig. 14): a Jetson-class edge GPU, PointACC-like (full-cloud
//! bitonic Mapping Unit + systolic FCU) and Mesorasi-like (GPU data
//! structuring + delayed-aggregation FCU). All accelerators share the same
//! 16×16 systolic array for feature computation, per the paper's
//! methodology (§VII-A).
//!
//! The GPU data-structuring model prices a KNN kernel as a per-candidate
//! cost plus a per-center kernel/serialisation overhead — the first-order
//! behaviour of neighbor-search kernels on small, latency-bound batches.
//! Constants are documented below; the paper's figures are ratios, and
//! the orderings they assert (HgPCN < PointACC < Mesorasi < Jetson
//! latency, gaps growing with input size) come from the workload shapes,
//! not from tuning.

use hgpcn_dla::{LayerRun, SystolicArray};
use hgpcn_gather::sorter;
use hgpcn_geometry::PointCloud;
use hgpcn_memsim::{DeviceProfile, HostMemory, Latency, OpCounts};
use hgpcn_pcn::{PointNetConfig, Stage};
use hgpcn_sampling::{fps, random, reinforce};

use crate::{PhaseReport, SystemError};

/// GPU KNN kernel (set-abstraction gathering): effective cost per
/// candidate distance, including the top-K selection traffic (ns).
pub const GPU_KNN_NS_PER_CANDIDATE: f64 = 25.0;
/// GPU KNN kernel: per-center serialization of the top-K merge on small
/// latency-bound batches (ns).
pub const GPU_KNN_NS_PER_CENTER: f64 = 30_000.0;
/// GPU 3-NN interpolation search (feature propagation): per-candidate cost
/// — far lighter than full KNN because only three registers are maintained
/// per output point (ns).
pub const GPU_3NN_NS_PER_CANDIDATE: f64 = 2.0;
/// Edge-GPU (Jetson NX) slowdown relative to the Mesorasi-class GPU model.
pub const JETSON_EDGE_FACTOR: f64 = 1.5;
/// Effective MAC cost on the Jetson for small latency-bound layers (ns).
pub const JETSON_NS_PER_MAC: f64 = 0.06;
/// Desktop GPU (4060 Ti) KNN per-candidate cost (ns).
pub const DESKTOP_GPU_KNN_NS_PER_CANDIDATE: f64 = 3.0;
/// Desktop GPU per-center overhead (ns).
pub const DESKTOP_GPU_KNN_NS_PER_CENTER: f64 = 8_000.0;
/// Desktop GPU 3-NN per-candidate cost (ns).
pub const DESKTOP_GPU_3NN_NS_PER_CANDIDATE: f64 = 0.4;
/// Effective MAC cost on the 4060 Ti for these layer sizes (ns).
pub const DESKTOP_GPU_NS_PER_MAC: f64 = 0.004;

// ---------------------------------------------------------------------
// Pre-processing baselines (Fig. 12).
// ---------------------------------------------------------------------

/// Executes common FPS over `frame` and prices it on `device`.
///
/// # Errors
///
/// Propagates sampling failures.
pub fn fps_on(
    device: &DeviceProfile,
    frame: &PointCloud,
    k: usize,
    seed: u64,
) -> Result<PhaseReport, SystemError> {
    let mut mem = HostMemory::from_cloud(frame);
    let r = fps::sample(&mut mem, k, seed)?;
    Ok(PhaseReport {
        latency: device.latency(&r.counts),
        counts: r.counts,
    })
}

/// FPS cost from the closed-form operation counts (for frames too large to
/// execute repeatedly; the closed form is property-tested against the
/// executed sampler).
pub fn fps_on_analytic(device: &DeviceProfile, n: usize, k: usize) -> PhaseReport {
    let counts = fps::analytic_counts(n, k);
    PhaseReport {
        latency: device.latency(&counts),
        counts,
    }
}

/// Executes random sampling and prices it on `device`.
///
/// # Errors
///
/// Propagates sampling failures.
pub fn random_on(
    device: &DeviceProfile,
    frame: &PointCloud,
    k: usize,
    seed: u64,
) -> Result<PhaseReport, SystemError> {
    let mut mem = HostMemory::from_cloud(frame);
    let r = random::sample(&mut mem, k, seed)?;
    Ok(PhaseReport {
        latency: device.latency(&r.counts),
        counts: r.counts,
    })
}

/// Executes RS+reinforce and prices it on `device` (the paper runs it on
/// the device where it performs best — a GPU).
///
/// # Errors
///
/// Propagates sampling failures.
pub fn reinforce_on(
    device: &DeviceProfile,
    frame: &PointCloud,
    k: usize,
    seed: u64,
) -> Result<PhaseReport, SystemError> {
    let mut mem = HostMemory::from_cloud(frame);
    let r = reinforce::sample(&mut mem, k, seed)?;
    Ok(PhaseReport {
        latency: device.latency(&r.counts),
        counts: r.counts,
    })
}

// ---------------------------------------------------------------------
// Inference baselines (Fig. 14).
// ---------------------------------------------------------------------

/// Which neighbor search a data-structuring stage performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DsKind {
    /// Full K-nearest-neighbor gathering (set abstraction).
    Knn,
    /// 3-NN interpolation search (feature propagation).
    ThreeNn,
}

/// One data-structuring stage of a network: `centers` neighbor searches
/// over a pool of `pool` points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DsStage {
    /// Points searched per center.
    pub pool: usize,
    /// Central points.
    pub centers: usize,
    /// Search flavor.
    pub kind: DsKind,
}

impl DsStage {
    /// Candidate distances this stage evaluates on a brute-force platform.
    pub fn candidates(&self) -> u64 {
        (self.pool as u64) * (self.centers as u64)
    }
}

/// The data-structuring stages a configuration implies: one per
/// set-abstraction level, plus the 3-NN interpolation searches of the
/// feature-propagation levels.
pub fn ds_plan(config: &PointNetConfig) -> Vec<DsStage> {
    let mut plan = Vec::new();
    let mut sizes = vec![config.input_size];
    for stage in &config.stages {
        match stage {
            Stage::SetAbstraction { npoint, .. } => {
                let n = *sizes.last().expect("input level exists");
                plan.push(DsStage {
                    pool: n,
                    centers: *npoint,
                    kind: DsKind::Knn,
                });
                sizes.push(*npoint);
            }
            Stage::GlobalAbstraction { .. } => sizes.push(1),
        }
    }
    for j in 0..config.fp_mlps.len() {
        let coarse = sizes[sizes.len() - 1 - j];
        let fine = sizes[sizes.len() - 2 - j];
        plan.push(DsStage {
            pool: coarse,
            centers: fine,
            kind: DsKind::ThreeNn,
        });
    }
    plan
}

/// Total brute-force candidate distances of a configuration (both search
/// kinds).
pub fn total_candidates(config: &PointNetConfig) -> u64 {
    ds_plan(config).iter().map(DsStage::candidates).sum()
}

/// Candidate distances of the KNN (set-abstraction) stages only — the
/// workload a traditional gatherer's sorter processes (Fig. 15's
/// comparison basis).
pub fn knn_candidates(config: &PointNetConfig) -> u64 {
    ds_plan(config)
        .iter()
        .filter(|s| s.kind == DsKind::Knn)
        .map(DsStage::candidates)
        .sum()
}

/// Pool size at which a GPU KNN kernel reaches its nominal per-candidate
/// cost; larger pools amortize better (memory coalescing and occupancy
/// improve with row length), scaling the cost by `sqrt(4096 / pool)`.
pub const GPU_KNN_SATURATION_POOL: f64 = 4096.0;

fn gpu_ds_ns(
    config: &PointNetConfig,
    knn_ns_per_candidate: f64,
    knn_ns_per_center: f64,
    three_nn_ns_per_candidate: f64,
) -> f64 {
    ds_plan(config)
        .iter()
        .map(|s| match s.kind {
            DsKind::Knn => {
                let utilization = (GPU_KNN_SATURATION_POOL / s.pool as f64).sqrt().min(1.0);
                s.candidates() as f64 * knn_ns_per_candidate * utilization
                    + s.centers as f64 * knn_ns_per_center
            }
            DsKind::ThreeNn => s.candidates() as f64 * three_nn_ns_per_candidate,
        })
        .sum()
}

fn ds_counts(config: &PointNetConfig) -> OpCounts {
    let cand = total_candidates(config);
    OpCounts {
        distance_computations: cand,
        comparisons: cand,
        mem_reads: cand,
        bytes_read: cand * 12,
        ..OpCounts::default()
    }
}

/// Inference on a Jetson-class edge GPU: brute-force data structuring plus
/// the network's MACs at edge-GPU efficiency, serial (distinct kernels).
pub fn jetson_inference(config: &PointNetConfig) -> PhaseReport {
    let ds = JETSON_EDGE_FACTOR
        * gpu_ds_ns(
            config,
            GPU_KNN_NS_PER_CANDIDATE,
            GPU_KNN_NS_PER_CENTER,
            GPU_3NN_NS_PER_CANDIDATE,
        );
    let fc = config.total_macs() as f64 * JETSON_NS_PER_MAC;
    let mut counts = ds_counts(config);
    counts.macs = config.total_macs();
    PhaseReport {
        latency: Latency::from_ns(ds + fc),
        counts,
    }
}

/// Inference on a desktop 4060 Ti (used in the Fig. 3 end-to-end
/// breakdown): same structure with desktop constants.
pub fn desktop_gpu_inference(config: &PointNetConfig) -> PhaseReport {
    let ds = gpu_ds_ns(
        config,
        DESKTOP_GPU_KNN_NS_PER_CANDIDATE,
        DESKTOP_GPU_KNN_NS_PER_CENTER,
        DESKTOP_GPU_3NN_NS_PER_CANDIDATE,
    );
    let fc = config.total_macs() as f64 * DESKTOP_GPU_NS_PER_MAC;
    let mut counts = ds_counts(config);
    counts.macs = config.total_macs();
    PhaseReport {
        latency: Latency::from_ns(ds + fc),
        counts,
    }
}

/// Inference on a PointACC-like accelerator: the Mapping Unit ranks the
/// *entire* pool per center with 16 distance lanes and a 16-wide bitonic
/// sorter (§VII-D), in series with the shared systolic FCU.
pub fn pointacc_inference(config: &PointNetConfig, array: &SystolicArray) -> PhaseReport {
    let cycle_ns = array.cycle_ns();
    let ds_cycles: u64 = ds_plan(config)
        .iter()
        .map(|s| {
            let per_center = match s.kind {
                // Set abstraction: the Mapping Unit's bitonic sorter ranks
                // the entire pool per center (§VII-D, Fig. 15).
                DsKind::Knn => (s.pool as u64).div_ceil(16) + sorter::sort_cycles(s.pool, 16),
                // FP interpolation: stream the pool, keep 3 registers.
                DsKind::ThreeNn => (s.pool as u64).div_ceil(16) + 4,
            };
            (s.centers as u64) * per_center
        })
        .sum();
    let fc = fc_run(config, array);
    let mut counts = ds_counts(config);
    counts.macs = fc.counts.macs;
    PhaseReport {
        latency: Latency::from_ns((ds_cycles + fc.cycles) as f64 * cycle_ns),
        counts,
    }
}

/// Inference on a Mesorasi-like accelerator: data structuring on its GPU
/// front-end, feature computation on the shared systolic array with
/// **delayed aggregation** (per-point MLPs over each level instead of per
/// (center, neighbor) pair, then a cheap aggregation pass).
pub fn mesorasi_inference(config: &PointNetConfig, array: &SystolicArray) -> PhaseReport {
    let ds = gpu_ds_ns(
        config,
        GPU_KNN_NS_PER_CANDIDATE,
        GPU_KNN_NS_PER_CENTER,
        GPU_3NN_NS_PER_CANDIDATE,
    );
    // Delayed-aggregation FC: SA stages run their MLP once per point of
    // the level, not once per gathered neighbor.
    let mut fc = LayerRun::default();
    let mut level = config.input_size;
    for stage in &config.stages {
        match stage {
            Stage::SetAbstraction { npoint, k, mlp } => {
                let run = array.mlp(mlp, level);
                fc.cycles += run.cycles;
                fc.counts += run.counts;
                // Aggregation: npoint groups x k neighbors x output width
                // additions on 16 lanes.
                let agg = (*npoint as u64) * (*k as u64) * (mlp.output_width() as u64);
                fc.cycles += agg.div_ceil(16);
                level = *npoint;
            }
            Stage::GlobalAbstraction { mlp } => {
                let run = array.mlp(mlp, level);
                fc.cycles += run.cycles;
                fc.counts += run.counts;
                level = 1;
            }
        }
    }
    // FP and head are identical to the normal network.
    for w in config.workload() {
        if w.name.starts_with("FP") || w.name == "head" {
            let run = array.mlp(&w.mlp, w.points);
            fc.cycles += run.cycles;
            fc.counts += run.counts;
        }
    }
    let mut counts = ds_counts(config);
    counts.macs = fc.counts.macs;
    PhaseReport {
        latency: Latency::from_ns(ds + fc.cycles as f64 * array.cycle_ns()),
        counts,
    }
}

/// Feature computation of the unmodified network on the shared array.
pub fn fc_run(config: &PointNetConfig, array: &SystolicArray) -> LayerRun {
    let mut fc = LayerRun::default();
    for w in config.workload() {
        let run = array.mlp(&w.mlp, w.points);
        fc.cycles += run.cycles;
        fc.counts += run.counts;
    }
    fc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::Point3;

    fn frame(n: usize) -> PointCloud {
        (0..n)
            .map(|i| Point3::splat((i as f32 * 0.618).fract()))
            .collect()
    }

    #[test]
    fn preproc_baseline_ordering() {
        // Fig. 12's qualitative ordering on any device: RS fastest, FPS
        // slowest, RS+reinforce in between.
        let cpu = DeviceProfile::xeon_w2255();
        let f = frame(5000);
        let fps = fps_on(&cpu, &f, 256, 1).unwrap();
        let rs = random_on(&cpu, &f, 256, 1).unwrap();
        let rf = reinforce_on(&cpu, &f, 256, 1).unwrap();
        assert!(rs.latency < rf.latency);
        assert!(rf.latency < fps.latency);
    }

    #[test]
    fn analytic_fps_matches_executed() {
        let cpu = DeviceProfile::xeon_w2255();
        let f = frame(2000);
        let run = fps_on(&cpu, &f, 64, 3).unwrap();
        let ana = fps_on_analytic(&cpu, 2000, 64);
        assert_eq!(run.counts, ana.counts);
        assert_eq!(run.latency, ana.latency);
    }

    #[test]
    fn ds_plan_covers_sa_and_fp() {
        let cfg = PointNetConfig::part_segmentation();
        let plan = ds_plan(&cfg);
        // 2 SA stages + 3 FP stages.
        assert_eq!(plan.len(), 5);
        assert_eq!(
            plan[0],
            DsStage {
                pool: 2048,
                centers: 512,
                kind: DsKind::Knn
            }
        );
        assert_eq!(
            plan[1],
            DsStage {
                pool: 512,
                centers: 128,
                kind: DsKind::Knn
            }
        );
        // FP1 upsamples global(1) -> 128: pool 1, centers 128.
        assert_eq!(
            plan[2],
            DsStage {
                pool: 1,
                centers: 128,
                kind: DsKind::ThreeNn
            }
        );
        assert_eq!(
            plan[4],
            DsStage {
                pool: 512,
                centers: 2048,
                kind: DsKind::ThreeNn
            }
        );
    }

    #[test]
    fn accelerator_ordering_matches_fig14() {
        // At every Table I size: HgPCN's rivals rank
        // PointACC < Mesorasi < Jetson in latency.
        let array = SystolicArray::paper_16x16();
        for cfg in [
            PointNetConfig::classification(),
            PointNetConfig::part_segmentation(),
            PointNetConfig::semantic_segmentation(4096),
            PointNetConfig::semantic_segmentation(16384),
        ] {
            let pa = pointacc_inference(&cfg, &array);
            let me = mesorasi_inference(&cfg, &array);
            let je = jetson_inference(&cfg);
            assert!(
                pa.latency < me.latency,
                "{}: PointACC must beat Mesorasi",
                cfg.name
            );
            assert!(
                me.latency < je.latency,
                "{}: Mesorasi must beat Jetson",
                cfg.name
            );
        }
    }

    #[test]
    fn mesorasi_fc_is_cheaper_than_full_fc() {
        let array = SystolicArray::paper_16x16();
        let cfg = PointNetConfig::classification();
        let full = fc_run(&cfg, &array);
        let me = mesorasi_inference(&cfg, &array);
        // Mesorasi's delayed aggregation must reduce FC MACs.
        assert!(me.counts.macs < full.counts.macs);
    }
}
