use std::error::Error;
use std::fmt;

use hgpcn_gather::GatherError;
use hgpcn_octree::OctreeError;
use hgpcn_pcn::PcnError;
use hgpcn_sampling::SamplingError;

/// Errors produced by the HgPCN system layers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// Octree construction failed.
    Octree(OctreeError),
    /// Down-sampling failed.
    Sampling(SamplingError),
    /// Data structuring failed.
    Gather(GatherError),
    /// PCN inference failed.
    Pcn(PcnError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Octree(e) => write!(f, "octree construction failed: {e}"),
            SystemError::Sampling(e) => write!(f, "down-sampling failed: {e}"),
            SystemError::Gather(e) => write!(f, "data structuring failed: {e}"),
            SystemError::Pcn(e) => write!(f, "inference failed: {e}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Octree(e) => Some(e),
            SystemError::Sampling(e) => Some(e),
            SystemError::Gather(e) => Some(e),
            SystemError::Pcn(e) => Some(e),
        }
    }
}

impl From<OctreeError> for SystemError {
    fn from(e: OctreeError) -> Self {
        SystemError::Octree(e)
    }
}

impl From<SamplingError> for SystemError {
    fn from(e: SamplingError) -> Self {
        SystemError::Sampling(e)
    }
}

impl From<GatherError> for SystemError {
    fn from(e: GatherError) -> Self {
        SystemError::Gather(e)
    }
}

impl From<PcnError> for SystemError {
    fn from(e: PcnError) -> Self {
        SystemError::Pcn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SystemError::from(OctreeError::EmptyCloud);
        assert!(!e.to_string().is_empty());
        assert!(Error::source(&e).is_some());
    }
}
