use hgpcn_memsim::{Latency, OpCounts};

/// Modeled outcome of one phase (pre-processing or inference).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseReport {
    /// Modeled latency of the phase.
    pub latency: Latency,
    /// Operations the phase performed.
    pub counts: OpCounts,
}

/// End-to-end outcome of one frame: both phases (the Fig. 3 breakdown).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct E2eReport {
    /// Pre-processing phase (octree build + down-sampling).
    pub preprocess: PhaseReport,
    /// Inference phase (data structuring + feature computation).
    pub inference: PhaseReport,
}

impl E2eReport {
    /// Total end-to-end latency.
    pub fn total(&self) -> Latency {
        self.preprocess.latency + self.inference.latency
    }

    /// Fraction of the total spent in pre-processing — the quantity Fig. 3
    /// plots per dataset.
    pub fn preprocess_fraction(&self) -> f64 {
        let t = self.total().ns();
        if t == 0.0 {
            return 0.0;
        }
        self.preprocess.latency.ns() / t
    }

    /// Sustained frames per second if frames are processed serially.
    pub fn serial_fps(&self) -> f64 {
        self.total().fps()
    }

    /// Sustained frames per second with the two phases pipelined across
    /// consecutive frames (frame `i+1` pre-processes while frame `i`
    /// infers) — the steady-state throughput of the §VII-E experiment.
    pub fn pipelined_fps(&self) -> f64 {
        self.preprocess.latency.max(self.inference.latency).fps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pre_ms: f64, inf_ms: f64) -> E2eReport {
        E2eReport {
            preprocess: PhaseReport {
                latency: Latency::from_ms(pre_ms),
                counts: OpCounts::default(),
            },
            inference: PhaseReport {
                latency: Latency::from_ms(inf_ms),
                counts: OpCounts::default(),
            },
        }
    }

    #[test]
    fn totals_and_fractions() {
        let r = report(30.0, 10.0);
        assert_eq!(r.total(), Latency::from_ms(40.0));
        assert!((r.preprocess_fraction() - 0.75).abs() < 1e-12);
        assert!((r.serial_fps() - 25.0).abs() < 1e-9);
        assert!((r.pipelined_fps() - 1000.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn pipelining_never_slower_than_serial() {
        let r = report(7.0, 13.0);
        assert!(r.pipelined_fps() >= r.serial_fps());
    }
}
