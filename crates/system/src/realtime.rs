//! The system-level real-time experiment (§VII-E).
//!
//! The paper's criterion: end-to-end processing of each frame must keep up
//! with the sensor's data-generation rate. This module consumes a stream
//! of timestamped frames (e.g. [`hgpcn_datasets::kitti::KittiStream`] in
//! the benches), processes each through a pipeline, and compares achieved
//! throughput against the measured generation rate.
//!
//! [`hgpcn_datasets::kitti::KittiStream`]: https://docs.rs/hgpcn-datasets

use hgpcn_geometry::PointCloud;
use hgpcn_memsim::Latency;
use hgpcn_pcn::PointNet;

use crate::{E2ePipeline, SystemError};

/// Outcome of a streaming run.
#[derive(Clone, Debug, PartialEq)]
pub struct RealtimeReport {
    /// Frames processed.
    pub frames: usize,
    /// Mean end-to-end latency per frame.
    pub mean_latency: Latency,
    /// Worst frame latency (tail latency matters on the edge, §VII-C).
    pub max_latency: Latency,
    /// Throughput if frames are processed strictly serially.
    pub serial_fps: f64,
    /// Throughput with the two engine phases pipelined across frames.
    pub pipelined_fps: f64,
    /// The sensor's measured generation rate (from the frame timestamps).
    pub sensor_fps: f64,
}

impl RealtimeReport {
    /// The paper's real-time criterion: can the pipeline keep up with the
    /// sensor?
    pub fn meets_realtime(&self) -> bool {
        self.pipelined_fps >= self.sensor_fps
    }
}

/// Processes `frames` (with sensor timestamps in seconds) through
/// `pipeline`, down-sampling each to `target` points and running `net`.
///
/// # Errors
///
/// Propagates the first frame failure.
///
/// # Panics
///
/// Panics if fewer than two frames are supplied (no rate is measurable).
pub fn run_stream(
    pipeline: &E2ePipeline,
    net: &PointNet,
    frames: &[(f64, PointCloud)],
    target: usize,
    seed: u64,
) -> Result<RealtimeReport, SystemError> {
    assert!(
        frames.len() >= 2,
        "need at least two frames to measure the sensor rate"
    );
    let mut total = Latency::ZERO;
    let mut worst = Latency::ZERO;
    let mut worst_phase = Latency::ZERO;
    for (i, (_, frame)) in frames.iter().enumerate() {
        let report = pipeline.process_frame(frame, target, net, seed ^ i as u64)?;
        let t = report.total();
        total += t;
        worst = worst.max(t);
        worst_phase = worst_phase.max(report.preprocess.latency.max(report.inference.latency));
    }
    let n = frames.len();
    let span_s = frames[n - 1].0 - frames[0].0;
    let sensor_fps = (n - 1) as f64 / span_s;
    let mean = total / n as f64;
    Ok(RealtimeReport {
        frames: n,
        mean_latency: mean,
        max_latency: worst,
        serial_fps: mean.fps(),
        pipelined_fps: Latency::from_ns(worst_phase.ns().max(1.0)).fps(),
        sensor_fps,
    })
}

/// Outcome of a bounded-queue streaming simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueReport {
    /// Frames offered by the sensor.
    pub offered: usize,
    /// Frames dropped because the queue was full on arrival.
    pub dropped: usize,
    /// Median sojourn time (queueing + service) of processed frames.
    pub p50_sojourn: Latency,
    /// 95th-percentile sojourn time.
    pub p95_sojourn: Latency,
    /// Worst sojourn time.
    pub max_sojourn: Latency,
}

impl QueueReport {
    /// Fraction of offered frames that were processed.
    pub fn delivery_ratio(&self) -> f64 {
        1.0 - self.dropped as f64 / self.offered.max(1) as f64
    }
}

/// Simulates a single-server FIFO frame queue: frames arrive at the sensor
/// timestamps, each takes its modeled service latency, and at most
/// `capacity` frames may be waiting (excluding the one in service) — a
/// late frame is dropped, the standard edge-service policy.
///
/// The paper's real-time criterion (§VII-E) is the zero-drop steady state
/// of this model; the queue view additionally exposes the tail-latency
/// behaviour §VII-C argues OIS improves ("more consistent latency ...
/// better tail latency for edge computing").
///
/// # Panics
///
/// Panics if `arrivals` and `service` lengths differ or are empty.
pub fn simulate_queue(arrivals: &[f64], service: &[Latency], capacity: usize) -> QueueReport {
    assert_eq!(
        arrivals.len(),
        service.len(),
        "one service time per arrival"
    );
    assert!(!arrivals.is_empty(), "need at least one frame");
    let mut sojourns: Vec<f64> = Vec::new();
    let mut dropped = 0usize;
    // Completion times of frames admitted but not yet finished.
    let mut backlog: Vec<f64> = Vec::new(); // completion times, sorted ascending
    let mut server_free_at = f64::NEG_INFINITY;
    for (&t, &svc) in arrivals.iter().zip(service) {
        backlog.retain(|&done| done > t);
        if backlog.len() > capacity {
            dropped += 1;
            continue;
        }
        let start = server_free_at.max(t);
        let done = start + svc.secs();
        server_free_at = done;
        backlog.push(done);
        sojourns.push(done - t);
    }
    sojourns.sort_by(|a, b| a.partial_cmp(b).expect("finite sojourns"));
    let pick = |q: f64| -> Latency {
        if sojourns.is_empty() {
            return Latency::ZERO;
        }
        let idx = ((sojourns.len() - 1) as f64 * q).round() as usize;
        Latency::from_secs(sojourns[idx])
    };
    QueueReport {
        offered: arrivals.len(),
        dropped,
        p50_sojourn: pick(0.5),
        p95_sojourn: pick(0.95),
        max_sojourn: pick(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::Point3;
    use hgpcn_pcn::{PointNet, PointNetConfig};

    fn frame(n: usize, seed: u64) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = (i as u64 ^ seed) as f32;
                Point3::new(
                    (f * 0.618).fract(),
                    (f * 0.414).fract(),
                    (f * 0.732).fract(),
                )
            })
            .collect()
    }

    #[test]
    fn stream_reports_rates() {
        let pipeline = E2ePipeline::prototype();
        let net = PointNet::new(PointNetConfig::classification(), 1);
        let frames: Vec<(f64, PointCloud)> = (0..3)
            .map(|i| (i as f64 * 0.1, frame(3000, i as u64)))
            .collect();
        let report = run_stream(&pipeline, &net, &frames, 1024, 5).unwrap();
        assert_eq!(report.frames, 3);
        assert!((report.sensor_fps - 10.0).abs() < 1e-9);
        assert!(report.pipelined_fps >= report.serial_fps);
        assert!(report.mean_latency.ns() > 0.0);
        assert!(report.max_latency >= report.mean_latency);
    }

    #[test]
    fn queue_keeps_up_when_service_is_fast() {
        let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let service = vec![Latency::from_ms(50.0); 20];
        let report = simulate_queue(&arrivals, &service, 2);
        assert_eq!(report.dropped, 0);
        assert!((report.p50_sojourn.ms() - 50.0).abs() < 1e-6);
        assert!((report.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_drops_when_overloaded() {
        let arrivals: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let service = vec![Latency::from_ms(250.0); 50]; // 2.5x too slow
        let report = simulate_queue(&arrivals, &service, 1);
        assert!(report.dropped > 10, "dropped {}", report.dropped);
        assert!(report.max_sojourn > Latency::from_ms(250.0));
        assert!(report.delivery_ratio() < 1.0);
    }

    #[test]
    fn queue_percentiles_ordered() {
        let arrivals: Vec<f64> = (0..30).map(|i| i as f64 * 0.1).collect();
        let service: Vec<Latency> = (0..30)
            .map(|i| Latency::from_ms(40.0 + (i % 7) as f64 * 30.0))
            .collect();
        let report = simulate_queue(&arrivals, &service, 4);
        assert!(report.p50_sojourn <= report.p95_sojourn);
        assert!(report.p95_sojourn <= report.max_sojourn);
    }

    #[test]
    #[should_panic(expected = "at least two frames")]
    fn single_frame_panics() {
        let pipeline = E2ePipeline::prototype();
        let net = PointNet::new(PointNetConfig::classification(), 1);
        let frames = vec![(0.0, frame(2000, 1))];
        let _ = run_stream(&pipeline, &net, &frames, 1024, 5);
    }
}
