use hgpcn_gather::veg::VegConfig;
use hgpcn_gather::{GatherKernel, GatherResult, NeighborIndex, VegIndex};
use hgpcn_geometry::PointCloud;
use hgpcn_memsim::OpCounts;
use hgpcn_octree::OctreeConfig;
use hgpcn_pcn::{Gatherer, PcnError};

/// The VEG-backed [`Gatherer`]: the Data Structuring Unit's algorithmic
/// half, pluggable into the PointNet++ forward pass.
///
/// PointNet++ gathers at several hierarchy levels (the down-sampled input,
/// then each set-abstraction level), so the gatherer builds one
/// [`VegIndex`] per level it is handed — octree + SFC permutations built
/// **once**, every center of the level answered from it. The octree build
/// for the *input* level conceptually reuses the pre-processing octree
/// (the paper's amortization argument, §VII-B); the build operations are
/// not charged to the query counts, matching that amortization.
#[derive(Debug)]
pub struct VegGatherer {
    config: VegConfig,
    octree_config: OctreeConfig,
    kernel: GatherKernel,
    counts: OpCounts,
    results: Vec<GatherResult>,
}

impl VegGatherer {
    /// Creates a gatherer with the given VEG behaviour, dispatching
    /// top-K selection to the process-wide
    /// [`hgpcn_gather::stage::active`] backend.
    pub fn new(config: VegConfig) -> VegGatherer {
        VegGatherer {
            config,
            octree_config: OctreeConfig::default(),
            kernel: hgpcn_gather::stage::active(),
            counts: OpCounts::default(),
            results: Vec::new(),
        }
    }

    /// Pins the top-K selection backend for every index this gatherer
    /// builds, overriding the process-wide choice. All backends are
    /// bit-identical, so this is a host-speed knob only — the runtime
    /// uses it to honor a per-run `StageBackends` selection.
    #[must_use]
    pub fn with_kernel(mut self, kernel: GatherKernel) -> VegGatherer {
        self.kernel = kernel;
        self
    }

    /// The top-K selection backend in use.
    pub fn kernel(&self) -> GatherKernel {
        self.kernel
    }

    /// All per-center gather results so far (the DSU pipeline model
    /// consumes their [`hgpcn_gather::VegStats`]).
    pub fn results(&self) -> &[GatherResult] {
        &self.results
    }

    /// The VEG configuration in use.
    pub fn config(&self) -> &VegConfig {
        &self.config
    }
}

impl Default for VegGatherer {
    fn default() -> Self {
        VegGatherer::new(VegConfig::default())
    }
}

impl Gatherer for VegGatherer {
    fn gather(
        &mut self,
        cloud: &PointCloud,
        centers: &[usize],
        k: usize,
    ) -> Result<Vec<Vec<usize>>, PcnError> {
        // One index build for this level; the index translates between
        // the caller's order and SFC order internally.
        let index =
            VegIndex::build(cloud, self.config, self.octree_config)?.with_kernel(self.kernel);
        let mut out = Vec::with_capacity(centers.len());
        for &c in centers {
            let r = index.query(c, k)?;
            self.counts += r.counts;
            out.push(r.neighbors.clone());
            self.results.push(r);
        }
        Ok(out)
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::Point3;
    use hgpcn_pcn::BruteKnnGatherer;

    fn cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract(),
                    (f * 0.414).fract(),
                    (f * 0.732).fract(),
                )
            })
            .collect()
    }

    #[test]
    fn returns_indices_in_caller_order() {
        let c = cloud(300);
        let mut g = VegGatherer::default();
        let sets = g.gather(&c, &[5, 100], 8).unwrap();
        assert_eq!(sets.len(), 2);
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(set.len(), 8);
            assert!(set.iter().all(|&x| x < 300));
            let center = [5usize, 100][i];
            assert!(
                !set.contains(&center),
                "center must not be its own neighbor"
            );
        }
        assert_eq!(g.results().len(), 2);
        assert!(g.counts().table_lookups > 0);
    }

    #[test]
    fn exact_mode_matches_brute_knn_through_the_trait() {
        let c = cloud(400);
        let mut veg = VegGatherer::new(VegConfig {
            gather_level: None,
            mode: hgpcn_gather::veg::VegMode::Exact,
        });
        let mut brute = BruteKnnGatherer::new();
        let centers = [0usize, 17, 200, 399];
        let a = veg.gather(&c, &centers, 10).unwrap();
        let b = brute.gather(&c, &centers, 10).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let mut x = x.clone();
            let mut y = y.clone();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn sorts_fewer_candidates_than_brute_force() {
        let c = cloud(1000);
        let mut g = VegGatherer::default();
        let _ = g.gather(&c, &[500], 32).unwrap();
        let stats = g.results()[0].stats;
        assert!(stats.candidates_sorted < 999);
    }
}
