//! The paper's §VIII future-work directions, made measurable:
//!
//! * **Approximate OIS-based FPS** — stop the octree search near the leaf
//!   level and take a spatially adjacent substitute. The trade-off is
//!   sampling latency vs coverage quality.
//! * **Semi-approximate VEG** — skip the final-shell sort and take
//!   adjacent substitutes. The trade-off is data-structuring latency vs
//!   neighbor recall (and it needs no training adaptation, unlike fully
//!   approximate methods).

use hgpcn_gather::veg::{self, VegConfig, VegMode};
use hgpcn_gather::{dsu::DataStructuringUnit, knn};
use hgpcn_geometry::PointCloud;
use hgpcn_memsim::{HostMemory, Latency};
use hgpcn_octree::{Octree, OctreeTable};
use hgpcn_sampling::{ois, quality};

use crate::{PreprocessingEngine, SystemError};

/// One row of the approximate-OIS trade-off study.
#[derive(Clone, Debug)]
pub struct ApproxOisRow {
    /// Levels above the leaves where the exact search stops (0 = exact).
    pub stop_levels: u8,
    /// Modeled latency on the Down-sampling Unit.
    pub hw_latency: Latency,
    /// Coverage radius of the sample (lower is better).
    pub coverage: f32,
}

/// Runs exact OIS and the approximate variant at several stop levels over
/// `frame`, reporting latency vs coverage.
///
/// # Errors
///
/// Propagates octree/sampling failures.
pub fn approx_ois_tradeoff(
    frame: &PointCloud,
    k: usize,
    seed: u64,
    stop_levels: &[u8],
) -> Result<Vec<ApproxOisRow>, SystemError> {
    let engine = PreprocessingEngine::prototype();
    let octree = Octree::build(frame, engine.octree_config)?;
    let table = OctreeTable::from_octree(&octree);
    let mut rows = Vec::new();

    let mut mem = HostMemory::from_cloud(octree.points());
    let exact = ois::sample(&octree, &table, &mut mem, k, seed)?;
    rows.push(ApproxOisRow {
        stop_levels: 0,
        hw_latency: engine.unit.latency(&exact.counts),
        coverage: quality::coverage_radius(octree.points(), &exact.indices),
    });

    for &stop in stop_levels {
        let mut mem = HostMemory::from_cloud(octree.points());
        let r = ois::approx_sample(&octree, &table, &mut mem, k, seed, stop)?;
        rows.push(ApproxOisRow {
            stop_levels: stop,
            hw_latency: engine.unit.latency(&r.counts),
            coverage: quality::coverage_radius(octree.points(), &r.indices),
        });
    }
    Ok(rows)
}

/// One row of the semi-approximate-VEG trade-off study.
#[derive(Clone, Debug)]
pub struct SemiVegRow {
    /// Mode label (`"paper"` / `"semi-approx"` / `"exact"`).
    pub mode: &'static str,
    /// Modeled DSU pipeline latency for the batch of gathers.
    pub dsu_latency: Latency,
    /// Mean recall of the gathered sets against brute-force KNN.
    pub mean_recall: f64,
    /// Final-shell candidates sorted across the batch.
    pub candidates_sorted: u64,
}

/// Gathers `k` neighbors for `centers` over `cloud` under the three VEG
/// modes and compares DSU latency, sort workload and recall.
///
/// # Errors
///
/// Propagates octree/gather failures.
pub fn semi_veg_tradeoff(
    cloud: &PointCloud,
    centers: &[usize],
    k: usize,
) -> Result<Vec<SemiVegRow>, SystemError> {
    let octree = Octree::build(cloud, hgpcn_octree::OctreeConfig::default())?;
    let dsu = DataStructuringUnit::prototype();
    // Brute-force reference in SFC index space.
    let perm = octree.permutation();
    let mut inverse = vec![0usize; perm.len()];
    for (sfc, &raw) in perm.iter().enumerate() {
        inverse[raw] = sfc;
    }
    let sfc_centers: Vec<usize> = centers.iter().map(|&c| inverse[c]).collect();
    let reference: Vec<Vec<usize>> = sfc_centers
        .iter()
        .map(|&c| knn::gather(octree.points(), c, k).map(|r| r.neighbors))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for (label, mode) in [
        ("exact", VegMode::Exact),
        ("paper", VegMode::Paper),
        ("semi-approx", VegMode::SemiApprox),
    ] {
        let cfg = VegConfig {
            gather_level: None,
            mode,
        };
        let (results, _) = veg::gather_all(&octree, &sfc_centers, k, &cfg)?;
        let (_, latency) = dsu.run(&results, k);
        let mean_recall = results
            .iter()
            .zip(&reference)
            .map(|(r, reference)| r.recall_against(reference))
            .sum::<f64>()
            / results.len().max(1) as f64;
        let candidates_sorted = results
            .iter()
            .map(|r| r.stats.candidates_sorted as u64)
            .sum();
        rows.push(SemiVegRow {
            mode: label,
            dsu_latency: latency,
            mean_recall,
            candidates_sorted,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgpcn_geometry::Point3;

    fn cloud(n: usize) -> PointCloud {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Point3::new(
                    (f * 0.618).fract(),
                    (f * 0.414).fract(),
                    (f * 0.732).fract(),
                )
            })
            .collect()
    }

    #[test]
    fn approx_ois_trades_quality_for_speed() {
        let frame = cloud(5000);
        let rows = approx_ois_tradeoff(&frame, 128, 3, &[4]).unwrap();
        assert_eq!(rows.len(), 2);
        let exact = &rows[0];
        let approx = &rows[1];
        assert!(
            approx.hw_latency <= exact.hw_latency,
            "approx must not be slower"
        );
        // Quality can only degrade (allow a small tolerance for ties).
        assert!(approx.coverage >= exact.coverage * 0.95);
    }

    #[test]
    fn semi_veg_kills_the_sort_and_keeps_most_recall() {
        let c = cloud(2000);
        let centers: Vec<usize> = (0..32).map(|i| i * 60).collect();
        let rows = semi_veg_tradeoff(&c, &centers, 16).unwrap();
        let exact = rows.iter().find(|r| r.mode == "exact").unwrap();
        let paper = rows.iter().find(|r| r.mode == "paper").unwrap();
        let semi = rows.iter().find(|r| r.mode == "semi-approx").unwrap();
        assert!(exact.mean_recall > 0.999);
        assert_eq!(semi.candidates_sorted, 0);
        assert!(semi.dsu_latency <= paper.dsu_latency);
        // "Most of the gathered points are accurate" (§VIII).
        assert!(semi.mean_recall > 0.6, "semi recall {}", semi.mean_recall);
        assert!(paper.mean_recall >= semi.mean_recall);
    }
}
