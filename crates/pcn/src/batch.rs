//! The SoA tile layer: one dense activation buffer shared by many
//! point-groups, so a whole micro-batch of clouds flows through each MLP
//! layer with a **single weight traversal**.
//!
//! The serial forward pass materializes one small matrix per gathered
//! group (`k × features`) and walks every weight layer once per group —
//! for PointNet++(s) that is hundreds of tiny matmuls per stage. A
//! [`Batch`] instead stacks all groups of all clouds of a stage into one
//! row-major buffer (structure-of-arrays over rows) with a segment table
//! remembering which rows belong to which group. Each layer is then one
//! call into the row-blocked [`Matrix::linear_fused`] kernel, and the
//! per-group max-pools read back through the segment table.
//!
//! Because every operation is row-independent (linear, bias, ReLU) or
//! segment-local (max-pool), batched results are **bit-identical** to the
//! per-group serial path — the property tests in `tests/batch_props.rs`
//! assert this for whole networks.

use std::ops::Range;

use crate::{kernel, LinearKernel, Matrix};

/// A segmented stack of activation rows: the unit the batched forward
/// pass moves through MLP layers.
///
/// # Examples
///
/// ```
/// use hgpcn_pcn::{Batch, Matrix};
///
/// // Two segments (3 and 2 rows) of 4-wide activations.
/// let mut batch = Batch::zeros(&[3, 2], 4);
/// batch.segment_row_mut(0, 0)[0] = 1.0;
/// batch.segment_row_mut(1, 1)[3] = -2.0;
/// let w = Matrix::from_vec(4, 2, vec![1.0; 8]);
/// let out = batch.linear_fused(&w, &[0.0, 0.0], true);
/// assert_eq!(out.segment_count(), 2);
/// let pooled = out.max_pool_segments();
/// assert_eq!(pooled.rows(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    data: Matrix,
    segments: Vec<Range<usize>>,
}

impl Batch {
    /// A zero-filled batch with one segment per entry of `segment_rows`.
    pub fn zeros(segment_rows: &[usize], cols: usize) -> Batch {
        let total: usize = segment_rows.iter().sum();
        let mut segments = Vec::with_capacity(segment_rows.len());
        let mut start = 0usize;
        for &r in segment_rows {
            segments.push(start..start + r);
            start += r;
        }
        Batch {
            data: Matrix::zeros(total, cols),
            segments,
        }
    }

    /// Number of segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total stacked rows across all segments.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.rows()
    }

    /// Activation width.
    #[inline]
    pub fn cols(&self) -> usize {
        self.data.cols()
    }

    /// The segment row-ranges, in stacking order.
    #[inline]
    pub fn segments(&self) -> &[Range<usize>] {
        &self.segments
    }

    /// The stacked row-major activation buffer — the chunked MLP loop
    /// slices row ranges straight out of it.
    #[inline]
    pub(crate) fn data(&self) -> &Matrix {
        &self.data
    }

    /// Mutable access to the stacked buffer (rows are written in place
    /// by the chunked MLP loop's final layer).
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// Rows of segment `seg` (immutable view of the stacked buffer).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn segment_rows(&self, seg: usize) -> usize {
        self.segments[seg].len()
    }

    /// Mutable borrow of row `row` within segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range segment or row.
    #[inline]
    pub fn segment_row_mut(&mut self, seg: usize, row: usize) -> &mut [f32] {
        let range = &self.segments[seg];
        assert!(row < range.len(), "row {row} out of segment range");
        self.data.row_mut(range.start + row)
    }

    /// Borrow of row `row` within segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range segment or row.
    #[inline]
    pub fn segment_row(&self, seg: usize, row: usize) -> &[f32] {
        let range = &self.segments[seg];
        assert!(row < range.len(), "row {row} out of segment range");
        self.data.row(range.start + row)
    }

    /// One weight traversal for the whole batch:
    /// `self × weights + bias` (optionally fused ReLU) over every stacked
    /// row, keeping the segment table. Dispatches to the process-wide
    /// [`kernel::active`] backend.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear_fused(&self, weights: &Matrix, bias: &[f32], relu: bool) -> Batch {
        self.linear_fused_with(kernel::active(), weights, bias, relu)
    }

    /// [`Batch::linear_fused`] on an explicitly chosen backend — the
    /// batched tile primitive the kernel dispatch is wired through
    /// (results are bit-identical across backends; only speed differs).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, or if `kernel` is unsupported on the
    /// running CPU.
    pub fn linear_fused_with(
        &self,
        kernel: LinearKernel,
        weights: &Matrix,
        bias: &[f32],
        relu: bool,
    ) -> Batch {
        Batch {
            data: kernel.apply(&self.data, weights, bias, relu),
            segments: self.segments.clone(),
        }
    }

    /// [`Batch::linear_fused_with`] writing into a caller-owned batch
    /// whose buffers are reused across calls — the batched MLP loop
    /// ping-pongs two of these instead of allocating per layer.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, or if `kernel` is unsupported on the
    /// running CPU.
    pub fn linear_fused_into(
        &self,
        kernel: LinearKernel,
        weights: &Matrix,
        bias: &[f32],
        relu: bool,
        out: &mut Batch,
    ) {
        kernel.apply_into(&self.data, weights, bias, relu, &mut out.data);
        out.segments.clone_from(&self.segments);
    }

    /// The int8 sibling of [`Batch::linear_fused_into`]: quantizes the
    /// stacked rows with `layer`'s calibrated activation scale, runs
    /// the i8 GEMM on `kernel`, and writes the requantized (+ optional
    /// ReLU) f32 rows into `out`, keeping the segment table. `xq` is
    /// the caller's quantization scratch, reused across layers.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, or if `kernel` is unsupported on the
    /// running CPU.
    pub(crate) fn quant_forward_into(
        &self,
        kernel: crate::kernel::Int8Kernel,
        layer: &crate::quant::QuantLayer,
        relu: bool,
        xq: &mut Vec<i8>,
        out: &mut Batch,
    ) {
        layer.forward_into(kernel, &self.data, relu, &mut out.data, xq);
        out.segments.clone_from(&self.segments);
    }

    /// Per-segment column-wise max (the PointNet max-pool applied to each
    /// group independently). Returns a `segment_count × cols` matrix whose
    /// row `s` pools segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if any segment is empty.
    pub fn max_pool_segments(&self) -> Matrix {
        let mut out = Matrix::zeros(self.segments.len(), self.cols());
        for (s, range) in self.segments.iter().enumerate() {
            assert!(!range.is_empty(), "segment {s} has no rows to pool");
            let dst = out.row_mut(s);
            dst.copy_from_slice(self.data.row(range.start));
            for r in range.start + 1..range.end {
                for (o, &v) in dst.iter_mut().zip(self.data.row(r)) {
                    if v > *o {
                        *o = v;
                    }
                }
            }
        }
        out
    }

    /// Re-shapes this batch to the given segment layout, reusing the
    /// underlying allocations when they are large enough. Contents are
    /// unspecified afterwards — callers must overwrite every row (the
    /// batched forward pass fills every segment row it lays out).
    pub(crate) fn reshape_for_overwrite(&mut self, segment_rows: &[usize], cols: usize) {
        let total: usize = segment_rows.iter().sum();
        self.segments.clear();
        let mut start = 0usize;
        for &r in segment_rows {
            self.segments.push(start..start + r);
            start += r;
        }
        self.data.reshape_for_overwrite(total, cols);
    }

    /// Copies segment `seg` out as a standalone matrix (used to hand each
    /// cloud its own logits/features after a batched traversal).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range.
    pub fn segment_matrix(&self, seg: usize) -> Matrix {
        let range = self.segments[seg].clone();
        let mut out = Matrix::zeros(range.len(), self.cols());
        for (r, src) in range.clone().enumerate() {
            out.row_mut(r).copy_from_slice(self.data.row(src));
        }
        out
    }

    /// Stacks standalone matrices (all of the same width) into one batch,
    /// one segment per input matrix.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn from_matrices(parts: &[Matrix]) -> Batch {
        let cols = parts.first().map_or(0, Matrix::cols);
        let rows: Vec<usize> = parts.iter().map(Matrix::rows).collect();
        let mut batch = Batch::zeros(&rows, cols);
        for (s, m) in parts.iter().enumerate() {
            assert_eq!(m.cols(), cols, "segment widths must match");
            for r in 0..m.rows() {
                batch.segment_row_mut(s, r).copy_from_slice(m.row(r));
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_lays_out_contiguous_segments() {
        let b = Batch::zeros(&[2, 0, 3], 4);
        assert_eq!(b.segment_count(), 3);
        assert_eq!(b.rows(), 5);
        assert_eq!(b.segments()[0], 0..2);
        assert_eq!(b.segments()[1], 2..2);
        assert_eq!(b.segments()[2], 2..5);
        assert_eq!(b.segment_rows(2), 3);
    }

    #[test]
    fn segmented_linear_matches_per_segment_linear() {
        let mut b = Batch::zeros(&[3, 2], 3);
        for s in 0..2 {
            for r in 0..b.segment_rows(s) {
                for (c, v) in b.segment_row_mut(s, r).iter_mut().enumerate() {
                    *v = (s * 10 + r * 3 + c) as f32 * 0.5 - 2.0;
                }
            }
        }
        let w = Matrix::from_vec(3, 2, vec![1.0, -1.0, 0.5, 2.0, -0.25, 0.0]);
        let bias = [0.1, -0.2];
        let batched = b.linear_fused(&w, &bias, true);

        for s in 0..2 {
            let part = b.segment_matrix(s);
            let mut serial = part.linear(&w, &bias);
            serial.relu();
            assert_eq!(batched.segment_matrix(s), serial, "segment {s}");
        }
    }

    #[test]
    fn segment_max_pool_matches_matrix_max_pool() {
        let m0 = Matrix::from_vec(2, 2, vec![1.0, 5.0, 4.0, 2.0]);
        let m1 = Matrix::from_vec(3, 2, vec![0.0, -1.0, 7.0, -2.0, 3.0, 9.0]);
        let b = Batch::from_matrices(&[m0.clone(), m1.clone()]);
        let pooled = b.max_pool_segments();
        assert_eq!(pooled.row(0), m0.max_pool().row(0));
        assert_eq!(pooled.row(1), m1.max_pool().row(0));
    }

    #[test]
    #[should_panic(expected = "no rows to pool")]
    fn pooling_an_empty_segment_panics() {
        let b = Batch::zeros(&[1, 0], 2);
        let _ = b.max_pool_segments();
    }
}
