//! PointNet++ — the backend PCN the paper runs on every platform
//! (Table I: Pointnet++(c), (ps) and (s) variants).
//!
//! This is a real forward pass over `f32` tensors, not just a cost model:
//! set-abstraction stages group neighbors, run shared MLPs and max-pool;
//! feature-propagation stages interpolate back up for segmentation; heads
//! produce class logits. Weights are seeded-random — the paper's latency
//! results depend only on layer dimensions and gather patterns, never on
//! trained weight values (see `DESIGN.md`).
//!
//! The neighbor-gathering step is **pluggable** through [`Gatherer`]: the
//! CPU/GPU baselines plug brute-force KNN, HgPCN plugs VEG. Because both
//! return neighbor index sets, the equivalence of VEG to traditional data
//! structuring is testable end-to-end: identical gathers ⇒ identical
//! logits.
//!
//! [`PointNetConfig::workload`] exports each stage's batch size and MLP
//! shape so the system crate can price feature computation on the shared
//! systolic-array model.
//!
//! The matmul itself is pluggable too: every dense layer dispatches to a
//! [`kernel::LinearKernel`] backend (reference scalar, cache-blocked
//! scalar, explicit AVX2 under the `simd` feature), selected once per
//! process by runtime CPU detection and overridable via `HGPCN_KERNEL`
//! or [`PointNet::with_kernel`]. All backends are bit-identical by
//! contract, so the kernel choice moves host speed, never results — see
//! the [`kernel`] module docs.
//!
//! And the *precision* is pluggable through the same seam: the
//! [`quant`] module adds a post-training-quantized int8 tier — a
//! [`Calibrator`] observes activation ranges, [`PointNet::with_int8`]
//! freezes per-channel i8 weights next to the f32 ones, and
//! [`Precision`] selects the tier per forward pass (the i8 GEMM runs
//! on a [`kernel::Int8Kernel`] riding the same backend dispatch).
//!
//! [`stage`] generalizes that seam to the rest of the frame pipeline:
//! every preproc stage (sampling, gather, FP interpolation) dispatches
//! to a bit-identical backend pair behind its own `HGPCN_STAGE_*`
//! override, bundled per run as a [`stage::StageBackends`] selection.

// `deny` rather than `forbid`: the explicit-SIMD backend in
// `kernel::avx2` (compiled only under the `simd` feature) carries the
// crate's single, safety-commented `#![allow(unsafe_code)]`; everything
// else still refuses unsafe code outright.
#![deny(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod config;
mod error;
mod gatherer;
pub mod kernel;
mod network;
pub mod quant;
pub mod stage;
mod tensor;

pub use batch::Batch;
pub use config::{PointNetConfig, Stage, StageWorkload, TaskKind};
pub use error::PcnError;
pub use gatherer::{BruteKnnGatherer, Gatherer, IndexedGatherer};
pub use kernel::{Int8Kernel, LinearKernel};
pub use network::{CenterPolicy, InferenceOutput, PointNet};
pub use quant::{Calibration, Calibrator, Precision, QuantLayer};
pub use stage::{InterpolateKernel, StageBackends};
pub use tensor::Matrix;
