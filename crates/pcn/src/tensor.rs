use std::fmt;

/// A dense row-major `f32` matrix — the minimal tensor the forward pass
/// needs (activations are `points × features`).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(c < self.cols, "column {c} out of range");
        self.data[r * self.cols + c]
    }

    /// `self × weights + bias`, applied row-wise: `weights` is
    /// `cols × out`, `bias` has length `out`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear(&self, weights: &Matrix, bias: &[f32]) -> Matrix {
        assert_eq!(self.cols, weights.rows, "inner dimensions must agree");
        assert_eq!(bias.len(), weights.cols, "bias width must match output");
        let mut out = Matrix::zeros(self.rows, weights.cols);
        for r in 0..self.rows {
            let x = self.row(r);
            let y = out.row_mut(r);
            y.copy_from_slice(bias);
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let wrow = weights.row(i);
                for (j, &wij) in wrow.iter().enumerate() {
                    y[j] += xi * wij;
                }
            }
        }
        out
    }

    /// `self × weights + bias` with an optional fused ReLU, computed with
    /// a register-tiled kernel: 32 output columns are accumulated in
    /// registers while the input index streams innermost, so each output
    /// tile is written to memory exactly once and the weight matrix is
    /// read straight through — the batched path's tile primitive.
    ///
    /// Accumulation order per output element is identical to
    /// [`Matrix::linear`] (ascending input index, zero inputs skipped), so
    /// the result is **bit-identical** to `linear` followed by
    /// [`Matrix::relu`]; only the memory-access schedule differs.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear_fused(&self, weights: &Matrix, bias: &[f32], relu: bool) -> Matrix {
        assert_eq!(self.cols, weights.rows, "inner dimensions must agree");
        assert_eq!(bias.len(), weights.cols, "bias width must match output");
        const TILE: usize = 32;
        let (rows, ins, outs) = (self.rows, self.cols, weights.cols);
        let mut out = Matrix::zeros(rows, outs);
        let x = &self.data;
        let w = &weights.data;
        let y = &mut out.data;
        for r in 0..rows {
            let xr = &x[r * ins..(r + 1) * ins];
            let mut jt = 0usize;
            // Full tiles: the accumulator array stays in vector registers
            // across the whole input stream.
            while jt + TILE <= outs {
                let mut acc = [0.0f32; TILE];
                acc.copy_from_slice(&bias[jt..jt + TILE]);
                for (i, &xi) in xr.iter().enumerate() {
                    if xi == 0.0 {
                        continue;
                    }
                    let wr = &w[i * outs + jt..i * outs + jt + TILE];
                    for l in 0..TILE {
                        acc[l] += xi * wr[l];
                    }
                }
                if relu {
                    for a in &mut acc {
                        if *a < 0.0 {
                            *a = 0.0;
                        }
                    }
                }
                y[r * outs + jt..r * outs + jt + TILE].copy_from_slice(&acc);
                jt += TILE;
            }
            // Remainder columns: an 8-wide tier (narrow heads like the
            // 13-class segmentation output live here), then scalar.
            while jt + 8 <= outs {
                let mut acc = [0.0f32; 8];
                acc.copy_from_slice(&bias[jt..jt + 8]);
                for (i, &xi) in xr.iter().enumerate() {
                    if xi == 0.0 {
                        continue;
                    }
                    let wr = &w[i * outs + jt..i * outs + jt + 8];
                    for l in 0..8 {
                        acc[l] += xi * wr[l];
                    }
                }
                if relu {
                    for a in &mut acc {
                        if *a < 0.0 {
                            *a = 0.0;
                        }
                    }
                }
                y[r * outs + jt..r * outs + jt + 8].copy_from_slice(&acc);
                jt += 8;
            }
            for j in jt..outs {
                let mut a = bias[j];
                for (i, &xi) in xr.iter().enumerate() {
                    if xi == 0.0 {
                        continue;
                    }
                    a += xi * w[i * outs + j];
                }
                y[r * outs + j] = if relu && a < 0.0 { 0.0 } else { a };
            }
        }
        out
    }

    /// In-place ReLU.
    pub fn relu(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Column-wise max over all rows (the PointNet max-pool). Returns a
    /// `1 × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    pub fn max_pool(&self) -> Matrix {
        assert!(self.rows > 0, "max_pool needs at least one row");
        let mut out = self.row(0).to_vec();
        for r in 1..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                if v > *o {
                    *o = v;
                }
            }
        }
        Matrix::from_vec(1, self.cols, out)
    }

    /// Stacks rows gathered from `self` by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must match");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_hand_computation() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]); // identity
        let y = x.linear(&w, &[10.0, 20.0]);
        assert_eq!(y.row(0), &[11.0, 22.0]);
        assert_eq!(y.row(1), &[13.0, 24.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        m.relu();
        assert_eq!(m.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn max_pool_takes_columnwise_max() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 5.0, 4.0, 2.0, 3.0, 3.0]);
        let p = m.max_pool();
        assert_eq!(p.row(0), &[4.0, 5.0]);
    }

    #[test]
    fn gather_and_hcat() {
        let m = Matrix::from_vec(3, 1, vec![10.0, 20.0, 30.0]);
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[30.0]);
        let h = g.hcat(&Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        assert_eq!(h.row(0), &[30.0, 1.0]);
        assert_eq!(h.row(1), &[10.0, 2.0]);
    }

    #[test]
    fn linear_fused_is_bit_identical_to_linear_plus_relu() {
        // Pseudo-random-ish but deterministic inputs with negatives and
        // exact zeros, exercising the zero-skip and the row-block tail.
        let rows = 13; // not a multiple of the block size
        let (ins, outs) = (7, 9);
        let x = Matrix::from_vec(
            rows,
            ins,
            (0..rows * ins)
                .map(|i| {
                    if i % 5 == 0 {
                        0.0
                    } else {
                        ((i as f32 * 0.37).sin() * 3.0) - 1.0
                    }
                })
                .collect(),
        );
        let w = Matrix::from_vec(
            ins,
            outs,
            (0..ins * outs)
                .map(|i| ((i as f32 * 0.73).cos() * 2.0) - 0.5)
                .collect(),
        );
        let bias: Vec<f32> = (0..outs).map(|i| i as f32 * 0.1 - 0.3).collect();

        let plain = x.linear(&w, &bias);
        let fused_no_relu = x.linear_fused(&w, &bias, false);
        assert_eq!(plain, fused_no_relu);

        let mut plain_relu = plain.clone();
        plain_relu.relu();
        assert_eq!(plain_relu, x.linear_fused(&w, &bias, true));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn linear_shape_mismatch_panics() {
        let x = Matrix::zeros(1, 2);
        let w = Matrix::zeros(3, 2);
        let _ = x.linear(&w, &[0.0, 0.0]);
    }
}
