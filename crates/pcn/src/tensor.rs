use std::fmt;

use crate::kernel;

/// A dense row-major `f32` matrix — the minimal tensor the forward pass
/// needs (activations are `points × features`).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(c < self.cols, "column {c} out of range");
        self.data[r * self.cols + c]
    }

    /// Row-major view of the whole buffer, for the kernel backends.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major view of the whole buffer, for the kernel
    /// backends.
    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Re-shapes this matrix to `rows × cols`, reusing the existing
    /// allocation when it is large enough. Contents after the call are
    /// unspecified (a mix of zeros and stale values) — callers must
    /// overwrite every element, which the kernel backends do.
    pub(crate) fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// `self × weights + bias`, applied row-wise: `weights` is
    /// `cols × out`, `bias` has length `out`.
    ///
    /// Dispatches to the process-wide [`kernel::active`] backend; every
    /// backend is bit-identical to [`LinearKernel::Reference`]
    /// (ascending input index, zero inputs skipped), so results do not
    /// depend on which backend serves the call.
    ///
    /// [`LinearKernel::Reference`]: crate::LinearKernel::Reference
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear(&self, weights: &Matrix, bias: &[f32]) -> Matrix {
        kernel::active().apply(self, weights, bias, false)
    }

    /// `self × weights + bias` with an optional fused ReLU — the batched
    /// path's tile primitive, dispatched to the process-wide
    /// [`kernel::active`] backend exactly like [`Matrix::linear`].
    ///
    /// Accumulation order per output element is identical to
    /// [`Matrix::linear`] on every backend, so the result is
    /// **bit-identical** to `linear` followed by [`Matrix::relu`]; only
    /// the memory-access schedule and instruction selection differ.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn linear_fused(&self, weights: &Matrix, bias: &[f32], relu: bool) -> Matrix {
        kernel::active().apply(self, weights, bias, relu)
    }

    /// In-place ReLU.
    pub fn relu(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Column-wise max over all rows (the PointNet max-pool). Returns a
    /// `1 × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    pub fn max_pool(&self) -> Matrix {
        assert!(self.rows > 0, "max_pool needs at least one row");
        let mut out = self.row(0).to_vec();
        for r in 1..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                if v > *o {
                    *o = v;
                }
            }
        }
        Matrix::from_vec(1, self.cols, out)
    }

    /// Stacks rows gathered from `self` by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must match");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_hand_computation() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]); // identity
        let y = x.linear(&w, &[10.0, 20.0]);
        assert_eq!(y.row(0), &[11.0, 22.0]);
        assert_eq!(y.row(1), &[13.0, 24.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        m.relu();
        assert_eq!(m.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn max_pool_takes_columnwise_max() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 5.0, 4.0, 2.0, 3.0, 3.0]);
        let p = m.max_pool();
        assert_eq!(p.row(0), &[4.0, 5.0]);
    }

    #[test]
    fn gather_and_hcat() {
        let m = Matrix::from_vec(3, 1, vec![10.0, 20.0, 30.0]);
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[30.0]);
        let h = g.hcat(&Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        assert_eq!(h.row(0), &[30.0, 1.0]);
        assert_eq!(h.row(1), &[10.0, 2.0]);
    }

    #[test]
    fn linear_fused_is_bit_identical_to_linear_plus_relu() {
        // Pseudo-random-ish but deterministic inputs with negatives and
        // exact zeros, exercising the zero-skip and the row-block tail.
        let rows = 13; // not a multiple of the block size
        let (ins, outs) = (7, 9);
        let x = Matrix::from_vec(
            rows,
            ins,
            (0..rows * ins)
                .map(|i| {
                    if i % 5 == 0 {
                        0.0
                    } else {
                        ((i as f32 * 0.37).sin() * 3.0) - 1.0
                    }
                })
                .collect(),
        );
        let w = Matrix::from_vec(
            ins,
            outs,
            (0..ins * outs)
                .map(|i| ((i as f32 * 0.73).cos() * 2.0) - 0.5)
                .collect(),
        );
        let bias: Vec<f32> = (0..outs).map(|i| i as f32 * 0.1 - 0.3).collect();

        let plain = x.linear(&w, &bias);
        let fused_no_relu = x.linear_fused(&w, &bias, false);
        assert_eq!(plain, fused_no_relu);

        let mut plain_relu = plain.clone();
        plain_relu.relu();
        assert_eq!(plain_relu, x.linear_fused(&w, &bias, true));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn linear_shape_mismatch_panics() {
        let x = Matrix::zeros(1, 2);
        let w = Matrix::zeros(3, 2);
        let _ = x.linear(&w, &[0.0, 0.0]);
    }
}
