//! The explicit-AVX2 int8 GEMM backend (`simd` feature, x86_64 only).
//!
//! Strategy: pairs of quantized inputs stream through `vpmaddwd`
//! (`_mm256_madd_epi16`), which multiplies eight adjacent i16 pairs and
//! adds each pair **exactly** into an i32 lane — with i8-range operands
//! (|v| ≤ 127) a pair sum is at most 2·127² = 32 258, nowhere near
//! overflowing the i32, so every step is exact integer arithmetic.
//! This is the `maddubs`-shaped dataflow commercial int8 kernels use,
//! but on widened i16 operands: `vpmaddubsw` itself *saturates* its
//! i16 pair sums (255·127 + 255·127 > i16::MAX), which would silently
//! break bit-equivalence with the scalar backend; `vpmaddwd` pays one
//! widening conversion per weight load to stay exact.
//!
//! Because integer addition modulo 2³² is associative and commutative,
//! the SIMD accumulation order does not have to mimic the scalar loop —
//! the accumulators land on identical bits regardless (the f32 kernels
//! never get this luxury). The only f32 arithmetic is the fused
//! requantize+ReLU store, computed with the same single-rounded
//! expression per element as the scalar backend
//! (`acc as f32 * scale[j] + bias[j]`, then `max(+0.0, ·)`), so the
//! final output is bit-identical too.
//!
//! Layout per 4-row × 16-column register tile: weight rows `i` and
//! `i+1` are widened to i16 and interleaved
//! (`[w_i[c], w_{i+1}[c], …]`), each activation pair is broadcast as a
//! packed `(x_i, x_{i+1})` i32, and one `vpmaddwd` per 8 columns
//! yields `x_i·w_i[c] + x_{i+1}·w_{i+1}[c]`. The interleave scrambles
//! column order across the two 128-bit halves; a pair of
//! `vperm2i128`s at store time puts the eight-column groups back in
//! row-major order. Column remainders (< 16) fall back to a scalar
//! loop identical to the reference backend — exact by integer
//! associativity. All-zero activation pairs are skipped (`0·w ≡ 0`,
//! so the ReLU-sparsity shortcut stays a pure speed choice).
//!
//! Like `avx2.rs`, this module lives under the crate's single
//! sanctioned `#![allow(unsafe_code)]`; every intrinsic call sits
//! behind slice arithmetic that the surrounding loop bounds have
//! already checked, with a `SAFETY:` note at each site.
#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m256, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi16,
    _mm256_loadu_ps, _mm256_madd_epi16, _mm256_max_ps, _mm256_mul_ps, _mm256_permute2x128_si256,
    _mm256_set1_epi32, _mm256_setzero_ps, _mm256_setzero_si256, _mm256_storeu_ps,
    _mm256_unpackhi_epi16, _mm256_unpacklo_epi16, _mm_loadu_si128,
};

use super::QuantTask;

/// Dispatch wrapper: proves AVX2 is available, then enters the
/// `target_feature` kernel. The caller
/// ([`Int8Kernel::run`](super::Int8Kernel::run)) has already verified
/// detection, but re-asserting keeps the unsafe call locally sound no
/// matter who calls.
pub(super) fn run(task: &QuantTask<'_>, y: &mut [f32]) {
    assert!(
        is_x86_feature_detected!("avx2"),
        "AVX2 int8 kernel on a CPU without AVX2"
    );
    // SAFETY: the assertion above guarantees the CPU executes AVX2;
    // `gemm` has no other safety requirements beyond its slice
    // invariants, which `QuantTask` construction and the shape asserts
    // in `Int8Kernel::apply` establish.
    unsafe { gemm(task, y) }
}

/// Widest input row the stack packing scratch covers, in *pairs*
/// (512 pairs = 1024 inputs — the same budget as `avx2.rs`'s
/// `COMPACT_CAP`; the workspace's widest layer input is 768 + 13).
/// Wider rows fall back to one heap scratch per GEMM call.
const PACK_CAP: usize = 512;

/// Packs one row's quantized activations into `vpmaddwd` operands:
/// each i32 holds a `(x[2p], x[2p+1])` pair as sign-extended i16
/// halves, a trailing odd input (or an empty row) padded with zero.
/// Every slot of `out` is overwritten — the scratch is reused across
/// row blocks.
#[inline]
fn pack_row(xr: &[i8], out: &mut [i32]) {
    for (p, slot) in out.iter_mut().enumerate() {
        let i = 2 * p;
        let lo = if i < xr.len() {
            xr[i] as i16 as u16 as u32
        } else {
            0
        };
        let hi = if i + 1 < xr.len() {
            xr[i + 1] as i16 as u16 as u32
        } else {
            0
        };
        *slot = (lo | (hi << 16)) as i32;
    }
}

/// The AVX2 int8 matmul. Safety requirement: the caller must ensure the
/// CPU supports AVX2 (enforced by [`run`]). All memory accesses stay
/// inside the task's slices: `x` is `rows × ins` i8, `w` is
/// `ins × outs` i8, `scale`/`bias` are `outs` f32, `y` is
/// `rows × outs`, and every vector load/store below is guarded by an
/// explicit `rb + 4 <= rows` / `jt + 16 <= outs` loop bound.
#[target_feature(enable = "avx2")]
unsafe fn gemm(task: &QuantTask<'_>, y: &mut [f32]) {
    let &QuantTask { x, rows, ins, .. } = task;
    // Each 4-row block pre-packs its activation pairs once (so the
    // packing cost is `ins / 2` scalar ops per row instead of being
    // re-paid inside every 16-column tile sweep) into a reused
    // scratch: stack for every shape the workspace networks produce,
    // one heap allocation per GEMM call only beyond `PACK_CAP`.
    let pairs = ins.div_ceil(2).max(1);
    let use_stack = pairs <= PACK_CAP;
    let mut stack = [[0i32; PACK_CAP]; 4];
    let mut heap: Vec<i32> = if use_stack {
        Vec::new()
    } else {
        vec![0i32; 4 * pairs]
    };
    let mut rb = 0usize;
    while rb + 4 <= rows {
        let xps: [&[i32]; 4] = if use_stack {
            for (r, row_buf) in stack.iter_mut().enumerate() {
                pack_row(
                    &x[(rb + r) * ins..(rb + r + 1) * ins],
                    &mut row_buf[..pairs],
                );
            }
            [
                &stack[0][..pairs],
                &stack[1][..pairs],
                &stack[2][..pairs],
                &stack[3][..pairs],
            ]
        } else {
            for (r, row_buf) in heap.chunks_mut(pairs).enumerate() {
                pack_row(&x[(rb + r) * ins..(rb + r + 1) * ins], row_buf);
            }
            let mut it = heap.chunks(pairs);
            [
                it.next().expect("4 chunks"),
                it.next().expect("4 chunks"),
                it.next().expect("4 chunks"),
                it.next().expect("4 chunks"),
            ]
        };
        // SAFETY: rb + 4 <= rows bounds the row block, and each xps[r]
        // holds `pairs` packed entries for row rb + r.
        unsafe { rows_tile::<4>(task, xps, y, rb) };
        rb += 4;
    }
    for r in rb..rows {
        let row_buf: &mut [i32] = if use_stack {
            &mut stack[0][..pairs]
        } else {
            &mut heap[..pairs]
        };
        pack_row(&x[r * ins..(r + 1) * ins], row_buf);
        // SAFETY: r < rows, and the packed row holds `pairs` entries.
        unsafe { rows_tile::<1>(task, [&*row_buf], y, r) };
    }
}

/// `R` rows (`rb..rb + R`) through one 16-column tile sweep plus the
/// scalar column tail, streaming the pre-packed activation pairs. `R`
/// is 4 on the blocked path (weight widening and interleaving amortize
/// over four rows) and 1 on the row remainder.
///
/// Safety requirement (beyond AVX2): `rb + R <= rows` and each
/// `xps[r]` holds row `rb + r`'s packed pairs, length
/// `ins.div_ceil(2).max(1)`.
#[target_feature(enable = "avx2")]
unsafe fn rows_tile<const R: usize>(
    task: &QuantTask<'_>,
    xps: [&[i32]; R],
    y: &mut [f32],
    rb: usize,
) {
    let &QuantTask {
        x,
        ins,
        w,
        outs,
        scale,
        bias,
        relu,
        ..
    } = task;
    let real_pairs = ins / 2; // pairs with both weight rows in bounds
    let mut jt = 0usize;
    while jt + 16 <= outs {
        // Per row: `lo` accumulates columns {0..3, 8..11} of the tile,
        // `hi` columns {4..7, 12..15} (the unpack interleave's lane
        // order); the store permutes them back.
        let mut acc_lo = [_mm256_setzero_si256(); R];
        let mut acc_hi = [_mm256_setzero_si256(); R];
        // `p` walks R parallel packed-pair rows at once (one per
        // accumulator), so an iterator over a single slice cannot
        // replace the index.
        #[allow(clippy::needless_range_loop)]
        for p in 0..real_pairs {
            let i = 2 * p;
            // SAFETY: i + 1 < ins, so rows i and i+1 of `w` each span
            // `outs` entries and jt + 16 <= outs keeps both 16-byte
            // loads inside them.
            let (va, vb) = unsafe {
                (
                    _mm256_cvtepi8_epi16(
                        _mm_loadu_si128(w.as_ptr().add(i * outs + jt) as *const _),
                    ),
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        w.as_ptr().add((i + 1) * outs + jt) as *const _
                    )),
                )
            };
            let w_lo = _mm256_unpacklo_epi16(va, vb);
            let w_hi = _mm256_unpackhi_epi16(va, vb);
            for r in 0..R {
                let pv = xps[r][p];
                if pv == 0 {
                    continue; // both activations are quantized zeros
                }
                let xv = _mm256_set1_epi32(pv);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(w_lo, xv));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(w_hi, xv));
            }
        }
        if ins % 2 == 1 {
            // The odd final input: its pair slot carries a zero in the
            // high half, so one madd against [w_last | 0-interleave]
            // contributes exactly x_last · w_last.
            let i = ins - 1;
            // SAFETY: i < ins bounds row i of `w`; jt + 16 <= outs.
            let va = unsafe {
                _mm256_cvtepi8_epi16(_mm_loadu_si128(w.as_ptr().add(i * outs + jt) as *const _))
            };
            let vb = _mm256_setzero_si256();
            let w_lo = _mm256_unpacklo_epi16(va, vb);
            let w_hi = _mm256_unpackhi_epi16(va, vb);
            for r in 0..R {
                let pv = xps[r][real_pairs];
                if pv == 0 {
                    continue;
                }
                let xv = _mm256_set1_epi32(pv);
                acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(w_lo, xv));
                acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(w_hi, xv));
            }
        }
        for r in 0..R {
            // Un-interleave: [lo.low128 | hi.low128] = columns jt..jt+8,
            // [lo.high128 | hi.high128] = columns jt+8..jt+16.
            let first = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20);
            let second = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31);
            // SAFETY: row rb + r of y spans `outs` elements and
            // jt + 16 <= outs; scale/bias are `outs` long.
            unsafe {
                let base = (rb + r) * outs + jt;
                store8(first, scale, bias, relu, y, base, jt);
                store8(second, scale, bias, relu, y, base + 8, jt + 8);
            }
        }
        jt += 16;
    }
    // Column tail (< 16 remaining, e.g. the 13-class head): the scalar
    // backend's 8-wide register tier plus a per-column remainder —
    // exact by integer associativity, so bit-equality is free.
    for r in 0..R {
        let xr = &x[(rb + r) * ins..(rb + r + 1) * ins];
        let yr = &mut y[(rb + r) * outs..(rb + r + 1) * outs];
        let mut jc = jt;
        while jc + 8 <= outs {
            let mut acc = [0i32; 8];
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0 {
                    continue;
                }
                let xi = i32::from(xi);
                let wr = &w[i * outs + jc..i * outs + jc + 8];
                for (a, &wij) in acc.iter_mut().zip(wr) {
                    *a = a.wrapping_add(xi * i32::from(wij));
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                let v = a as f32 * scale[jc + l] + bias[jc + l];
                yr[jc + l] = if relu && v < 0.0 { 0.0 } else { v };
            }
            jc += 8;
        }
        for j in jc..outs {
            let mut acc = 0i32;
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0 {
                    continue;
                }
                acc = acc.wrapping_add(i32::from(xi) * i32::from(w[i * outs + j]));
            }
            let v = acc as f32 * scale[j] + bias[j];
            yr[j] = if relu && v < 0.0 { 0.0 } else { v };
        }
    }
}

/// Requantizes one 8-lane i32 accumulator group and stores it:
/// `cvt(acc) · scale + bias`, optional `max(+0.0, ·)` — the same
/// single-rounded expression per element as the scalar backend (zero
/// operand first in the max, preserving NaN payloads and `-0.0`
/// exactly like the scalar `if v < 0.0` clamp).
///
/// Safety requirement (beyond AVX2): `col + 8 <= scale.len()` and
/// `base + 8 <= y.len()`.
#[target_feature(enable = "avx2")]
unsafe fn store8(
    acc: __m256i,
    scale: &[f32],
    bias: &[f32],
    relu: bool,
    y: &mut [f32],
    base: usize,
    col: usize,
) {
    // SAFETY: caller guarantees lanes [col, col+8) are inside
    // scale/bias and [base, base+8) inside y.
    unsafe {
        let sv = _mm256_loadu_ps(scale.as_ptr().add(col));
        let bv = _mm256_loadu_ps(bias.as_ptr().add(col));
        let mut v: __m256 = _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc), sv), bv);
        if relu {
            v = _mm256_max_ps(_mm256_setzero_ps(), v);
        }
        _mm256_storeu_ps(y.as_mut_ptr().add(base), v);
    }
}
