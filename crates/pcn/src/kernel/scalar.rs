//! The two scalar backends: the reference loop and the cache-blocked
//! register-tiled loop. Both are safe code; both define (and must keep)
//! the accumulation order every other backend reproduces bit-for-bit.

use super::LinearTask;

/// The reference schedule: for each row, seed the output with the bias,
/// then stream inputs outermost, scattering `xi · w[i, ·]` into the
/// output row. Zero inputs are skipped entirely (the ReLU-sparsity
/// shortcut); each output element therefore accumulates contributions
/// in ascending input order — the order every backend must match.
///
/// The loop body is deliberately the seed's original `Matrix::linear`
/// implementation, kept **byte-for-byte** (indexed scatter and all):
/// this backend is the immutable semantic anchor *and* the fixed
/// yardstick the `BENCH_runtime.json` speedup trajectory measures
/// against, so its shape must not drift between PRs. It is never
/// auto-selected — [`super::fastest_supported`] always prefers
/// [`blocked`] — so its speed costs nothing in production.
pub(super) fn reference(task: &LinearTask<'_>, y: &mut [f32]) {
    let &LinearTask {
        x,
        rows,
        ins,
        w,
        outs,
        bias,
        relu,
    } = task;
    for r in 0..rows {
        let xr = &x[r * ins..(r + 1) * ins];
        let yr = &mut y[r * outs..(r + 1) * outs];
        yr.copy_from_slice(bias);
        for (i, &xi) in xr.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let wrow = &w[i * outs..(i + 1) * outs];
            for (j, &wij) in wrow.iter().enumerate() {
                yr[j] += xi * wij;
            }
        }
        if relu {
            for o in yr.iter_mut() {
                if *o < 0.0 {
                    *o = 0.0;
                }
            }
        }
    }
}

/// The cache-blocked schedule: 32 output columns accumulate in
/// registers while the input index streams innermost, so each output
/// tile is written to memory exactly once and the weight matrix is read
/// straight through. An 8-wide tier catches narrow heads (e.g. the
/// 13-class segmentation output), then a scalar tail. Per output
/// element the accumulation order is identical to [`reference`].
pub(super) fn blocked(task: &LinearTask<'_>, y: &mut [f32]) {
    const TILE: usize = 32;
    let &LinearTask {
        x,
        rows,
        ins,
        w,
        outs,
        bias,
        relu,
    } = task;
    for r in 0..rows {
        let xr = &x[r * ins..(r + 1) * ins];
        let mut jt = 0usize;
        // Full tiles: the accumulator array stays in vector registers
        // across the whole input stream.
        while jt + TILE <= outs {
            let mut acc = [0.0f32; TILE];
            acc.copy_from_slice(&bias[jt..jt + TILE]);
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let wr = &w[i * outs + jt..i * outs + jt + TILE];
                for l in 0..TILE {
                    acc[l] += xi * wr[l];
                }
            }
            if relu {
                for a in &mut acc {
                    if *a < 0.0 {
                        *a = 0.0;
                    }
                }
            }
            y[r * outs + jt..r * outs + jt + TILE].copy_from_slice(&acc);
            jt += TILE;
        }
        // Remainder columns: an 8-wide tier, then scalar.
        while jt + 8 <= outs {
            let mut acc = [0.0f32; 8];
            acc.copy_from_slice(&bias[jt..jt + 8]);
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let wr = &w[i * outs + jt..i * outs + jt + 8];
                for l in 0..8 {
                    acc[l] += xi * wr[l];
                }
            }
            if relu {
                for a in &mut acc {
                    if *a < 0.0 {
                        *a = 0.0;
                    }
                }
            }
            y[r * outs + jt..r * outs + jt + 8].copy_from_slice(&acc);
            jt += 8;
        }
        for j in jt..outs {
            let mut a = bias[j];
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                a += xi * w[i * outs + j];
            }
            y[r * outs + j] = if relu && a < 0.0 { 0.0 } else { a };
        }
    }
}
