//! The scalar int8 GEMM backend — the semantic anchor of the quantized
//! path, exactly as [`super::scalar::reference`] anchors the f32 path.
//!
//! Arithmetic contract (every int8 backend must match it bit-for-bit):
//!
//! * each output element accumulates `xq[i] · wq[i, j]` products in a
//!   **wrapping `i32`** accumulator. Integer addition modulo 2³² is
//!   associative and commutative, so — unlike the f32 kernels — the
//!   accumulation *order* is free and bit-equality costs nothing: this
//!   backend may tile for registers and the SIMD backend may reorder
//!   at will, and the accumulators still land on identical bits. (For
//!   every shape in this workspace the accumulator never actually
//!   wraps: `|product| ≤ 127² = 16129` and layer inputs stay well
//!   below the ~133 000 inputs that could reach `i32::MAX`.)
//! * quantized zeros may be skipped: `0 · w` contributes exactly `0`,
//!   so the ReLU-sparsity shortcut stays a pure speed choice.
//! * the store requantizes with **one** f32 expression per element —
//!   `acc as f32 * scale[j] + bias[j]`, then the scalar ReLU clamp
//!   (`if y < 0.0 { 0.0 }`). Each step rounds once, so any backend
//!   computing the same expression element-wise lands on identical
//!   bits.
//!
//! The schedule mirrors the f32 `blocked` kernel: 16 output columns
//! accumulate in a register tile while the input index streams
//! innermost (zero-skip included), then an 8-wide tier for narrow
//! heads, then a scalar tail — each output is written to memory exactly
//! once, fused with the requantize+ReLU. (16, not the f32 kernel's 32:
//! baseline `x86_64` has no SSE4.1 `pmulld`, so the integer MACs stay
//! scalar and a wider tile only spills — the int8 *speed* story lives
//! in the AVX2 backend; this one is the always-available anchor.)

use super::QuantTask;

/// Requantizes one accumulator: the contract's single-rounded store
/// expression.
#[inline]
fn requant(acc: i32, scale: f32, bias: f32, relu: bool) -> f32 {
    let v = acc as f32 * scale + bias;
    if relu && v < 0.0 {
        0.0
    } else {
        v
    }
}

/// The blocked scalar int8 schedule (see the [module docs](self)).
pub(super) fn scalar(task: &QuantTask<'_>, y: &mut [f32]) {
    const TILE: usize = 16;
    let &QuantTask {
        x,
        rows,
        ins,
        w,
        outs,
        scale,
        bias,
        relu,
    } = task;
    for r in 0..rows {
        let xr = &x[r * ins..(r + 1) * ins];
        let yr = &mut y[r * outs..(r + 1) * outs];
        let mut jt = 0usize;
        // Full tiles: the accumulator array stays in registers across
        // the whole input stream.
        while jt + TILE <= outs {
            let mut acc = [0i32; TILE];
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0 {
                    continue;
                }
                let xi = i32::from(xi);
                let wr = &w[i * outs + jt..i * outs + jt + TILE];
                for (a, &wij) in acc.iter_mut().zip(wr) {
                    *a = a.wrapping_add(xi * i32::from(wij));
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                yr[jt + l] = requant(a, scale[jt + l], bias[jt + l], relu);
            }
            jt += TILE;
        }
        // Remainder columns: an 8-wide tier, then scalar.
        while jt + 8 <= outs {
            let mut acc = [0i32; 8];
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0 {
                    continue;
                }
                let xi = i32::from(xi);
                let wr = &w[i * outs + jt..i * outs + jt + 8];
                for (a, &wij) in acc.iter_mut().zip(wr) {
                    *a = a.wrapping_add(xi * i32::from(wij));
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                yr[jt + l] = requant(a, scale[jt + l], bias[jt + l], relu);
            }
            jt += 8;
        }
        for j in jt..outs {
            let mut a = 0i32;
            for (i, &xi) in xr.iter().enumerate() {
                if xi == 0 {
                    continue;
                }
                a = a.wrapping_add(i32::from(xi) * i32::from(w[i * outs + j]));
            }
            yr[j] = requant(a, scale[j], bias[j], relu);
        }
    }
}
