//! Pluggable matmul kernel backends with one-time runtime dispatch.
//!
//! Every dense layer in the workspace funnels through a single
//! primitive: `y = x · w + bias`, applied row-wise with an optional
//! fused ReLU, where a **zero input is skipped** rather than multiplied
//! (the ReLU-sparsity shortcut the cost models count). This module owns
//! that primitive and offers several implementations — a
//! [`LinearKernel`] — behind one contract:
//!
//! > Every backend accumulates each output element in exactly the same
//! > order as [`LinearKernel::Reference`] (ascending input index,
//! > zero inputs skipped, multiply-then-add with no FMA contraction), so
//! > all backends produce **bit-identical** results — logits, not
//! > "close enough". Only the memory-access schedule and the instruction
//! > selection differ. (One carve-out: when several NaNs merge into one
//! > accumulator, the result is NaN on every backend but its *payload*
//! > is unspecified — the surviving payload depends on operand order,
//! > which the compiler may legally commute even between two builds of
//! > the reference loop.)
//!
//! That contract is what lets the whole test suite stay anchored on one
//! reference path while ISA-specific backends slot in underneath — in
//! the spirit of a microkernel decomposition, mechanism (the MAC loops)
//! is separated from policy (which loop to run), and the policy is
//! decided **once** per process:
//!
//! * [`active`] picks the fastest supported backend on first use
//!   (runtime CPU-feature detection via `is_x86_feature_detected!`) and
//!   caches it for the lifetime of the process;
//! * the `HGPCN_KERNEL` environment variable force-overrides the choice
//!   (`auto`, `reference`, `blocked`, `simd`/`avx2`) for tests, CI
//!   feature-matrix runs, and performance triage. Forcing a backend the
//!   platform cannot run degrades to the best scalar backend instead of
//!   refusing to serve.
//!
//! The AVX2 backend only exists under the `simd` cargo feature; without
//! it the crate compiles with no unsafe code at all.
//!
//! The quantized inference path plugs in through the same seam: an
//! [`Int8Kernel`] owns the i32-accumulating i8 GEMM primitive behind
//! the [`crate::quant`] module (scalar always, AVX2 `vpmaddwd` under
//! `simd`), and [`active_int8`] derives its selection from the **same**
//! process-wide decision — one `HGPCN_KERNEL` override steers both
//! precisions, forced fallbacks included.

mod int8;
mod scalar;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod int8_avx2;

use std::sync::OnceLock;

use crate::Matrix;

/// One dense-layer task: `y = x · w + bias` (+ optional ReLU) over
/// row-major slices. `x` is `rows × ins`, `w` is `ins × outs`, `bias`
/// has length `outs`; the output buffer is `rows × outs`.
#[derive(Clone, Copy)]
pub(crate) struct LinearTask<'a> {
    /// Row-major input activations, `rows × ins`.
    pub x: &'a [f32],
    /// Number of activation rows.
    pub rows: usize,
    /// Input features per row.
    pub ins: usize,
    /// Row-major weights, `ins × outs`.
    pub w: &'a [f32],
    /// Output features per row.
    pub outs: usize,
    /// Per-output bias, length `outs`.
    pub bias: &'a [f32],
    /// Whether to fuse `max(0, ·)` into the store.
    pub relu: bool,
}

/// A matmul backend. All variants are bit-identical in results; they
/// differ only in speed. See the [module docs](self) for the contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LinearKernel {
    /// The original scalar loop: streams inputs outermost and
    /// accumulates directly into the output row. The semantic anchor
    /// every other backend must match bit-for-bit.
    Reference,
    /// Cache-blocked scalar: 32/8-wide register tiles of output columns
    /// accumulate across the whole input stream, so each output tile is
    /// written to memory exactly once (PR 2's `linear_fused` schedule).
    Blocked,
    /// Explicit AVX2 `std::arch` intrinsics: 8-lane vectors across
    /// output columns in 32/16/8-column tiles, scalar tail. Uses
    /// separate multiply and add (no FMA) to keep scalar rounding.
    /// Only compiled under the `simd` cargo feature; only *selected*
    /// when the CPU reports AVX2.
    #[cfg(feature = "simd")]
    Avx2,
}

impl LinearKernel {
    /// Stable lower-case name, as reported in `RuntimeReport` and
    /// `BENCH_runtime.json` and accepted back by [`LinearKernel::from_name`].
    pub fn name(&self) -> &'static str {
        match self {
            LinearKernel::Reference => "reference",
            LinearKernel::Blocked => "blocked",
            #[cfg(feature = "simd")]
            LinearKernel::Avx2 => "avx2",
        }
    }

    /// Parses a backend name (`reference`, `blocked`, `simd`/`avx2`).
    /// Returns `None` for unknown names and for backends compiled out
    /// (e.g. `avx2` without the `simd` feature).
    pub fn from_name(name: &str) -> Option<LinearKernel> {
        match name {
            "reference" => Some(LinearKernel::Reference),
            "blocked" => Some(LinearKernel::Blocked),
            #[cfg(feature = "simd")]
            "simd" | "avx2" => Some(LinearKernel::Avx2),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this backend. Scalar
    /// backends always can; AVX2 requires runtime feature detection to
    /// succeed on an `x86_64` host.
    pub fn is_supported(&self) -> bool {
        match self {
            LinearKernel::Reference | LinearKernel::Blocked => true,
            #[cfg(feature = "simd")]
            LinearKernel::Avx2 => avx2_detected(),
        }
    }

    /// Every backend compiled into this build, fastest-last. Sweep this
    /// (filtered by [`LinearKernel::is_supported`]) in equivalence tests
    /// and benches.
    pub fn all() -> &'static [LinearKernel] {
        &[
            LinearKernel::Reference,
            LinearKernel::Blocked,
            #[cfg(feature = "simd")]
            LinearKernel::Avx2,
        ]
    }

    /// Runs this backend: `x · weights + bias`, row-wise, with an
    /// optional fused ReLU — the primitive behind
    /// [`Matrix::linear`] / [`Matrix::linear_fused`], callable on a
    /// *specific* backend for equivalence tests and benches.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, and when invoked on a backend the
    /// running CPU does not support (see [`LinearKernel::is_supported`]).
    pub fn apply(&self, x: &Matrix, weights: &Matrix, bias: &[f32], relu: bool) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.apply_into(x, weights, bias, relu, &mut out);
        out
    }

    /// [`LinearKernel::apply`] writing into a caller-owned matrix, which
    /// is reshaped (reusing its allocation when capacity suffices) and
    /// fully overwritten — the hot batched path ping-pongs two such
    /// buffers through an MLP instead of allocating one output per
    /// layer.
    ///
    /// # Panics
    ///
    /// As [`LinearKernel::apply`].
    pub fn apply_into(
        &self,
        x: &Matrix,
        weights: &Matrix,
        bias: &[f32],
        relu: bool,
        out: &mut Matrix,
    ) {
        assert_eq!(x.cols(), weights.rows(), "inner dimensions must agree");
        assert_eq!(bias.len(), weights.cols(), "bias width must match output");
        out.reshape_for_overwrite(x.rows(), weights.cols());
        let task = LinearTask {
            x: x.as_slice(),
            rows: x.rows(),
            ins: x.cols(),
            w: weights.as_slice(),
            outs: weights.cols(),
            bias,
            relu,
        };
        self.run(&task, out.as_mut_slice());
    }

    /// Backend dispatch over validated slices.
    pub(crate) fn run(&self, task: &LinearTask<'_>, y: &mut [f32]) {
        debug_assert_eq!(task.x.len(), task.rows * task.ins);
        debug_assert_eq!(task.w.len(), task.ins * task.outs);
        debug_assert_eq!(task.bias.len(), task.outs);
        debug_assert_eq!(y.len(), task.rows * task.outs);
        match self {
            LinearKernel::Reference => scalar::reference(task, y),
            LinearKernel::Blocked => scalar::blocked(task, y),
            #[cfg(feature = "simd")]
            LinearKernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    assert!(
                        avx2_detected(),
                        "the AVX2 kernel was invoked on a CPU without AVX2; \
                         use kernel::active() for checked dispatch"
                    );
                    avx2::run(task, y);
                }
                #[cfg(not(target_arch = "x86_64"))]
                panic!("the AVX2 kernel is only available on x86_64 hosts");
            }
        }
    }
}

/// One quantized dense-layer task: `y = dequant(xq · wq) + bias`
/// (+ optional ReLU) over row-major slices. `x` is `rows × ins` i8
/// (per-tensor symmetric activations), `w` is `ins × outs` i8
/// (per-channel symmetric weights), `scale` holds the per-output-channel
/// requantization multiplier (`a_scale · w_scale[j]`), `bias` is the
/// f32 bias; the output buffer is `rows × outs` f32.
#[derive(Clone, Copy)]
pub(crate) struct QuantTask<'a> {
    /// Row-major quantized activations, `rows × ins`.
    pub x: &'a [i8],
    /// Number of activation rows.
    pub rows: usize,
    /// Input features per row.
    pub ins: usize,
    /// Row-major quantized weights, `ins × outs`.
    pub w: &'a [i8],
    /// Output features per row.
    pub outs: usize,
    /// Per-output requantization scale, length `outs`.
    pub scale: &'a [f32],
    /// Per-output f32 bias, length `outs`.
    pub bias: &'a [f32],
    /// Whether to fuse `max(0, ·)` into the requantizing store.
    pub relu: bool,
}

/// An int8 GEMM backend: i32-accumulating i8×i8 multiply-accumulate
/// with a fused f32 requantize+ReLU store. Like [`LinearKernel`], all
/// variants are bit-identical in results (integer accumulation is
/// exact, and the requantize store is one identical single-rounded f32
/// expression per element); they differ only in speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Int8Kernel {
    /// The scalar reference loop — always available, the semantic
    /// anchor of the quantized path.
    Scalar,
    /// Explicit AVX2 `vpmaddwd` tiles (see `kernel/int8_avx2.rs`).
    /// Only compiled under the `simd` cargo feature; only *selected*
    /// when the CPU reports AVX2.
    #[cfg(feature = "simd")]
    Avx2,
}

impl Int8Kernel {
    /// Stable lower-case name (`int8-scalar` / `int8-avx2`), as
    /// reported in `RuntimeReport` and `BENCH_runtime.json`.
    pub fn name(&self) -> &'static str {
        match self {
            Int8Kernel::Scalar => "int8-scalar",
            #[cfg(feature = "simd")]
            Int8Kernel::Avx2 => "int8-avx2",
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_supported(&self) -> bool {
        match self {
            Int8Kernel::Scalar => true,
            #[cfg(feature = "simd")]
            Int8Kernel::Avx2 => avx2_detected(),
        }
    }

    /// Every backend compiled into this build, fastest-last (the sweep
    /// order for equivalence tests and benches, filtered by
    /// [`Int8Kernel::is_supported`]).
    pub fn all() -> &'static [Int8Kernel] {
        &[
            Int8Kernel::Scalar,
            #[cfg(feature = "simd")]
            Int8Kernel::Avx2,
        ]
    }

    /// The int8 backend riding on a given f32 backend selection — the
    /// single `HGPCN_KERNEL` / [`PointNet::with_kernel`] knob steers
    /// both precisions: a forced scalar f32 backend (`reference`,
    /// `blocked`) forces the scalar int8 backend, and a SIMD request
    /// that degrades on the f32 side degrades identically here.
    ///
    /// [`PointNet::with_kernel`]: crate::PointNet::with_kernel
    pub fn for_linear(kernel: LinearKernel) -> Int8Kernel {
        match kernel {
            LinearKernel::Reference | LinearKernel::Blocked => Int8Kernel::Scalar,
            #[cfg(feature = "simd")]
            LinearKernel::Avx2 => Int8Kernel::Avx2,
        }
    }

    /// Backend dispatch over validated slices.
    pub(crate) fn run(&self, task: &QuantTask<'_>, y: &mut [f32]) {
        debug_assert_eq!(task.x.len(), task.rows * task.ins);
        debug_assert_eq!(task.w.len(), task.ins * task.outs);
        debug_assert_eq!(task.scale.len(), task.outs);
        debug_assert_eq!(task.bias.len(), task.outs);
        debug_assert_eq!(y.len(), task.rows * task.outs);
        match self {
            Int8Kernel::Scalar => int8::scalar(task, y),
            #[cfg(feature = "simd")]
            Int8Kernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    assert!(
                        avx2_detected(),
                        "the AVX2 int8 kernel was invoked on a CPU without AVX2; \
                         use Int8Kernel::for_linear(kernel::active()) for checked dispatch"
                    );
                    int8_avx2::run(task, y);
                }
                #[cfg(not(target_arch = "x86_64"))]
                panic!("the AVX2 int8 kernel is only available on x86_64 hosts");
            }
        }
    }
}

/// The process-wide int8 backend: [`Int8Kernel::for_linear`] applied to
/// [`active`], so one `HGPCN_KERNEL` override steers both precisions
/// (and a forced-but-unavailable SIMD request degrades to the scalar
/// int8 backend, mirroring the f32 fallback).
pub fn active_int8() -> Int8Kernel {
    Int8Kernel::for_linear(active())
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_detected() -> bool {
    is_x86_feature_detected!("avx2")
}

#[cfg(all(feature = "simd", not(target_arch = "x86_64")))]
fn avx2_detected() -> bool {
    false
}

/// The fastest backend the build *and* the running CPU support:
/// AVX2 when the `simd` feature is compiled in and detection succeeds,
/// otherwise the blocked scalar kernel.
pub fn fastest_supported() -> LinearKernel {
    #[cfg(feature = "simd")]
    if LinearKernel::Avx2.is_supported() {
        return LinearKernel::Avx2;
    }
    LinearKernel::Blocked
}

/// Resolves an override request (the `HGPCN_KERNEL` value) to a
/// runnable backend. Empty / `auto` selects [`fastest_supported`];
/// naming a backend the platform cannot run (e.g. `simd` without the
/// feature or without AVX2 hardware) **degrades to the best scalar
/// backend** so a forced configuration still serves.
///
/// # Panics
///
/// Panics on names that are not `auto`, `reference`, `blocked`, `simd`
/// or `avx2` — a typo in CI must fail loudly, not silently serve the
/// wrong backend.
pub fn resolve_override(request: &str) -> LinearKernel {
    match request {
        "" | "auto" => fastest_supported(),
        "reference" => LinearKernel::Reference,
        "blocked" => LinearKernel::Blocked,
        "simd" | "avx2" => match LinearKernel::from_name(request) {
            Some(k) if k.is_supported() => k,
            // Compiled out or CPU lacks AVX2: degrade, don't refuse.
            _ => LinearKernel::Blocked,
        },
        other => panic!(
            "HGPCN_KERNEL: unknown backend {other:?} \
             (expected auto | reference | blocked | simd | avx2)"
        ),
    }
}

static ACTIVE: OnceLock<LinearKernel> = OnceLock::new();

/// The process-wide backend every [`Matrix::linear`] /
/// [`Matrix::linear_fused`] call dispatches to. Decided once, on first
/// use: the `HGPCN_KERNEL` override if set, otherwise
/// [`fastest_supported`] via runtime CPU-feature detection.
pub fn active() -> LinearKernel {
    *ACTIVE.get_or_init(|| {
        let request = std::env::var("HGPCN_KERNEL").unwrap_or_default();
        resolve_override(&request)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Matrix, Vec<f32>) {
        let x = Matrix::from_vec(
            3,
            5,
            (0..15)
                .map(|i| {
                    if i % 4 == 0 {
                        0.0
                    } else {
                        (i as f32 * 0.61).sin() * 2.0 - 0.4
                    }
                })
                .collect(),
        );
        let w = Matrix::from_vec(
            5,
            7,
            (0..35).map(|i| (i as f32 * 0.37).cos() * 1.5).collect(),
        );
        let bias = (0..7).map(|i| i as f32 * 0.2 - 0.7).collect();
        (x, w, bias)
    }

    #[test]
    fn every_supported_backend_matches_reference() {
        let (x, w, bias) = toy();
        for relu in [false, true] {
            let want = LinearKernel::Reference.apply(&x, &w, &bias, relu);
            for k in LinearKernel::all() {
                if !k.is_supported() {
                    continue;
                }
                assert_eq!(
                    k.apply(&x, &w, &bias, relu),
                    want,
                    "{} relu={relu}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for k in LinearKernel::all() {
            assert_eq!(LinearKernel::from_name(k.name()), Some(*k));
        }
        assert_eq!(LinearKernel::from_name("mmx"), None);
    }

    #[test]
    fn override_resolution() {
        assert_eq!(resolve_override("reference"), LinearKernel::Reference);
        assert_eq!(resolve_override("blocked"), LinearKernel::Blocked);
        assert_eq!(resolve_override(""), fastest_supported());
        assert_eq!(resolve_override("auto"), fastest_supported());
        // A forced SIMD request always resolves to something runnable.
        assert!(resolve_override("simd").is_supported());
        assert!(resolve_override("avx2").is_supported());
    }

    #[test]
    #[should_panic(expected = "unknown backend")]
    fn unknown_override_panics() {
        let _ = resolve_override("sse9");
    }

    #[test]
    fn active_is_stable_and_supported() {
        let first = active();
        assert!(first.is_supported());
        assert_eq!(active(), first, "selection is decided once per process");
    }

    #[test]
    fn int8_backends_are_bit_identical() {
        let ins = 19usize;
        let outs = 21usize; // one 16-tile plus a 5-column scalar tail
        let rows = 6usize; // one 4-row block plus a 2-row remainder
        let x: Vec<i8> = (0..rows * ins)
            .map(|i| match i % 7 {
                0 | 1 => 0,
                2 => -127,
                3 => 127,
                _ => ((i * 37) % 251) as i8,
            })
            .collect();
        let w: Vec<i8> = (0..ins * outs)
            .map(|i| ((i * 73) % 255) as u8 as i8)
            .collect();
        let scale: Vec<f32> = (0..outs).map(|j| 0.01 + j as f32 * 0.003).collect();
        let bias: Vec<f32> = (0..outs).map(|j| j as f32 * 0.2 - 1.7).collect();
        for relu in [false, true] {
            let task = QuantTask {
                x: &x,
                rows,
                ins,
                w: &w,
                outs,
                scale: &scale,
                bias: &bias,
                relu,
            };
            let mut want = vec![0.0f32; rows * outs];
            Int8Kernel::Scalar.run(&task, &mut want);
            for k in Int8Kernel::all() {
                if !k.is_supported() {
                    continue;
                }
                let mut got = vec![0.0f32; rows * outs];
                k.run(&task, &mut got);
                let same = got
                    .iter()
                    .zip(&want)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{} relu={relu}", k.name());
            }
        }
    }

    #[test]
    fn int8_backend_rides_the_linear_selection() {
        assert_eq!(
            Int8Kernel::for_linear(LinearKernel::Reference),
            Int8Kernel::Scalar
        );
        assert_eq!(
            Int8Kernel::for_linear(LinearKernel::Blocked),
            Int8Kernel::Scalar
        );
        #[cfg(feature = "simd")]
        assert_eq!(Int8Kernel::for_linear(LinearKernel::Avx2), Int8Kernel::Avx2);
        // The process-wide int8 choice is runnable and consistent with
        // the f32 choice (including any HGPCN_KERNEL forced fallback).
        let k = active_int8();
        assert!(k.is_supported());
        assert_eq!(k, Int8Kernel::for_linear(active()));
    }
}
