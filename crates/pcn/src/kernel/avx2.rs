//! The explicit-AVX2 backend (`simd` feature, x86_64 only).
//!
//! Vectorizes **across output columns**: each 8-lane `__m256`
//! accumulator owns 8 output elements, seeded from the bias and updated
//! once per non-zero input with `add(acc, mul(splat(xi), w[i, j..j+8]))`.
//! Because lanes never interact and the input index still streams in
//! ascending order with the same zero-skip as the scalar backends, every
//! output element sees exactly the reference accumulation sequence —
//! results are bit-identical, not approximately equal. One deliberate
//! instruction choice preserves that: separate `vmulps` + `vaddps`,
//! never FMA — a fused multiply-add rounds once where scalar code rounds
//! twice, which would change low bits. ReLU is `max(+0.0, acc)` with the
//! **zero operand first** — x86 `maxps` returns the second operand on
//! NaN and on `±0.0` ties, so this ordering propagates NaN and preserves
//! `-0.0` exactly like the scalar `if a < 0.0 { 0.0 }` clamp.
//!
//! Two row strategies, picked per 4-row block by measured non-zero
//! density (both bit-identical, so the chooser only moves time):
//!
//! * **near-dense** blocks take a 4-row × 16-column register tile: one
//!   weight load feeds four rows, and the rarely-taken skip branches
//!   predict perfectly;
//! * **sparse** blocks (post-ReLU activations are ~half exact zeros in
//!   an unpredictable pattern, where a mispredicted skip branch costs
//!   more than it saves) first compact each row's non-zeros into
//!   index/value scratch with a **branchless** scan, then stream the
//!   survivors of **two rows in lockstep** through 32/16/8-column tiles
//!   with no branches in the MAC loop at all. The pairing doubles the
//!   independent add-latency chains in flight (a single row's four
//!   accumulators leave half the FP issue width idle waiting on
//!   `vaddps` latency); each row still owns its accumulators and sees
//!   its own non-zeros in ascending index order, so the accumulation
//!   sequence is untouched.
//!
//! Column remainders end in a scalar tail that is byte-for-byte the
//! reference loop.
//!
//! This module is the single sanctioned hole in the crate's
//! `#![deny(unsafe_code)]`: all `unsafe` is confined to loads/stores at
//! offsets the surrounding slice arithmetic has already bounds-checked,
//! plus the `target_feature` call gate, and each site carries a
//! `SAFETY:` note.
#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m256, __m256i, _mm256_add_ps, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_maskload_ps,
    _mm256_maskstore_ps, _mm256_max_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
    _mm256_storeu_ps,
};

use super::LinearTask;

/// Widest input row the sparse-compaction scratch covers (the largest
/// layer input in the workspace's networks is 768 + 13); wider rows fall
/// back to the branchy path, which is correct for any width.
const COMPACT_CAP: usize = 1024;

/// Dispatch wrapper: proves AVX2 is available, then enters the
/// `target_feature` kernel.
///
/// The caller ([`LinearKernel::run`](super::LinearKernel::run)) has
/// already verified `is_x86_feature_detected!("avx2")`, but this wrapper
/// re-asserts it so the unsafe call below is locally sound no matter
/// who calls.
pub(super) fn run(task: &LinearTask<'_>, y: &mut [f32]) {
    assert!(
        is_x86_feature_detected!("avx2"),
        "AVX2 kernel on a CPU without AVX2"
    );
    // SAFETY: the assertion above guarantees the CPU executes AVX2;
    // `gemm` has no other safety requirements beyond its slice
    // invariants, which `LinearTask` construction and the shape asserts
    // in `LinearKernel::apply` establish.
    unsafe { gemm(task, y) }
}

/// The AVX2 matmul. Safety requirement: the caller must ensure the CPU
/// supports AVX2 (enforced by [`run`]). All memory accesses stay inside
/// the task's slices: `x` is `rows × ins`, `w` is `ins × outs`, `bias`
/// is `outs`, `y` is `rows × outs`, and every vector load/store below
/// is guarded by an explicit `rb + 4 <= rows` / `jt + width <= outs`
/// loop bound.
#[target_feature(enable = "avx2")]
unsafe fn gemm(task: &LinearTask<'_>, y: &mut [f32]) {
    let &LinearTask { x, rows, ins, .. } = task;
    let mut idx = [0u32; COMPACT_CAP];
    let mut val = [0.0f32; COMPACT_CAP];
    let mut idx2 = [0u32; COMPACT_CAP];
    let mut val2 = [0.0f32; COMPACT_CAP];
    let compactable = ins <= COMPACT_CAP;
    let mut rb = 0usize;
    while rb + 4 <= rows {
        let quad = &x[rb * ins..(rb + 4) * ins];
        let nnz = quad.iter().filter(|&&v| v != 0.0).count();
        if !compactable || nnz * 10 >= quad.len() * 9 {
            // SAFETY: rb + 4 <= rows bounds the row block.
            unsafe { rows4(task, y, rb) };
        } else {
            // SAFETY: rb + 4 <= rows bounds both row pairs, and
            // ins <= COMPACT_CAP.
            unsafe {
                rows2_compact(task, y, rb, &mut idx, &mut val, &mut idx2, &mut val2);
                rows2_compact(task, y, rb + 2, &mut idx, &mut val, &mut idx2, &mut val2);
            }
        }
        rb += 4;
    }
    // Row remainder.
    for r in rb..rows {
        if compactable {
            // SAFETY: r < rows and ins <= COMPACT_CAP.
            unsafe { row1_compact(task, y, r, &mut idx, &mut val) };
        } else {
            // SAFETY: r < rows.
            unsafe { rows4_tail_row(task, y, r) };
        }
    }
}

/// Four rows (`rb..rb + 4`) through 16-column tiles: 8 accumulators
/// (4 rows × 2 vectors) stay in registers across the whole input
/// stream, and every weight-tile load is reused by four rows. Chosen
/// for near-dense blocks, where the per-row zero-skip branches almost
/// never fire and predict perfectly.
#[target_feature(enable = "avx2")]
unsafe fn rows4(task: &LinearTask<'_>, y: &mut [f32], rb: usize) {
    let &LinearTask {
        x,
        ins,
        w,
        outs,
        bias,
        relu,
        ..
    } = task;
    let x0 = &x[rb * ins..(rb + 1) * ins];
    let x1 = &x[(rb + 1) * ins..(rb + 2) * ins];
    let x2 = &x[(rb + 2) * ins..(rb + 3) * ins];
    let x3 = &x[(rb + 3) * ins..(rb + 4) * ins];
    let mut jt = 0usize;
    while jt + 16 <= outs {
        // SAFETY: jt + 16 <= outs = bias.len() bounds both loads.
        let (b0, b1) = unsafe {
            (
                _mm256_loadu_ps(bias.as_ptr().add(jt)),
                _mm256_loadu_ps(bias.as_ptr().add(jt + 8)),
            )
        };
        let (mut a00, mut a01) = (b0, b1);
        let (mut a10, mut a11) = (b0, b1);
        let (mut a20, mut a21) = (b0, b1);
        let (mut a30, mut a31) = (b0, b1);
        for i in 0..ins {
            // SAFETY: i < ins, so row i of `w` spans [i*outs, (i+1)*outs)
            // and jt + 16 <= outs keeps both 8-lane loads inside it.
            let wp = unsafe { w.as_ptr().add(i * outs + jt) };
            let (w0, w1) = unsafe { (_mm256_loadu_ps(wp), _mm256_loadu_ps(wp.add(8))) };
            // Per-row zero-skip, exactly as in the scalar backends.
            let xi0 = x0[i];
            if xi0 != 0.0 {
                let xv = _mm256_set1_ps(xi0);
                a00 = _mm256_add_ps(a00, _mm256_mul_ps(xv, w0));
                a01 = _mm256_add_ps(a01, _mm256_mul_ps(xv, w1));
            }
            let xi1 = x1[i];
            if xi1 != 0.0 {
                let xv = _mm256_set1_ps(xi1);
                a10 = _mm256_add_ps(a10, _mm256_mul_ps(xv, w0));
                a11 = _mm256_add_ps(a11, _mm256_mul_ps(xv, w1));
            }
            let xi2 = x2[i];
            if xi2 != 0.0 {
                let xv = _mm256_set1_ps(xi2);
                a20 = _mm256_add_ps(a20, _mm256_mul_ps(xv, w0));
                a21 = _mm256_add_ps(a21, _mm256_mul_ps(xv, w1));
            }
            let xi3 = x3[i];
            if xi3 != 0.0 {
                let xv = _mm256_set1_ps(xi3);
                a30 = _mm256_add_ps(a30, _mm256_mul_ps(xv, w0));
                a31 = _mm256_add_ps(a31, _mm256_mul_ps(xv, w1));
            }
        }
        if relu {
            a00 = relu8(a00);
            a01 = relu8(a01);
            a10 = relu8(a10);
            a11 = relu8(a11);
            a20 = relu8(a20);
            a21 = relu8(a21);
            a30 = relu8(a30);
            a31 = relu8(a31);
        }
        // SAFETY: rows rb..rb+4 of y each span `outs` elements and
        // jt + 16 <= outs.
        unsafe {
            let yp = y.as_mut_ptr();
            _mm256_storeu_ps(yp.add(rb * outs + jt), a00);
            _mm256_storeu_ps(yp.add(rb * outs + jt + 8), a01);
            _mm256_storeu_ps(yp.add((rb + 1) * outs + jt), a10);
            _mm256_storeu_ps(yp.add((rb + 1) * outs + jt + 8), a11);
            _mm256_storeu_ps(yp.add((rb + 2) * outs + jt), a20);
            _mm256_storeu_ps(yp.add((rb + 2) * outs + jt + 8), a21);
            _mm256_storeu_ps(yp.add((rb + 3) * outs + jt), a30);
            _mm256_storeu_ps(yp.add((rb + 3) * outs + jt + 8), a31);
        }
        jt += 16;
    }
    while jt + 8 <= outs {
        // SAFETY: jt + 8 <= outs bounds the bias load.
        let b0 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt)) };
        let (mut a0, mut a1, mut a2, mut a3) = (b0, b0, b0, b0);
        for i in 0..ins {
            // SAFETY: as in the 16-wide tier, with width 8.
            let w0 = unsafe { _mm256_loadu_ps(w.as_ptr().add(i * outs + jt)) };
            let xi0 = x0[i];
            if xi0 != 0.0 {
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(xi0), w0));
            }
            let xi1 = x1[i];
            if xi1 != 0.0 {
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_set1_ps(xi1), w0));
            }
            let xi2 = x2[i];
            if xi2 != 0.0 {
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_set1_ps(xi2), w0));
            }
            let xi3 = x3[i];
            if xi3 != 0.0 {
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_set1_ps(xi3), w0));
            }
        }
        if relu {
            a0 = relu8(a0);
            a1 = relu8(a1);
            a2 = relu8(a2);
            a3 = relu8(a3);
        }
        // SAFETY: jt + 8 <= outs inside each of the four rows.
        unsafe {
            let yp = y.as_mut_ptr();
            _mm256_storeu_ps(yp.add(rb * outs + jt), a0);
            _mm256_storeu_ps(yp.add((rb + 1) * outs + jt), a1);
            _mm256_storeu_ps(yp.add((rb + 2) * outs + jt), a2);
            _mm256_storeu_ps(yp.add((rb + 3) * outs + jt), a3);
        }
        jt += 8;
    }
    // Masked column tail (1–7 remaining columns) for all four rows.
    if jt < outs {
        for (r, xr) in [(rb, x0), (rb + 1, x1), (rb + 2, x2), (rb + 3, x3)] {
            // SAFETY: r < rows (row block bound) and jt < outs.
            unsafe {
                masked_tail(
                    xr,
                    w,
                    outs,
                    bias,
                    relu,
                    &mut y[r * outs..(r + 1) * outs],
                    jt,
                )
            };
        }
    }
}

/// Lane mask enabling the low `rem` (1–7) lanes of an 8-lane vector —
/// the sliding-window load over [`TAIL_MASKS`] that every masked column
/// tail shares. AVX masked loads read zeros in (and masked stores skip)
/// disabled lanes, which is what keeps sub-8 column tails both in
/// bounds and bit-identical to the scalar loop.
///
/// Safety requirement (beyond AVX2): `1 <= rem <= 7`.
#[target_feature(enable = "avx2")]
unsafe fn tail_mask(rem: usize) -> __m256i {
    debug_assert!((1..8).contains(&rem));
    // SAFETY: 1 <= rem <= 7, so 8 - rem is in 1..=7 and the load reads
    // 8 of the table's 16 entries.
    unsafe { _mm256_loadu_si256(TAIL_MASKS.as_ptr().add(8 - rem) as *const __m256i) }
}

/// The last `outs - jt` (1–7) columns of one row via [`tail_mask`]ed
/// loads/stores: inactive lanes load as zero and are never stored, so
/// active lanes see exactly the reference accumulation (branchy
/// zero-skip included — it skips whole vector steps here, same as the
/// scalar loop skips the row's contribution).
///
/// Safety requirement (beyond AVX2): `jt < outs` and `yr.len() == outs`.
#[target_feature(enable = "avx2")]
unsafe fn masked_tail(
    xr: &[f32],
    w: &[f32],
    outs: usize,
    bias: &[f32],
    relu: bool,
    yr: &mut [f32],
    jt: usize,
) {
    // SAFETY: jt < outs, so 1 <= outs - jt; callers enter only with
    // fewer than 8 columns left.
    let mask = unsafe { tail_mask(outs - jt) };
    // SAFETY: the mask enables exactly the lanes that remain inside
    // `bias` / each weight row / `yr` (all `outs` long).
    let mut a0 = unsafe { _mm256_maskload_ps(bias.as_ptr().add(jt), mask) };
    for (i, &xi) in xr.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let xv = _mm256_set1_ps(xi);
        // SAFETY: as above; masked lanes never touch memory past row
        // i's end.
        let w0 = unsafe { _mm256_maskload_ps(w.as_ptr().add(i * outs + jt), mask) };
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(xv, w0));
    }
    if relu {
        a0 = relu8(a0);
    }
    // SAFETY: stores only the in-bounds lanes.
    unsafe { _mm256_maskstore_ps(yr.as_mut_ptr().add(jt), mask, a0) };
}

/// Two adjacent rows with sparse compaction, streamed in **lockstep**:
/// each row is compacted into its own index/value scratch (exactly as in
/// [`row1_compact`]), then every column tile walks both survivor lists
/// side by side — one entry of row `r0` and one of row `r0 + 1` per
/// iteration, with each row owning its own accumulator set. Interleaving
/// the two rows doubles the number of independent add-latency chains in
/// flight, which is what the one-row loop is bound by (4 accumulators ×
/// ~4-cycle `vaddps` latency leaves half the FP issue width idle). The
/// shorter list's leftovers drain through per-row remainder loops.
///
/// Bit-identity is untouched: row `r0`'s accumulators only ever see row
/// `r0`'s non-zeros in ascending index order, and likewise for row
/// `r0 + 1` — the interleave reorders instructions *between* rows, never
/// the accumulation sequence *within* one output element.
///
/// Safety requirement (beyond AVX2): `r0 + 2 <= rows` and
/// `ins <= COMPACT_CAP`.
#[target_feature(enable = "avx2")]
unsafe fn rows2_compact(
    task: &LinearTask<'_>,
    y: &mut [f32],
    r0: usize,
    idx0: &mut [u32; COMPACT_CAP],
    val0: &mut [f32; COMPACT_CAP],
    idx1: &mut [u32; COMPACT_CAP],
    val1: &mut [f32; COMPACT_CAP],
) {
    let &LinearTask {
        x,
        ins,
        w,
        outs,
        bias,
        relu,
        ..
    } = task;
    let x0 = &x[r0 * ins..(r0 + 1) * ins];
    let x1 = &x[(r0 + 1) * ins..(r0 + 2) * ins];
    debug_assert!(ins <= COMPACT_CAP);

    // Branchless compaction of both rows (NaN != 0.0, so NaN inputs are
    // kept, as in every backend).
    let mut len0 = 0usize;
    for (i, &xi) in x0.iter().enumerate() {
        idx0[len0] = i as u32;
        val0[len0] = xi;
        len0 += (xi != 0.0) as usize;
    }
    let mut len1 = 0usize;
    for (i, &xi) in x1.iter().enumerate() {
        idx1[len1] = i as u32;
        val1[len1] = xi;
        len1 += (xi != 0.0) as usize;
    }
    let (idx0, val0) = (&idx0[..len0], &val0[..len0]);
    let (idx1, val1) = (&idx1[..len1], &val1[..len1]);
    let both = len0.min(len1);

    let y0 = r0 * outs;
    let y1 = (r0 + 1) * outs;
    let mut jt = 0usize;
    while jt + 32 <= outs {
        // SAFETY: jt + 32 <= outs = bias.len(), so lanes [jt, jt+32)
        // are in bounds (both rows seed from the same bias).
        let (mut a0, mut a1, mut a2, mut a3) = unsafe {
            (
                _mm256_loadu_ps(bias.as_ptr().add(jt)),
                _mm256_loadu_ps(bias.as_ptr().add(jt + 8)),
                _mm256_loadu_ps(bias.as_ptr().add(jt + 16)),
                _mm256_loadu_ps(bias.as_ptr().add(jt + 24)),
            )
        };
        let (mut b0, mut b1, mut b2, mut b3) = (a0, a1, a2, a3);
        for t in 0..both {
            let xa = _mm256_set1_ps(val0[t]);
            let xb = _mm256_set1_ps(val1[t]);
            // SAFETY: both indices are < ins (they index x0 / x1), so
            // their weight rows span [i*outs, (i+1)*outs) and
            // jt + 32 <= outs keeps every 8-lane load inside them.
            let wa = unsafe { w.as_ptr().add(idx0[t] as usize * outs + jt) };
            let wb = unsafe { w.as_ptr().add(idx1[t] as usize * outs + jt) };
            unsafe {
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xa, _mm256_loadu_ps(wa)));
                b0 = _mm256_add_ps(b0, _mm256_mul_ps(xb, _mm256_loadu_ps(wb)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(8))));
                b1 = _mm256_add_ps(b1, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(16))));
                b2 = _mm256_add_ps(b2, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(24))));
                b3 = _mm256_add_ps(b3, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(24))));
            }
        }
        // Whichever list is longer drains alone (same order as always).
        for t in both..len0 {
            let xa = _mm256_set1_ps(val0[t]);
            // SAFETY: as in the lockstep loop.
            let wa = unsafe { w.as_ptr().add(idx0[t] as usize * outs + jt) };
            unsafe {
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xa, _mm256_loadu_ps(wa)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(24))));
            }
        }
        for t in both..len1 {
            let xb = _mm256_set1_ps(val1[t]);
            // SAFETY: as in the lockstep loop.
            let wb = unsafe { w.as_ptr().add(idx1[t] as usize * outs + jt) };
            unsafe {
                b0 = _mm256_add_ps(b0, _mm256_mul_ps(xb, _mm256_loadu_ps(wb)));
                b1 = _mm256_add_ps(b1, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(8))));
                b2 = _mm256_add_ps(b2, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(16))));
                b3 = _mm256_add_ps(b3, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(24))));
            }
        }
        if relu {
            a0 = relu8(a0);
            a1 = relu8(a1);
            a2 = relu8(a2);
            a3 = relu8(a3);
            b0 = relu8(b0);
            b1 = relu8(b1);
            b2 = relu8(b2);
            b3 = relu8(b3);
        }
        // SAFETY: rows r0 and r0 + 1 of y each span `outs` elements and
        // jt + 32 <= outs.
        unsafe {
            let yp = y.as_mut_ptr();
            _mm256_storeu_ps(yp.add(y0 + jt), a0);
            _mm256_storeu_ps(yp.add(y0 + jt + 8), a1);
            _mm256_storeu_ps(yp.add(y0 + jt + 16), a2);
            _mm256_storeu_ps(yp.add(y0 + jt + 24), a3);
            _mm256_storeu_ps(yp.add(y1 + jt), b0);
            _mm256_storeu_ps(yp.add(y1 + jt + 8), b1);
            _mm256_storeu_ps(yp.add(y1 + jt + 16), b2);
            _mm256_storeu_ps(yp.add(y1 + jt + 24), b3);
        }
        jt += 32;
    }
    while jt + 16 <= outs {
        // SAFETY: jt + 16 <= outs bounds both 8-lane loads.
        let (mut a0, mut a1) = unsafe {
            (
                _mm256_loadu_ps(bias.as_ptr().add(jt)),
                _mm256_loadu_ps(bias.as_ptr().add(jt + 8)),
            )
        };
        let (mut b0, mut b1) = (a0, a1);
        for t in 0..both {
            let xa = _mm256_set1_ps(val0[t]);
            let xb = _mm256_set1_ps(val1[t]);
            // SAFETY: as in the 32-wide tier, with width 16.
            let wa = unsafe { w.as_ptr().add(idx0[t] as usize * outs + jt) };
            let wb = unsafe { w.as_ptr().add(idx1[t] as usize * outs + jt) };
            unsafe {
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xa, _mm256_loadu_ps(wa)));
                b0 = _mm256_add_ps(b0, _mm256_mul_ps(xb, _mm256_loadu_ps(wb)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(8))));
                b1 = _mm256_add_ps(b1, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(8))));
            }
        }
        for t in both..len0 {
            let xa = _mm256_set1_ps(val0[t]);
            // SAFETY: as above.
            let wa = unsafe { w.as_ptr().add(idx0[t] as usize * outs + jt) };
            unsafe {
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xa, _mm256_loadu_ps(wa)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(xa, _mm256_loadu_ps(wa.add(8))));
            }
        }
        for t in both..len1 {
            let xb = _mm256_set1_ps(val1[t]);
            // SAFETY: as above.
            let wb = unsafe { w.as_ptr().add(idx1[t] as usize * outs + jt) };
            unsafe {
                b0 = _mm256_add_ps(b0, _mm256_mul_ps(xb, _mm256_loadu_ps(wb)));
                b1 = _mm256_add_ps(b1, _mm256_mul_ps(xb, _mm256_loadu_ps(wb.add(8))));
            }
        }
        if relu {
            a0 = relu8(a0);
            a1 = relu8(a1);
            b0 = relu8(b0);
            b1 = relu8(b1);
        }
        // SAFETY: jt + 16 <= outs inside both rows of y.
        unsafe {
            let yp = y.as_mut_ptr();
            _mm256_storeu_ps(yp.add(y0 + jt), a0);
            _mm256_storeu_ps(yp.add(y0 + jt + 8), a1);
            _mm256_storeu_ps(yp.add(y1 + jt), b0);
            _mm256_storeu_ps(yp.add(y1 + jt + 8), b1);
        }
        jt += 16;
    }
    while jt + 8 <= outs {
        // SAFETY: jt + 8 <= outs bounds the load.
        let mut a0 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt)) };
        let mut b0 = a0;
        for t in 0..both {
            // SAFETY: as above, width 8.
            unsafe {
                let wa = w.as_ptr().add(idx0[t] as usize * outs + jt);
                let wb = w.as_ptr().add(idx1[t] as usize * outs + jt);
                a0 = _mm256_add_ps(
                    a0,
                    _mm256_mul_ps(_mm256_set1_ps(val0[t]), _mm256_loadu_ps(wa)),
                );
                b0 = _mm256_add_ps(
                    b0,
                    _mm256_mul_ps(_mm256_set1_ps(val1[t]), _mm256_loadu_ps(wb)),
                );
            }
        }
        for t in both..len0 {
            // SAFETY: as above.
            unsafe {
                let wa = w.as_ptr().add(idx0[t] as usize * outs + jt);
                a0 = _mm256_add_ps(
                    a0,
                    _mm256_mul_ps(_mm256_set1_ps(val0[t]), _mm256_loadu_ps(wa)),
                );
            }
        }
        for t in both..len1 {
            // SAFETY: as above.
            unsafe {
                let wb = w.as_ptr().add(idx1[t] as usize * outs + jt);
                b0 = _mm256_add_ps(
                    b0,
                    _mm256_mul_ps(_mm256_set1_ps(val1[t]), _mm256_loadu_ps(wb)),
                );
            }
        }
        if relu {
            a0 = relu8(a0);
            b0 = relu8(b0);
        }
        // SAFETY: jt + 8 <= outs inside both rows of y.
        unsafe {
            let yp = y.as_mut_ptr();
            _mm256_storeu_ps(yp.add(y0 + jt), a0);
            _mm256_storeu_ps(yp.add(y1 + jt), b0);
        }
        jt += 8;
    }
    // Masked tail for the last 1–7 columns of both rows.
    if jt < outs {
        // SAFETY: jt < outs bounds `rem` to 1..=7.
        let mask = unsafe { tail_mask(outs - jt) };
        // SAFETY: the mask enables exactly the lanes that remain inside
        // `bias` / each weight row / each y row (all `outs` long).
        let mut a0 = unsafe { _mm256_maskload_ps(bias.as_ptr().add(jt), mask) };
        let mut b0 = a0;
        for t in 0..both {
            // SAFETY: masked lanes never touch memory past the row ends.
            unsafe {
                let wa = _mm256_maskload_ps(w.as_ptr().add(idx0[t] as usize * outs + jt), mask);
                let wb = _mm256_maskload_ps(w.as_ptr().add(idx1[t] as usize * outs + jt), mask);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(val0[t]), wa));
                b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(val1[t]), wb));
            }
        }
        for t in both..len0 {
            // SAFETY: as above.
            unsafe {
                let wa = _mm256_maskload_ps(w.as_ptr().add(idx0[t] as usize * outs + jt), mask);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_set1_ps(val0[t]), wa));
            }
        }
        for t in both..len1 {
            // SAFETY: as above.
            unsafe {
                let wb = _mm256_maskload_ps(w.as_ptr().add(idx1[t] as usize * outs + jt), mask);
                b0 = _mm256_add_ps(b0, _mm256_mul_ps(_mm256_set1_ps(val1[t]), wb));
            }
        }
        if relu {
            a0 = relu8(a0);
            b0 = relu8(b0);
        }
        // SAFETY: stores only the in-bounds lanes of each row.
        unsafe {
            _mm256_maskstore_ps(y.as_mut_ptr().add(y0 + jt), mask, a0);
            _mm256_maskstore_ps(y.as_mut_ptr().add(y1 + jt), mask, b0);
        }
    }
}

/// One row with sparse compaction: a branchless scan packs the row's
/// non-zero `(index, value)` pairs into the caller's scratch (ascending
/// index, so the accumulation order is exactly the reference order),
/// then 32/16/8-column tiles stream only the survivors with **no
/// branches** in the MAC loop — the win on ~half-zero post-ReLU rows,
/// where skip branches mispredict constantly.
///
/// Safety requirement (beyond AVX2): `r < rows` and `ins <= COMPACT_CAP`.
#[target_feature(enable = "avx2")]
unsafe fn row1_compact(
    task: &LinearTask<'_>,
    y: &mut [f32],
    r: usize,
    idx: &mut [u32; COMPACT_CAP],
    val: &mut [f32; COMPACT_CAP],
) {
    let &LinearTask {
        x,
        ins,
        w,
        outs,
        bias,
        relu,
        ..
    } = task;
    let xr = &x[r * ins..(r + 1) * ins];
    let yr = &mut y[r * outs..(r + 1) * outs];
    debug_assert!(ins <= COMPACT_CAP);

    // Branchless compaction: the write is unconditional, the cursor
    // only advances past kept entries (NaN != 0.0, so NaN inputs are
    // kept, as in every backend).
    let mut len = 0usize;
    for (i, &xi) in xr.iter().enumerate() {
        idx[len] = i as u32;
        val[len] = xi;
        len += (xi != 0.0) as usize;
    }
    let (idx, val) = (&idx[..len], &val[..len]);

    let mut jt = 0usize;
    while jt + 32 <= outs {
        // SAFETY: jt + 32 <= outs = bias.len(), so lanes [jt, jt+32)
        // are in bounds.
        let mut a0 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt)) };
        let mut a1 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt + 8)) };
        let mut a2 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt + 16)) };
        let mut a3 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt + 24)) };
        for (&i, &xi) in idx.iter().zip(val) {
            let xv = _mm256_set1_ps(xi);
            // SAFETY: i < ins (it indexes xr), so row i of `w` spans
            // [i*outs, (i+1)*outs); jt + 32 <= outs keeps all four
            // 8-lane loads inside it.
            let wp = unsafe { w.as_ptr().add(i as usize * outs + jt) };
            unsafe {
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xv, _mm256_loadu_ps(wp)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(xv, _mm256_loadu_ps(wp.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(xv, _mm256_loadu_ps(wp.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(xv, _mm256_loadu_ps(wp.add(24))));
            }
        }
        if relu {
            a0 = relu8(a0);
            a1 = relu8(a1);
            a2 = relu8(a2);
            a3 = relu8(a3);
        }
        // SAFETY: yr is `outs` long and jt + 32 <= outs.
        unsafe {
            let yp = yr.as_mut_ptr().add(jt);
            _mm256_storeu_ps(yp, a0);
            _mm256_storeu_ps(yp.add(8), a1);
            _mm256_storeu_ps(yp.add(16), a2);
            _mm256_storeu_ps(yp.add(24), a3);
        }
        jt += 32;
    }
    while jt + 16 <= outs {
        // SAFETY: jt + 16 <= outs bounds both 8-lane loads.
        let mut a0 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt)) };
        let mut a1 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt + 8)) };
        for (&i, &xi) in idx.iter().zip(val) {
            let xv = _mm256_set1_ps(xi);
            // SAFETY: as in the 32-wide tier, with width 16.
            let wp = unsafe { w.as_ptr().add(i as usize * outs + jt) };
            unsafe {
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xv, _mm256_loadu_ps(wp)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(xv, _mm256_loadu_ps(wp.add(8))));
            }
        }
        if relu {
            a0 = relu8(a0);
            a1 = relu8(a1);
        }
        // SAFETY: jt + 16 <= outs = yr.len().
        unsafe {
            let yp = yr.as_mut_ptr().add(jt);
            _mm256_storeu_ps(yp, a0);
            _mm256_storeu_ps(yp.add(8), a1);
        }
        jt += 16;
    }
    while jt + 8 <= outs {
        // SAFETY: jt + 8 <= outs bounds the load.
        let mut a0 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt)) };
        for (&i, &xi) in idx.iter().zip(val) {
            let xv = _mm256_set1_ps(xi);
            // SAFETY: as above, width 8.
            unsafe {
                let wp = w.as_ptr().add(i as usize * outs + jt);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xv, _mm256_loadu_ps(wp)));
            }
        }
        if relu {
            a0 = relu8(a0);
        }
        // SAFETY: jt + 8 <= outs = yr.len().
        unsafe { _mm256_storeu_ps(yr.as_mut_ptr().add(jt), a0) };
        jt += 8;
    }
    // Masked tail for the last 1–7 columns (narrow heads — the 13-class
    // segmentation output — live here), streaming the compact list so
    // the tail stays as branch-free as the main tiles.
    if jt < outs {
        // SAFETY: jt < outs bounds `rem` to 1..=7.
        let mask = unsafe { tail_mask(outs - jt) };
        // SAFETY: the mask enables exactly the lanes that remain inside
        // `bias` / each weight row / `yr` (all `outs` long).
        let mut a0 = unsafe { _mm256_maskload_ps(bias.as_ptr().add(jt), mask) };
        for (&i, &xi) in idx.iter().zip(val) {
            let xv = _mm256_set1_ps(xi);
            // SAFETY: as above; masked lanes never touch memory past
            // row i's end.
            let w0 = unsafe { _mm256_maskload_ps(w.as_ptr().add(i as usize * outs + jt), mask) };
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(xv, w0));
        }
        if relu {
            a0 = relu8(a0);
        }
        // SAFETY: stores only the in-bounds lanes.
        unsafe { _mm256_maskstore_ps(yr.as_mut_ptr().add(jt), mask, a0) };
    }
}

/// Sliding-window lane masks for the column tail: loading 8 entries at
/// offset `8 - rem` yields `rem` enabled (all-ones) lanes followed by
/// disabled ones.
const TAIL_MASKS: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];

/// One remainder row for inputs wider than [`COMPACT_CAP`]: 32-column
/// tiles with the branchy zero-skip and a reference scalar tail.
#[target_feature(enable = "avx2")]
unsafe fn rows4_tail_row(task: &LinearTask<'_>, y: &mut [f32], r: usize) {
    let &LinearTask {
        x,
        ins,
        w,
        outs,
        bias,
        relu,
        ..
    } = task;
    let xr = &x[r * ins..(r + 1) * ins];
    let yr = &mut y[r * outs..(r + 1) * outs];
    let mut jt = 0usize;
    while jt + 8 <= outs {
        // SAFETY: jt + 8 <= outs bounds the load.
        let mut a0 = unsafe { _mm256_loadu_ps(bias.as_ptr().add(jt)) };
        for (i, &xi) in xr.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let xv = _mm256_set1_ps(xi);
            // SAFETY: row i of `w` spans [i*outs, (i+1)*outs) and
            // jt + 8 <= outs.
            unsafe {
                let wp = w.as_ptr().add(i * outs + jt);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(xv, _mm256_loadu_ps(wp)));
            }
        }
        if relu {
            a0 = relu8(a0);
        }
        // SAFETY: jt + 8 <= outs = yr.len().
        unsafe { _mm256_storeu_ps(yr.as_mut_ptr().add(jt), a0) };
        jt += 8;
    }
    if jt < outs {
        // SAFETY: jt < outs and yr.len() == outs.
        unsafe { masked_tail(xr, w, outs, bias, relu, yr, jt) };
    }
}

/// `max(+0.0, lane)` — operand order matters: `vmaxps` returns the
/// **second** operand when either is NaN or the lanes compare equal
/// (`±0.0`), so putting zero first propagates NaN payloads and keeps
/// `-0.0`, exactly matching the scalar `if a < 0.0 { a = 0.0 }`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn relu8(a: __m256) -> __m256 {
    _mm256_max_ps(_mm256_setzero_ps(), a)
}
